//! Seeded stress/property battery for the queue and the work-stealing host:
//! random request streams (shapes, sizes, arrival bursts) must never drop,
//! duplicate, or reorder a request, across at least 100 seeded cases.
//!
//! The case count scales with `SEM_STRESS_ITERS` (default 100) so CI's
//! release stress job can run the battery harder without code changes.
//! Everything here is seeded and assertion-deterministic: no wall-clock
//! comparisons, only conservation, ordering and accounting invariants.

use rand::{Rng, SeedableRng, StdRng};
use sem_serve::steal::{run_stealing, TaggedJob};
use sem_serve::{ProblemSpec, RoundRobin, ServeOptions, ServeRequest, Server, SolveQueue};
use sem_solver::CgOptions;
use std::collections::BTreeSet;

/// Seeded cases to run per property (CI raises this via `SEM_STRESS_ITERS`).
fn stress_iters() -> u64 {
    std::env::var("SEM_STRESS_ITERS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(100)
}

/// A random mixed request stream: bursts of equal-shaped requests (the
/// arrival pattern that stacks jobs behind one device) interleaved with
/// single arrivals.
fn random_stream(rng: &mut StdRng) -> Vec<ServeRequest> {
    let shapes = [
        ProblemSpec::cube(2, 2),
        ProblemSpec::cube(3, 2),
        ProblemSpec::cube(4, 2),
        ProblemSpec {
            degree: 3,
            elements: [2, 1, 1],
        },
    ];
    let mut requests = Vec::new();
    let arrivals = rng.gen_range(0..40_usize);
    while requests.len() < arrivals {
        let spec = shapes[rng.gen_range(0..shapes.len())];
        // A burst keeps one shape arriving back-to-back.
        let burst = rng.gen_range(1..=6_usize);
        for _ in 0..burst {
            requests.push(ServeRequest::seeded(spec, rng.gen_range(0..1_000_u64)));
        }
    }
    requests
}

#[test]
fn packing_conserves_every_request_across_seeded_streams() {
    let cases = stress_iters();
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed);
        let requests = random_stream(&mut rng);
        let max_batch = rng.gen_range(1..=8_usize);
        let jobs = SolveQueue::from_requests(&requests).pack(max_batch);

        // Conservation: every request index appears in exactly one job.
        let mut seen = Vec::new();
        for job in &jobs {
            assert!(
                job.batch_size() >= 1 && job.batch_size() <= max_batch,
                "seed {seed}"
            );
            for &request in &job.requests {
                assert_eq!(requests[request].spec, job.spec, "seed {seed}: shape mix");
            }
            seen.extend(job.requests.iter().copied());
        }
        assert_eq!(
            seen.len(),
            requests.len(),
            "seed {seed}: dropped/duplicated"
        );
        let unique: BTreeSet<usize> = seen.iter().copied().collect();
        assert_eq!(unique.len(), requests.len(), "seed {seed}");

        // Order: within a shape, requests stay in submission order.
        let mut shapes_seen: Vec<ProblemSpec> = Vec::new();
        for job in &jobs {
            if !shapes_seen.contains(&job.spec) {
                shapes_seen.push(job.spec);
            }
        }
        for spec in shapes_seen {
            let packed: Vec<usize> = jobs
                .iter()
                .filter(|job| job.spec == spec)
                .flat_map(|job| job.requests.iter().copied())
                .collect();
            let mut sorted = packed.clone();
            sorted.sort_unstable();
            assert_eq!(packed, sorted, "seed {seed}: reordered within shape");
        }
    }
}

#[test]
fn work_stealing_conserves_jobs_across_seeded_pools_and_hints() {
    let cases = stress_iters();
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(0x5EA1 ^ seed);
        let pool = rng.gen_range(1..=6_usize);
        let num_jobs = rng.gen_range(0..120_usize);
        let jobs: Vec<TaggedJob<usize>> = (0..num_jobs)
            .map(|payload| TaggedJob {
                payload,
                // Skewed hints: bursts behind one worker, floaters, and a
                // uniform remainder.
                hint: match rng.gen_range(0..4_u32) {
                    0 => Some(0),
                    1 => None,
                    _ => Some(rng.gen_range(0..pool)),
                },
            })
            .collect();
        let expected_hints: Vec<Option<usize>> = jobs.iter().map(|job| job.hint).collect();

        let run = run_stealing(vec![(); pool], jobs, |_, (), payload| payload);

        // Conservation: every job executed exactly once, nothing invented.
        assert_eq!(run.completed.len(), num_jobs, "seed {seed}");
        let seen: BTreeSet<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(seen.len(), num_jobs, "seed {seed}: duplicate execution");
        let ledger_total: usize = run.workers.iter().map(|w| w.executed_jobs).sum();
        assert_eq!(ledger_total, num_jobs, "seed {seed}: ledger drift");

        // Hints survive the trip and steal accounting matches them.
        for completed in &run.completed {
            assert_eq!(
                completed.hint, expected_hints[completed.result],
                "seed {seed}"
            );
            assert!(completed.worker < pool, "seed {seed}");
        }
        let stolen = run.completed.iter().filter(|c| c.stolen()).count();
        assert_eq!(run.total_steals(), stolen, "seed {seed}");
        for ledger in &run.workers {
            assert!(ledger.steals <= ledger.executed_jobs, "seed {seed}");
        }
    }
}

#[test]
fn single_worker_pools_execute_hinted_jobs_in_submission_order() {
    // With one worker there is nobody to steal: the deque is FIFO, so the
    // completion order must equal the submission order for every seed.
    let cases = stress_iters().min(50);
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(0xF1F0 ^ seed);
        let num_jobs = rng.gen_range(1..60_usize);
        let floaters: Vec<bool> = (0..num_jobs)
            .map(|_| rng.gen_range(0..3_u32) == 0)
            .collect();
        let jobs: Vec<TaggedJob<usize>> = floaters
            .iter()
            .enumerate()
            .map(|(payload, &floating)| TaggedJob {
                payload,
                hint: (!floating).then_some(0),
            })
            .collect();
        let run = run_stealing(vec![(); 1], jobs, |_, (), payload| payload);
        // Hinted jobs keep their relative order (the worker drains its own
        // deque before touching the injector, both FIFO).
        let hinted_order: Vec<usize> = run
            .completed
            .iter()
            .map(|c| c.result)
            .filter(|&payload| !floaters[payload])
            .collect();
        let mut sorted = hinted_order.clone();
        sorted.sort_unstable();
        assert_eq!(hinted_order, sorted, "seed {seed}");
        assert_eq!(run.completed.len(), num_jobs, "seed {seed}");
        assert_eq!(run.total_steals(), 0, "seed {seed}");
    }
}

#[test]
fn end_to_end_async_serves_random_streams_bitwise_like_serve() {
    // Full-stack spot checks: a handful of the seeded streams actually
    // solve through the async host on a homogeneous pool and must match the
    // synchronous host bitwise, answer for answer.
    let cases = (stress_iters() / 20).clamp(3, 10);
    let options = ServeOptions {
        cg: CgOptions {
            max_iterations: 600,
            tolerance: 1e-9,
            record_history: false,
        },
        max_batch: 3,
        ..ServeOptions::default()
    };
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(0xE2E ^ seed);
        let mut requests = random_stream(&mut rng);
        requests.truncate(12); // keep the battery fast; shapes still mix
        if requests.is_empty() {
            requests.push(ServeRequest::seeded(ProblemSpec::cube(2, 2), seed));
        }
        let pool = ["cpu:optimized", "cpu:optimized"];
        let mut sync_server = Server::from_registry_names(&pool, options);
        let sync = sync_server.serve(&requests, &mut RoundRobin::default());
        let mut async_server = Server::from_registry_names(&pool, options);
        let run = async_server.serve_async(&requests, &mut RoundRobin::default());

        assert_eq!(run.outcomes.len(), requests.len(), "seed {seed}");
        for (i, (a, s)) in run.outcomes.iter().zip(&sync.outcomes).enumerate() {
            assert_eq!(a.request, i, "seed {seed}");
            assert_eq!(
                a.solution.as_slice(),
                s.solution.as_slice(),
                "seed {seed}: request {i} diverged across hosts"
            );
        }
    }
}
