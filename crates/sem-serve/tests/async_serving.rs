//! The async-host concurrency battery: `serve_async` must answer exactly
//! like `serve` — bitwise, in request order — while actually running device
//! sessions on worker threads with work stealing.
//!
//! Every assertion here is on *modelled* seconds, bit patterns, or
//! structural invariants (conservation, ordering, steal accounting) — never
//! on measured wall-clock comparisons, so the battery is deterministic under
//! arbitrary CI load.

use sem_accel::Backend;
use sem_serve::{
    AdmissionPolicy, ModelOptimal, Pinned, ProblemSpec, RoundRobin, ServeOptions, ServeRequest,
    Server,
};
use sem_solver::CgOptions;

fn options(max_batch: usize) -> ServeOptions {
    ServeOptions {
        cg: CgOptions {
            max_iterations: 1000,
            tolerance: 1e-10,
            record_history: false,
        },
        max_batch,
        ..ServeOptions::default()
    }
}

/// Mixed-shape, mixed-RHS request stream shared by the parity tests.
fn mixed_requests() -> Vec<ServeRequest> {
    let small = ProblemSpec::cube(3, 2);
    let large = ProblemSpec::cube(4, 2);
    let mut requests = Vec::new();
    for i in 0..3 {
        requests.push(ServeRequest::seeded(small, i));
        requests.push(ServeRequest::manufactured(large));
        requests.push(ServeRequest::seeded(large, i + 100));
    }
    requests
}

#[test]
fn async_answers_match_serve_bitwise_for_every_registry_backend() {
    let requests = mixed_requests();
    for name in Backend::registry_names() {
        let simulated = Backend::from_name(&name)
            .expect("registry name")
            .is_simulated();
        let mut sync_server = Server::from_registry_names(&[name.as_str()], options(2));
        let sync = sync_server.serve(&requests, &mut RoundRobin::default());
        let mut async_server = Server::from_registry_names(&[name.as_str()], options(2));
        let run = async_server.serve_async(&requests, &mut RoundRobin::default());

        assert!(run.asynchronous && !sync.asynchronous);
        assert_eq!(run.outcomes.len(), requests.len(), "{name}");
        for (i, (a, s)) in run.outcomes.iter().zip(&sync.outcomes).enumerate() {
            assert_eq!(a.request, i, "{name}: answers arrive in request order");
            assert_eq!(s.request, i, "{name}");
            assert_eq!(
                a.solution.as_slice(),
                s.solution.as_slice(),
                "{name}: request {i} must be bitwise identical across hosts"
            );
            assert_eq!(a.iterations, s.iterations, "{name}");
            assert_eq!(a.converged, s.converged, "{name}");
            if simulated {
                // Simulated accounting is a pure model figure; measured
                // (CPU) backends re-time each run, so only the bits of the
                // *solution*, not the clock, are comparable there.
                assert_eq!(
                    a.serial_modeled_seconds.to_bits(),
                    s.serial_modeled_seconds.to_bits(),
                    "{name}: modelled accounting is schedule-independent"
                );
            }
        }
        // One slot: nothing to steal from, and for simulated backends the
        // modelled schedule is the sync schedule exactly.
        assert_eq!(run.total_steals(), 0, "{name}");
        if simulated {
            assert_eq!(
                run.makespan_seconds.to_bits(),
                sync.makespan_seconds.to_bits(),
                "{name}: single-slot modelled makespan must not depend on the host"
            );
        }
    }
}

#[test]
fn async_on_a_homogeneous_pool_stays_bitwise_whoever_steals() {
    // Three identical slots: stealing may move jobs anywhere, but every slot
    // runs the same backend, so answers must stay bitwise equal to the
    // synchronous single-slot reference.
    let requests = mixed_requests();
    let mut reference_server = Server::from_registry_names(&["cpu:optimized"], options(2));
    let reference = reference_server.serve(&requests, &mut RoundRobin::default());

    let pool = ["cpu:optimized", "cpu:optimized", "cpu:optimized"];
    let mut server = Server::from_registry_names(&pool, options(2));
    let run = server.serve_async(&requests, &mut RoundRobin::default());

    assert_eq!(run.outcomes.len(), requests.len());
    for (i, (a, r)) in run.outcomes.iter().zip(&reference.outcomes).enumerate() {
        assert_eq!(a.request, i);
        assert_eq!(
            a.solution.as_slice(),
            r.solution.as_slice(),
            "request {i}: homogeneous pools are bitwise host-independent"
        );
    }
    // Conservation: every request served exactly once, across all devices.
    let served: usize = run.devices.iter().map(|d| d.requests).sum();
    assert_eq!(served, requests.len());
    let executed: usize = run.devices.iter().map(|d| d.jobs).sum();
    assert_eq!(executed, run.jobs.len());
}

#[test]
fn pinning_everything_to_one_slot_forces_real_steals() {
    // All jobs hinted to slot 0 of a four-slot pool: the only way the other
    // slots serve anything is by stealing, and the steal accounting must
    // agree between the per-device ledger and the per-job traces.  The jobs
    // must be heavy enough that slot 0 cannot drain its whole deque inside
    // one scheduler timeslice on a single-core host — with tiny solves the
    // siblings can lose the race to even one steal.
    let spec = ProblemSpec::cube(7, 2);
    let requests: Vec<ServeRequest> = (0..12).map(|i| ServeRequest::seeded(spec, i)).collect();
    let pool = ["cpu:optimized"; 4];
    let mut server = Server::from_registry_names(&pool, options(1));
    let run = server.serve_async(&requests, &mut Pinned(0));

    assert_eq!(run.outcomes.len(), 12);
    assert!(
        run.total_steals() > 0,
        "12 single-request jobs behind one slot of four must get stolen"
    );
    assert_eq!(run.devices[0].steals, 0, "the hinted slot cannot steal");
    let stolen_traces = run.jobs.iter().filter(|job| job.stolen()).count();
    assert_eq!(run.total_steals(), stolen_traces);
    for job in &run.jobs {
        assert_eq!(job.hinted_device, Some(0), "pinned hints");
    }
    // Bitwise identity still holds against the synchronous pinned run.
    let mut sync_server = Server::from_registry_names(&pool, options(1));
    let sync = sync_server.serve(&requests, &mut Pinned(0));
    for (a, s) in run.outcomes.iter().zip(&sync.outcomes) {
        assert_eq!(a.solution.as_slice(), s.solution.as_slice());
    }
    assert_eq!(sync.total_steals(), 0, "the sync host executes on the hint");
}

#[test]
fn heterogeneous_pools_serve_in_order_with_correct_shapes() {
    let requests = mixed_requests();
    let pool = ["cpu:optimized", "fpga:stratix10-gx2800"];
    let mut server = Server::from_registry_names(&pool, options(2));
    let run = server.serve_async(&requests, &mut ModelOptimal);
    assert_eq!(run.outcomes.len(), requests.len());
    for (i, outcome) in run.outcomes.iter().enumerate() {
        assert_eq!(outcome.request, i);
        assert_eq!(outcome.solution.len(), requests[i].spec.num_dofs());
        assert!(outcome.converged);
        match requests[i].rhs {
            sem_serve::RhsSpec::Manufactured => {
                assert!(outcome.max_error < 1e-3, "error {}", outcome.max_error);
            }
            sem_serve::RhsSpec::Seeded(_) => assert!(outcome.max_error.is_nan()),
        }
        assert!(outcome.device < pool.len());
    }
    // Wall-clock figures exist but are only sanity-bounded (they are
    // measured; comparisons live in the bench, not the test suite).
    assert!(run.wall_seconds > 0.0);
    assert!(run.busy_wall_seconds() > 0.0);
    assert!(run.measured_concurrency() > 0.0);
    let summary = run.summary();
    assert!(summary.asynchronous);
    assert_eq!(summary.steals, run.total_steals());
    assert_eq!(summary.admitted, requests.len());
}

#[test]
fn empty_request_sets_produce_empty_reports_on_both_hosts() {
    let mut server = Server::from_registry_names(&["cpu:optimized", "cpu:optimized"], options(4));
    let sync = server.serve(&[], &mut RoundRobin::default());
    let run = server.serve_async(&[], &mut RoundRobin::default());
    for report in [&sync, &run] {
        assert!(report.outcomes.is_empty());
        assert!(report.jobs.is_empty());
        assert_eq!(report.makespan_seconds, 0.0);
        assert_eq!(report.throughput_rps(), 0.0);
        assert_eq!(report.latency_percentile_seconds(99.0), None);
    }
}

#[test]
fn sessions_survive_across_serve_calls_on_both_hosts() {
    // The worker-owned sessions are handed back after an async run: a
    // second serve on the same server must reuse them and answer bitwise
    // identically (same backends, same systems).
    let spec = ProblemSpec::cube(3, 2);
    let requests: Vec<ServeRequest> = (0..4).map(|i| ServeRequest::seeded(spec, i)).collect();
    let mut server = Server::from_registry_names(&["cpu:optimized", "cpu:optimized"], options(2));
    let first = server.serve_async(&requests, &mut RoundRobin::default());
    let second = server.serve_async(&requests, &mut RoundRobin::default());
    let third = server.serve(&requests, &mut RoundRobin::default());
    for ((a, b), c) in first
        .outcomes
        .iter()
        .zip(&second.outcomes)
        .zip(&third.outcomes)
    {
        assert_eq!(a.solution.as_slice(), b.solution.as_slice());
        assert_eq!(a.solution.as_slice(), c.solution.as_slice());
    }
}

#[test]
fn async_admission_rejects_and_the_hosts_agree_on_the_verdicts() {
    // Simulated backend → deterministic session predictions.  A tight
    // deadline must reject the same requests on both hosts, and the served
    // remainder must stay bitwise identical.
    let spec = ProblemSpec::cube(4, 2);
    let requests: Vec<ServeRequest> = (0..8).map(|i| ServeRequest::seeded(spec, i)).collect();
    let pool = ["fpga:stratix10-gx2800"];

    // Price one job to find a deadline that admits some but not all.
    let mut probe = Server::from_registry_names(&pool, options(2));
    let full = probe.serve(&requests, &mut RoundRobin::default());
    let per_job = full.makespan_seconds / full.jobs.len() as f64;
    let admission = AdmissionPolicy::Reject {
        deadline_seconds: per_job * 2.5,
    };

    let opts = ServeOptions {
        admission,
        ..options(2)
    };
    let mut sync_server = Server::from_registry_names(&pool, opts);
    let sync = sync_server.serve(&requests, &mut RoundRobin::default());
    let mut async_server = Server::from_registry_names(&pool, opts);
    let run = async_server.serve_async(&requests, &mut RoundRobin::default());

    assert!(!sync.rejections.is_empty(), "the deadline must bind");
    assert!(!sync.outcomes.is_empty(), "but not reject everything");
    assert_eq!(
        sync.rejections
            .iter()
            .map(|r| r.request)
            .collect::<Vec<_>>(),
        run.rejections.iter().map(|r| r.request).collect::<Vec<_>>(),
        "admission verdicts are host-independent"
    );
    for (a, s) in run.outcomes.iter().zip(&sync.outcomes) {
        assert_eq!(a.request, s.request);
        assert_eq!(a.solution.as_slice(), s.solution.as_slice());
    }
    let summary = run.summary();
    assert_eq!(summary.requests, 8);
    assert_eq!(summary.admitted + summary.rejected, 8);
}
