//! Schedule-exploration smoke battery: drives `run_stealing` through
//! bounded interleavings via the crossbeam schedule hook and asserts the
//! host's contract on every schedule.
//!
//! Lives in its own integration-test binary on purpose: the schedule hook
//! is process-global, so exploration must not share a process with other
//! tests that call `run_stealing` concurrently.  `SEM_SCHED_ITERS` caps the
//! schedule budget (CI smoke uses a small value; the stress job a larger
//! one).

use sem_serve::{explore_case, standard_battery, ExploreCase, Strategy};

fn schedule_budget(default: usize) -> usize {
    std::env::var("SEM_SCHED_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn standard_battery_upholds_the_contract_on_every_schedule() {
    let reports = standard_battery(schedule_budget(1500));
    let mut total = 0;
    for report in &reports {
        assert!(
            report.violations.is_empty(),
            "case {} violated the contract:\n{}",
            report.name,
            report.violations.join("\n")
        );
        assert!(
            report.schedules > 0,
            "case {} ran no schedules",
            report.name
        );
        // Transition coverage: even a handful of schedules realizes most of
        // the operation-pair classes a case can produce (measured: >= 8 at
        // ten schedules per case, 11-16 at saturation).  A collapse below
        // this floor means the explorer stopped actually interleaving ops.
        assert!(
            report.transitions.len() >= 6,
            "case {} covered only {} op-pair transition classes: {}",
            report.name,
            report.transitions.len(),
            report.transition_map()
        );
        total += report.schedules;
    }
    // Ten cases (feeder cases walk seeded, the rest depth-first; three
    // carry fault schedules through the tolerant host): the battery covers
    // a healthy slice of the interleaving space even under the CI smoke
    // budget.
    assert!(
        total >= reports.len() * 10,
        "expected meaningful coverage, got {total} schedules"
    );
}

#[test]
fn single_worker_case_is_exhausted_with_one_schedule() {
    // One worker means one parked thread at every decision point: the
    // choice tree is a single path and DFS proves it immediately.
    let case = ExploreCase {
        name: "solo",
        workers: 1,
        hints: vec![Some(0), Some(0)],
        feeder_jobs: 0,
        contention: 0,
        fatal_workers: Vec::new(),
        retry_once: Vec::new(),
    };
    let report = explore_case(&case, Strategy::Exhaustive, 16);
    assert!(report.exhausted, "a one-worker tree has a single schedule");
    assert_eq!(report.schedules, 1);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn exhaustive_runs_are_distinct_by_construction() {
    let case = ExploreCase {
        name: "pair",
        workers: 2,
        hints: vec![Some(0)],
        feeder_jobs: 0,
        contention: 0,
        fatal_workers: Vec::new(),
        retry_once: Vec::new(),
    };
    let report = explore_case(&case, Strategy::Exhaustive, 400);
    // Every DFS replay differs from every other in at least one choice, so
    // the distinct-trace count must equal the number of runs performed.
    assert!(
        report.schedules >= 2,
        "two workers racing one job must fork"
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn seeded_walks_find_many_distinct_schedules() {
    let case = ExploreCase {
        name: "seeded-storm",
        workers: 3,
        hints: vec![Some(0), Some(0), None],
        feeder_jobs: 0,
        contention: 0,
        fatal_workers: Vec::new(),
        retry_once: Vec::new(),
    };
    let report = explore_case(&case, Strategy::Seeded(0xFEED_5EED), 64);
    assert!(report.schedules > 8, "random walks should diverge quickly");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn transition_coverage_saturates_under_a_fixed_exhaustive_budget() {
    // DFS exploration is deterministic, so the coverage map at a fixed
    // budget is a stable fingerprint of the host's scheduling behaviour.
    // steal-storm realizes 16 op-pair classes at 400 schedules (measured);
    // pin a floor with a small margin so a host change that *narrows* the
    // realizable interleavings trips this test.
    let case = ExploreCase {
        name: "steal-storm",
        workers: 2,
        hints: vec![Some(0), Some(0), Some(0)],
        feeder_jobs: 0,
        contention: 0,
        fatal_workers: Vec::new(),
        retry_once: Vec::new(),
    };
    let half = explore_case(&case, Strategy::Exhaustive, 200);
    let full = explore_case(&case, Strategy::Exhaustive, 400);
    assert!(
        full.transitions.len() >= 14,
        "expected >= 14 transition classes, got {}: {}",
        full.transitions.len(),
        full.transition_map()
    );
    // Saturation: doubling the budget must not keep unlocking new classes
    // at the rate raw distinct-trace counts grow.
    assert!(
        full.transitions.len() <= half.transitions.len() + 2,
        "coverage still climbing steeply: {} -> {} classes",
        half.transitions.len(),
        full.transitions.len()
    );
    assert!(full.violations.is_empty(), "{:?}", full.violations);
}

#[test]
fn regression_worker_send_failure_must_not_panic_the_pool() {
    // Pin the fix for the former `tx.send(...).unwrap()` in the worker
    // loop: a torn-down channel mid-run must end the worker quietly, not
    // panic it with sibling deques still live.  The explorer cannot tear
    // the channel down mid-run (the receiver outlives the scope), so this
    // exercises the code path the defect lived on: every standard case
    // completes with workers exiting via the normal empty-sweep path, and
    // a schedule in which one worker drains everything leaves the others
    // returning ledgers instead of unwinding.
    let case = ExploreCase {
        name: "greedy-drain",
        workers: 2,
        hints: vec![Some(0), Some(0), Some(0), Some(0)],
        feeder_jobs: 0,
        contention: 0,
        fatal_workers: Vec::new(),
        retry_once: Vec::new(),
    };
    let report = explore_case(&case, Strategy::Seeded(7), 48);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}
