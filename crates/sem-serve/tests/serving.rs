//! Cross-layer serving invariants: pipeline bounds, serial bitwise
//! degeneration, result ordering, solve parity with `SemSystem::solve_many`,
//! the policy ranking the ROADMAP's overlap item promises, and the
//! deadline-admission guarantees.
//!
//! Timing-discipline note (the suite must be deterministic under CI load):
//! every comparative assertion here is on *modelled* seconds — simulated
//! kernel time, pipeline closed forms, roofline pricing.  Measured
//! wall-clock figures (CPU backends re-time every run) are only ever
//! sanity-bounded, never compared between runs; strict cross-policy
//! comparisons run on all-simulated pools where the figures are bitwise
//! reproducible.  Placement itself is deterministic too: policies see
//! modelled hint backlogs, not wall clocks.

use sem_accel::{Backend, SemSystem, SolveReport};
use sem_serve::{
    LeastLoaded, ModelOptimal, PipelineConfig, PipelineTimeline, ProblemSpec, RoundRobin,
    ServeOptions, ServeRequest, Server, Stage,
};
use sem_solver::CgOptions;

fn cg() -> CgOptions {
    CgOptions {
        max_iterations: 1000,
        tolerance: 1e-10,
        record_history: false,
    }
}

fn options(max_batch: usize) -> ServeOptions {
    ServeOptions {
        cg: cg(),
        max_batch,
        ..ServeOptions::default()
    }
}

#[test]
fn pipeline_invariants_hold_on_an_executed_fpga_batch() {
    let system = SemSystem::builder()
        .degree(5)
        .elements([2, 2, 2])
        .backend(Backend::fpga_simulated())
        .build();
    let reports = system.solve_many_manufactured(16, cg());
    let plan = system.offload_plan();

    let overlapped =
        PipelineTimeline::from_reports(plan.as_ref(), &reports, PipelineConfig::default());
    let serial = PipelineTimeline::from_reports(plan.as_ref(), &reports, PipelineConfig::serial());

    // Makespan at least every channel's total...
    assert!(overlapped.makespan_seconds >= overlapped.total_upload_seconds() - 1e-15);
    assert!(overlapped.makespan_seconds >= overlapped.total_compute_seconds() - 1e-15);
    assert!(overlapped.makespan_seconds >= overlapped.total_download_seconds() - 1e-15);
    // ...and at most the serial sum.
    assert!(overlapped.makespan_seconds <= serial.makespan_seconds * (1.0 + 1e-12));
    // Overlap genuinely wins on a 16-deep batch.
    assert!(overlapped.overlap_win_seconds() > 0.0);
    assert!(overlapped.compute_utilisation() > serial.compute_utilisation());
    // Residuals streamed on the D2H channel without moving the makespan of
    // this compute-dominated session.
    assert!(overlapped.stage_busy_seconds(Stage::ResidualStream) > 0.0);
    assert!(
        overlapped.exposed_transfer_seconds()
            <= serial.makespan_seconds - serial.total_compute_seconds() + 1e-15
    );
}

#[test]
fn non_default_links_price_both_accountings_consistently() {
    // On a 1 GB/s link the transfers are 12x the default, but serial and
    // overlapped accounting must price the same bytes over the same link:
    // overlap can never look worse than blocking.
    let system = SemSystem::builder()
        .degree(4)
        .elements([2, 2, 2])
        .backend(Backend::fpga_simulated())
        .build();
    let reports = system.solve_many_manufactured(8, cg());
    let plan = system.offload_plan();
    for link_gbs in [1.0, 4.0, 48.0] {
        let config = PipelineConfig {
            overlap: true,
            link_gbs,
        };
        let timeline = PipelineTimeline::from_reports(plan.as_ref(), &reports, config);
        assert!(
            timeline.makespan_seconds <= timeline.serial_accounting_seconds() * (1.0 + 1e-12),
            "link {link_gbs}: {} vs {}",
            timeline.makespan_seconds,
            timeline.serial_accounting_seconds()
        );
        assert!(timeline.overlap_win_seconds() > 0.0, "link {link_gbs}");
    }
}

#[test]
fn overlap_disabled_timeline_bitwise_matches_solve_report_accounting() {
    for backend in [Backend::fpga_simulated(), Backend::cpu_optimized()] {
        let system = SemSystem::builder()
            .degree(4)
            .elements([2, 2, 2])
            .backend(backend)
            .build();
        // A batch size that is not a power of two, to catch any
        // share-then-resum rounding shortcuts.
        let reports = system.solve_many_manufactured(7, cg());
        let timeline = PipelineTimeline::from_reports(
            system.offload_plan().as_ref(),
            &reports,
            PipelineConfig::serial(),
        );
        let accounting: f64 = reports.iter().map(SolveReport::modeled_seconds).sum();
        assert_eq!(
            timeline.makespan_seconds.to_bits(),
            accounting.to_bits(),
            "serial timeline must reproduce the blocking SolveReport sum bitwise"
        );
        assert_eq!(timeline.overlap_win_seconds(), 0.0);
    }
}

#[test]
fn serve_never_reorders_results_and_matches_solve_many_bitwise() {
    let spec = ProblemSpec::cube(3, 2);
    let requests: Vec<ServeRequest> = (0..5).map(|i| ServeRequest::seeded(spec, i)).collect();
    for name in Backend::registry_names() {
        let mut server = Server::from_registry_names(&[name.as_str()], options(2));
        let report = server.serve(&requests, &mut RoundRobin::default());
        assert_eq!(report.outcomes.len(), requests.len(), "{name}");

        // Reference: the same right-hand sides through the plain batched
        // path on an identically configured system.
        let system = SemSystem::builder()
            .degree(spec.degree)
            .elements(spec.elements)
            .backend_named(&name)
            .build();
        let rhss: Vec<_> = requests.iter().map(|r| r.assemble_rhs(&system)).collect();
        let direct = system.solve_many(&rhss, cg());

        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.request, i, "{name}: answer {i} in slot {i}");
            assert_eq!(
                outcome.solution.as_slice(),
                direct[i].solution.solution.as_slice(),
                "{name}: served solution {i} must be bitwise identical to solve_many"
            );
            assert_eq!(outcome.iterations, direct[i].iterations(), "{name}");
            assert!(outcome.converged, "{name}");
            assert!(outcome.latency_seconds() > 0.0, "{name}");
        }
        // Latencies are monotone within a device's job sequence.
        let makespan = report.makespan_seconds;
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.latency_seconds() <= makespan + 1e-15));
    }
}

#[test]
fn mixed_shapes_share_the_pool_without_crosstalk() {
    let small = ProblemSpec::cube(3, 2);
    let large = ProblemSpec::cube(5, 2);
    let mut requests = Vec::new();
    for i in 0..3 {
        requests.push(ServeRequest::seeded(small, i));
        requests.push(ServeRequest::manufactured(large));
        requests.push(ServeRequest::seeded(large, i));
    }
    let mut server =
        Server::from_registry_names(&["cpu:optimized", "fpga:stratix10-gx2800"], options(4));
    let report = server.serve(&requests, &mut ModelOptimal);
    assert_eq!(report.outcomes.len(), requests.len());
    for (i, outcome) in report.outcomes.iter().enumerate() {
        assert_eq!(outcome.request, i);
        assert_eq!(
            outcome.solution.len(),
            requests[i].spec.num_dofs(),
            "answer shape follows the request shape"
        );
        match requests[i].rhs {
            sem_serve::RhsSpec::Manufactured => {
                assert!(outcome.max_error < 1e-4, "error {}", outcome.max_error);
            }
            sem_serve::RhsSpec::Seeded(_) => assert!(outcome.max_error.is_nan()),
        }
    }
    // Every job's batch is single-shape by construction.
    for job in &report.jobs {
        for &i in &job.requests {
            assert_eq!(requests[i].spec, job.spec);
        }
    }
}

#[test]
fn model_optimal_beats_round_robin_on_an_all_simulated_pool() {
    // Strict cross-policy throughput comparison on a pool whose every
    // figure is simulated, hence bitwise reproducible under any CI load.
    // The pool is genuinely heterogeneous (the GX2800 sessions cost ~2.3x
    // an HBM board's at this size) and the job count (12) is high enough
    // that list scheduling's speed-weighted balance beats round-robin's
    // blind equal split.
    let pool = ["fpga:stratix10-gx2800", "fpga:stratix10m", "fpga:ideal"];
    let spec = ProblemSpec::cube(5, 2);
    let requests: Vec<ServeRequest> = (0..24).map(|i| ServeRequest::seeded(spec, i)).collect();

    let mut rr_server = Server::from_registry_names(&pool, options(2));
    let rr = rr_server.serve(&requests, &mut RoundRobin::default());
    let mut mo_server = Server::from_registry_names(&pool, options(2));
    let mo = mo_server.serve(&requests, &mut ModelOptimal);

    assert!(
        mo.throughput_rps() >= rr.throughput_rps(),
        "model-optimal {} rps must be at least round-robin {} rps",
        mo.throughput_rps(),
        rr.throughput_rps()
    );
    assert!(mo.makespan_seconds <= rr.makespan_seconds * (1.0 + 1e-12));
}

#[test]
fn model_optimal_routes_work_off_the_host_on_a_heterogeneous_pool() {
    // CPU + real FPGA + projected future device: the acceptance pool.
    // Placement is deterministic (policies see modelled hint backlogs, not
    // measured clocks), so the routing assertions hold under any load; the
    // measured-infused throughput figures are only sanity-bounded here and
    // compared strictly on the all-simulated pool above.
    let pool = [
        "cpu:reference",
        "fpga:stratix10-gx2800",
        "fpga:projected:a100-class",
    ];
    let spec = ProblemSpec::cube(5, 2);
    let requests: Vec<ServeRequest> = (0..12).map(|i| ServeRequest::seeded(spec, i)).collect();

    let mut rr_server = Server::from_registry_names(&pool, options(4));
    let rr = rr_server.serve(&requests, &mut RoundRobin::default());
    let mut mo_server = Server::from_registry_names(&pool, options(4));
    let mo = mo_server.serve(&requests, &mut ModelOptimal);
    let mut ll_server = Server::from_registry_names(&pool, options(4));
    let ll = ll_server.serve(&requests, &mut LeastLoaded);

    assert!(rr.throughput_rps() > 0.0 && mo.throughput_rps() > 0.0);
    // The model routes work away from the measured host: the CPU slot
    // serves no more requests than under blind round-robin — in fact the
    // roofline prices the host far above the boards here, so it gets
    // nothing.
    let cpu_requests = |r: &sem_serve::ServeReport| {
        r.devices
            .iter()
            .find(|d| d.label.starts_with("cpu"))
            .map_or(0, |d| d.requests)
    };
    assert!(cpu_requests(&mo) <= cpu_requests(&rr));
    // All three policies answer in identical order and agree numerically
    // (bitwise identity only holds per backend — a request may land on the
    // reference CPU kernel under one policy and the FPGA datapath under
    // another, which differ in rounding).
    for ((a, b), c) in rr
        .outcomes
        .iter()
        .zip(mo.outcomes.iter())
        .zip(ll.outcomes.iter())
    {
        assert_eq!(a.request, b.request);
        assert_eq!(a.request, c.request);
        let scale = a.solution.max_abs();
        for ((x, y), z) in a
            .solution
            .as_slice()
            .iter()
            .zip(b.solution.as_slice())
            .zip(c.solution.as_slice())
        {
            assert!((x - y).abs() < 1e-8 * (1.0 + scale), "{x} vs {y}");
            assert!((x - z).abs() < 1e-8 * (1.0 + scale), "{x} vs {z}");
        }
    }
    // Summaries aggregate and serialise.
    let summary = mo.summary();
    assert_eq!(summary.requests, 12);
    assert!(summary.p50_latency_seconds.unwrap() <= summary.p99_latency_seconds.unwrap());
    assert!(summary.throughput_rps > 0.0);
    let json = serde::json::to_string(&summary);
    assert!(json.contains("model-optimal"));
}

/// Probe the model's per-job session prediction: with a zero deadline every
/// job is rejected on an empty backlog, so each rejection carries exactly
/// the job-level predicted session seconds.
fn probe_job_prediction(pool: &[&str], requests: &[ServeRequest], max_batch: usize) -> f64 {
    let mut server = Server::from_registry_names(
        pool,
        ServeOptions {
            admission: sem_serve::AdmissionPolicy::Reject {
                deadline_seconds: 0.0,
            },
            ..options(max_batch)
        },
    );
    let report = server.serve(requests, &mut RoundRobin::default());
    assert_eq!(report.rejections.len(), requests.len(), "probe rejects all");
    assert!(report.outcomes.is_empty());
    let p = report.rejections[0].predicted_completion_seconds;
    assert!(p > 0.0);
    p
}

#[test]
fn admission_on_an_unloaded_pool_admits_everything() {
    let spec = ProblemSpec::cube(4, 2);
    let requests: Vec<ServeRequest> = (0..6).map(|i| ServeRequest::seeded(spec, i)).collect();
    let mut server = Server::from_registry_names(
        &["fpga:stratix10-gx2800"],
        ServeOptions {
            admission: sem_serve::AdmissionPolicy::Reject {
                deadline_seconds: 1e6,
            },
            ..options(2)
        },
    );
    let report = server.serve(&requests, &mut RoundRobin::default());
    assert!(
        report.rejections.is_empty(),
        "an empty pool admits everything"
    );
    assert_eq!(report.outcomes.len(), 6);
    let summary = report.summary();
    assert_eq!((summary.admitted, summary.rejected), (6, 0));
}

#[test]
fn admission_rejects_exactly_the_requests_priced_over_the_deadline() {
    // Single simulated board (deterministic predictions), three jobs of two
    // requests with identical session prediction `p`.  A deadline of 1.5 p
    // admits the first job (completes at p) and rejects the next two (both
    // priced at backlog p + session p = 2 p) — exactly requests 2..=5.
    let pool = ["fpga:stratix10-gx2800"];
    let spec = ProblemSpec::cube(4, 2);
    let requests: Vec<ServeRequest> = (0..6).map(|i| ServeRequest::seeded(spec, i)).collect();
    let p = probe_job_prediction(&pool, &requests, 2);

    let opts = ServeOptions {
        admission: sem_serve::AdmissionPolicy::Reject {
            deadline_seconds: 1.5 * p,
        },
        ..options(2)
    };
    let mut server = Server::from_registry_names(&pool, opts);
    let report = server.serve(&requests, &mut RoundRobin::default());
    assert_eq!(
        report
            .outcomes
            .iter()
            .map(|o| o.request)
            .collect::<Vec<_>>(),
        vec![0, 1],
        "only the first job fits under the deadline"
    );
    assert_eq!(
        report
            .rejections
            .iter()
            .map(|r| r.request)
            .collect::<Vec<_>>(),
        vec![2, 3, 4, 5]
    );
    for rejection in &report.rejections {
        assert!(rejection.predicted_completion_seconds > rejection.deadline_seconds);
        assert_eq!(
            rejection.predicted_completion_seconds.to_bits(),
            (2.0 * p).to_bits(),
            "rejections carry the backlog-aware prediction that priced them out"
        );
    }
    // Deterministic: a fresh server reproduces the verdicts bitwise.
    let mut again = Server::from_registry_names(&pool, opts);
    let repeat = again.serve(&requests, &mut RoundRobin::default());
    assert_eq!(
        repeat
            .rejections
            .iter()
            .map(|r| r.request)
            .collect::<Vec<_>>(),
        report
            .rejections
            .iter()
            .map(|r| r.request)
            .collect::<Vec<_>>()
    );
}

#[test]
fn down_batch_admission_degrades_instead_of_rejecting_wholesale() {
    // One batch-4 job against a deadline between the batch-1 and batch-2
    // session predictions: Reject mode drops all four requests; DownBatch
    // splits 4 → 2+2 → 1+1+... and salvages exactly the first request
    // (completes at p1 ≤ D; every later piece lands behind backlog ≥ p1 and
    // 2·p1 > D because p2 ≤ 2·p1 forces D < 1.5·p1).
    let pool = ["fpga:stratix10-gx2800"];
    let spec = ProblemSpec::cube(4, 2);
    let requests: Vec<ServeRequest> = (0..4).map(|i| ServeRequest::seeded(spec, i)).collect();
    let p1 = probe_job_prediction(&pool, &requests, 1);
    let p2 = probe_job_prediction(&pool, &requests, 2);
    assert!(p2 > p1, "session predictions grow with batch size");
    assert!(
        p2 <= 2.0 * p1,
        "a second RHS cannot cost more than a session"
    );
    let deadline_seconds = (p1 + p2) / 2.0;

    let mut hard_server = Server::from_registry_names(
        &pool,
        ServeOptions {
            admission: sem_serve::AdmissionPolicy::Reject { deadline_seconds },
            ..options(4)
        },
    );
    let hard = hard_server.serve(&requests, &mut RoundRobin::default());
    assert!(
        hard.outcomes.is_empty(),
        "the whole batch misses the deadline"
    );
    assert_eq!(hard.rejections.len(), 4);

    let mut soft_server = Server::from_registry_names(
        &pool,
        ServeOptions {
            admission: sem_serve::AdmissionPolicy::DownBatch { deadline_seconds },
            ..options(4)
        },
    );
    let soft = soft_server.serve(&requests, &mut RoundRobin::default());
    assert_eq!(
        soft.outcomes.iter().map(|o| o.request).collect::<Vec<_>>(),
        vec![0],
        "down-batching salvages the request the model can still serve in time"
    );
    assert_eq!(
        soft.rejections
            .iter()
            .map(|r| r.request)
            .collect::<Vec<_>>(),
        vec![1, 2, 3]
    );
    assert!(soft.rejections.len() < hard.rejections.len());
    // The salvaged answer is the same solve it would have been in a full
    // batch: admission changes scheduling, never numerics.
    let mut open_server = Server::from_registry_names(&pool, options(4));
    let open = open_server.serve(&requests, &mut RoundRobin::default());
    assert_eq!(
        soft.outcomes[0].solution.as_slice(),
        open.outcomes[0].solution.as_slice()
    );
}

#[test]
fn overlap_improves_fpga_serving_end_to_end() {
    let spec = ProblemSpec::cube(5, 2);
    let requests: Vec<ServeRequest> = (0..16).map(|i| ServeRequest::seeded(spec, i)).collect();
    let mut overlapped = Server::from_registry_names(&["fpga:stratix10-gx2800"], options(16));
    let with = overlapped.serve(&requests, &mut RoundRobin::default());
    let mut blocking = Server::from_registry_names(
        &["fpga:stratix10-gx2800"],
        ServeOptions {
            pipeline: PipelineConfig::serial(),
            ..options(16)
        },
    );
    let without = blocking.serve(&requests, &mut RoundRobin::default());

    assert!(with.makespan_seconds < without.makespan_seconds);
    assert!(with.throughput_rps() > without.throughput_rps());
    assert_eq!(with.serial_makespan_seconds, without.makespan_seconds);
    // Identical numerics either way.
    for (a, b) in with.outcomes.iter().zip(without.outcomes.iter()) {
        assert_eq!(a.solution.as_slice(), b.solution.as_slice());
    }
}

#[test]
fn slot_precond_suffixes_are_honoured_and_the_override_wins() {
    use sem_solver::PrecondSpec;
    let spec = ProblemSpec::cube(4, 2);
    let requests: Vec<ServeRequest> = (0..4).map(|i| ServeRequest::seeded(spec, i)).collect();

    // A slot whose registry name carries `+fdm` serves with FDM by default
    // (ServeOptions.precond defaults to None = per-slot)...
    let mut fdm_server = Server::from_registry_names(&["fpga:stratix10-gx2800+fdm"], options(4));
    let fdm = fdm_server.serve(&requests, &mut RoundRobin::default());
    assert_eq!(fdm.precond, "fdm");
    // ...and a pool-wide override replaces it.
    let mut overridden_server = Server::from_registry_names(
        &["fpga:stratix10-gx2800+fdm"],
        options(4).with_precond(PrecondSpec::Jacobi),
    );
    let overridden = overridden_server.serve(&requests, &mut RoundRobin::default());
    assert_eq!(overridden.precond, "jacobi");
    // The preconditioners genuinely differ: FDM needs fewer total iterations
    // and both streams converge to the same answers.
    assert!(fdm.total_iterations() < overridden.total_iterations());
    let scale = 1.0 + fdm.outcomes[0].solution.max_abs();
    for (a, b) in fdm.outcomes.iter().zip(&overridden.outcomes) {
        for (x, y) in a.solution.as_slice().iter().zip(b.solution.as_slice()) {
            assert!((x - y).abs() < 1e-8 * scale);
        }
    }

    // A mixed pool reports "per-slot".
    let mut mixed = Server::from_registry_names(
        &["fpga:stratix10-gx2800+fdm", "fpga:stratix10-gx2800"],
        options(4),
    );
    let report = mixed.serve(&requests, &mut RoundRobin::default());
    assert_eq!(report.precond, "per-slot");
}
