//! Calibrated kernel models for the CPU and GPU baselines.
//!
//! For every machine of Table II the achieved kernel performance is modelled
//! as
//!
//! ```text
//! P(N, E) = min( ceiling,  bandwidth · bw_eff · ramp(E, N) · I(N) ) · degrade(N)
//! ```
//!
//! * `ceiling` — the fraction of peak double-precision throughput the
//!   Nekbone/CUDA kernel sustains when it becomes compute-bound;
//! * `bw_eff` — the fraction of peak bandwidth the kernel streams at;
//! * `ramp(E, N)` — the small-problem ramp of Fig. 1 (launch/latency
//!   overheads amortise with the transferred bytes);
//! * `degrade(N)` — the tuned GPU kernel of [40] targets the production
//!   degrees (N ≤ 11) and loses efficiency above them, which the paper points
//!   out explicitly.
//!
//! The per-machine constants are calibrated so the ratios the paper reports
//! at 4096 elements (Fig. 2 and Section V-C) are reproduced; `EXPERIMENTS.md`
//! lists paper-vs-model values for each.

use crate::catalog::{find, Architecture};
use perf_model::cost::{bytes_per_dof, dofs_per_element, operational_intensity};
use serde::{Deserialize, Serialize};

/// A calibrated kernel model for one architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// The machine being modelled.
    pub architecture: Architecture,
    /// Fraction of peak FLOP/s the kernel reaches when compute-bound.
    pub compute_efficiency: f64,
    /// Fraction of peak bandwidth the kernel streams at.
    pub bandwidth_efficiency: f64,
    /// Transferred bytes at which the ramp reaches 50%.
    pub ramp_half_bytes: f64,
    /// Degree above which the (GPU) kernel starts to lose efficiency.
    pub degrade_onset_degree: usize,
    /// Relative efficiency loss per degree beyond the onset.
    pub degrade_slope: f64,
    /// Fraction of TDP drawn while running this bandwidth-bound kernel.
    pub load_power_fraction: f64,
}

impl MachineModel {
    /// The degradation factor of the tuned kernel at `degree`.
    #[must_use]
    pub fn degrade(&self, degree: usize) -> f64 {
        if degree <= self.degrade_onset_degree {
            1.0
        } else {
            1.0 / (1.0 + self.degrade_slope * (degree - self.degrade_onset_degree) as f64)
        }
    }

    /// Achieved kernel performance in GFLOP/s for `num_elements` elements of
    /// polynomial degree `degree`.
    #[must_use]
    pub fn achieved_gflops(&self, degree: usize, num_elements: usize) -> f64 {
        let total_bytes =
            bytes_per_dof(degree) * dofs_per_element(degree) as f64 * num_elements as f64;
        // Launch/latency overheads amortise with the transferred data: the
        // small-problem ramp of Fig. 1 applies to compute- and bandwidth-bound
        // regimes alike.
        let ramp = total_bytes / (total_bytes + self.ramp_half_bytes);
        let bandwidth_bound = self.architecture.bandwidth_gbs
            * self.bandwidth_efficiency
            * operational_intensity(degree);
        let compute_bound = self.architecture.peak_gflops * self.compute_efficiency;
        bandwidth_bound.min(compute_bound) * ramp * self.degrade(degree)
    }

    /// Power draw while running the kernel, in watts.
    #[must_use]
    pub fn power_watts(&self) -> f64 {
        self.architecture.tdp_watts * self.load_power_fraction
    }

    /// Power efficiency in GFLOP/s per watt at the given problem size.
    #[must_use]
    pub fn gflops_per_watt(&self, degree: usize, num_elements: usize) -> f64 {
        self.achieved_gflops(degree, num_elements) / self.power_watts()
    }

    /// The machine's roofline bound for the kernel at `degree` (no
    /// efficiency factors), in GFLOP/s.
    #[must_use]
    pub fn roofline_gflops(&self, degree: usize) -> f64 {
        perf_model::roofline::kernel_roofline_gflops(
            self.architecture.peak_gflops,
            self.architecture.bandwidth_gbs,
            degree,
        )
    }
}

fn model(
    name: &str,
    compute_efficiency: f64,
    bandwidth_efficiency: f64,
    ramp_half_mb: f64,
    degrade_onset_degree: usize,
    degrade_slope: f64,
    load_power_fraction: f64,
) -> MachineModel {
    MachineModel {
        architecture: find(name).unwrap_or_else(|| panic!("unknown architecture {name}")),
        compute_efficiency,
        bandwidth_efficiency,
        ramp_half_bytes: ramp_half_mb * 1024.0 * 1024.0,
        degrade_onset_degree,
        degrade_slope,
        load_power_fraction,
    }
}

/// Calibrated models for every CPU and GPU baseline of the evaluation.
///
/// The FPGA itself is *not* in this list: it is simulated by `fpga-sim`
/// rather than modelled by a two-parameter fit.
#[must_use]
pub fn calibrated_models() -> Vec<MachineModel> {
    vec![
        // CPUs: Nekbone's Ax with one MPI rank per core.  The small ramp
        // constant reflects that CPUs reach their steady state quickly
        // (caches, no launch overhead) — the flat CPU curves of Fig. 1.
        model("Xeon Gold 6130", 0.170, 0.60, 0.25, usize::MAX, 0.0, 0.90),
        model("i9-10920X", 0.122, 0.85, 0.25, usize::MAX, 0.0, 0.90),
        model("ThunderX2", 0.176, 0.25, 0.25, usize::MAX, 0.0, 0.90),
        // GPUs: the tuned tensor-product kernel of Karp et al. [40].
        model("Tesla K80", 0.0824, 0.246, 8.0, usize::MAX, 0.0, 0.60),
        model("Tesla P100", 0.50, 0.84, 16.0, 11, 0.30, 0.60),
        model("RTX 2060", 1.00, 0.80, 16.0, usize::MAX, 0.0, 0.60),
        model("Tesla V100", 0.50, 0.95, 16.0, 11, 0.26, 0.60),
        model("A100", 0.50, 0.70, 24.0, 11, 0.24, 0.60),
    ]
}

/// Look up a calibrated model by architecture-name fragment.
#[must_use]
pub fn calibrated_model(name_fragment: &str) -> Option<MachineModel> {
    let needle = name_fragment.to_lowercase();
    calibrated_models()
        .into_iter()
        .find(|m| m.architecture.name.to_lowercase().contains(&needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ELEMENTS: usize = 4096;

    #[test]
    fn all_table2_baselines_have_models() {
        assert_eq!(calibrated_models().len(), 8);
    }

    #[test]
    fn section_vc_rankings_at_4096_elements_hold() {
        // Paper, N = 15: FPGA (211 GF) beats Xeon (×1.17), i9 (×1.89),
        // ThunderX2 (×2.34) and K80 (×1.87), is ~0.86× the RTX 2060, and is
        // beaten by P100/V100/A100 by 4.3×/6.4×/8.4×.
        let fpga = 211.3;
        let xeon = calibrated_model("Xeon")
            .unwrap()
            .achieved_gflops(15, ELEMENTS);
        let i9 = calibrated_model("i9")
            .unwrap()
            .achieved_gflops(15, ELEMENTS);
        let tx2 = calibrated_model("ThunderX2")
            .unwrap()
            .achieved_gflops(15, ELEMENTS);
        let k80 = calibrated_model("K80")
            .unwrap()
            .achieved_gflops(15, ELEMENTS);
        let rtx = calibrated_model("RTX")
            .unwrap()
            .achieved_gflops(15, ELEMENTS);
        let p100 = calibrated_model("P100")
            .unwrap()
            .achieved_gflops(15, ELEMENTS);
        let v100 = calibrated_model("V100")
            .unwrap()
            .achieved_gflops(15, ELEMENTS);
        let a100 = calibrated_model("A100")
            .unwrap()
            .achieved_gflops(15, ELEMENTS);

        assert!(fpga > xeon && fpga > i9 && fpga > tx2 && fpga > k80);
        assert!(rtx > fpga * 0.8 && rtx < fpga * 1.4, "RTX {rtx}");
        assert!(p100 > 3.0 * fpga && p100 < 6.0 * fpga, "P100 {p100}");
        assert!(v100 > 4.5 * fpga && v100 < 8.0 * fpga, "V100 {v100}");
        assert!(a100 > 6.5 * fpga && a100 < 10.5 * fpga, "A100 {a100}");
        // Ratios against the CPUs within ~25% of the quoted factors.
        assert!(
            (fpga / xeon - 1.17).abs() < 0.3,
            "Xeon ratio {}",
            fpga / xeon
        );
        assert!((fpga / i9 - 1.89).abs() < 0.45, "i9 ratio {}", fpga / i9);
        assert!((fpga / tx2 - 2.34).abs() < 0.6, "TX2 ratio {}", fpga / tx2);
    }

    #[test]
    fn tesla_gpus_peak_in_the_teraflops_range_at_production_degrees() {
        // Paper: P100 ≈ 1.3 TF, V100 ≈ 1.9 TF, A100 ≈ 2.3 TF for N in 7..11.
        let p100 = calibrated_model("P100").unwrap();
        let v100 = calibrated_model("V100").unwrap();
        let a100 = calibrated_model("A100").unwrap();
        let best = |m: &MachineModel| {
            (7..=11)
                .map(|n| m.achieved_gflops(n, ELEMENTS))
                .fold(0.0_f64, f64::max)
        };
        assert!(
            (best(&p100) - 1_300.0).abs() < 450.0,
            "P100 {}",
            best(&p100)
        );
        assert!(
            (best(&v100) - 1_900.0).abs() < 500.0,
            "V100 {}",
            best(&v100)
        );
        assert!(
            (best(&a100) - 2_300.0).abs() < 800.0,
            "A100 {}",
            best(&a100)
        );
    }

    #[test]
    fn small_problems_never_beat_large_problems() {
        for m in calibrated_models() {
            for degree in [3, 7, 11, 15] {
                let small = m.achieved_gflops(degree, 10);
                let large = m.achieved_gflops(degree, 8192);
                assert!(small < large, "{} degree {degree}", m.architecture.name);
            }
        }
    }

    #[test]
    fn achieved_performance_never_exceeds_the_roofline() {
        for m in calibrated_models() {
            for degree in 1..=16 {
                let achieved = m.achieved_gflops(degree, 65536);
                assert!(
                    achieved <= m.roofline_gflops(degree) + 1e-9,
                    "{} degree {degree}",
                    m.architecture.name
                );
            }
        }
    }

    #[test]
    fn power_efficiency_ordering_matches_the_paper() {
        // Paper: the FPGA (2.12 GF/W at N = 15) is more power-efficient than
        // every CPU and the K80, rivals the RTX 2060, and the Tesla GPUs are
        // 2.7-4.5x better.
        let fpga_eff = 2.12;
        for name in ["Xeon", "i9", "ThunderX2", "K80"] {
            let eff = calibrated_model(name)
                .unwrap()
                .gflops_per_watt(15, ELEMENTS);
            assert!(eff < fpga_eff, "{name}: {eff}");
        }
        let rtx = calibrated_model("RTX")
            .unwrap()
            .gflops_per_watt(15, ELEMENTS);
        assert!((rtx - fpga_eff).abs() < 0.8, "RTX efficiency {rtx}");
        for name in ["P100", "V100", "A100"] {
            let eff = calibrated_model(name)
                .unwrap()
                .gflops_per_watt(15, ELEMENTS);
            assert!(eff > 2.0 * fpga_eff, "{name}: {eff}");
        }
    }

    #[test]
    fn gpu_kernels_degrade_above_their_tuned_degrees() {
        let a100 = calibrated_model("A100").unwrap();
        assert_eq!(a100.degrade(9), 1.0);
        assert!(a100.degrade(15) < 0.55);
        let xeon = calibrated_model("Xeon").unwrap();
        assert_eq!(xeon.degrade(15), 1.0);
    }
}
