//! Table II: the architectures used in the evaluation, plus the registry of
//! simulatable FPGA devices that execution backends resolve by slug —
//! including the Section V-D *projected* devices the analytic model designs
//! on demand (`projected:<slug>`).

use perf_model::projection::design_fpga_for_targets;
use perf_model::resources::FpuCost;
use perf_model::FpgaDevice;
use serde::{Deserialize, Serialize};

/// Broad class of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MachineClass {
    /// Field-programmable gate array boards.
    Fpga,
    /// General-purpose server or desktop CPUs.
    Cpu,
    /// Discrete GPUs.
    Gpu,
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// Marketing name.
    pub name: String,
    /// Machine class.
    pub class: MachineClass,
    /// Process node in nanometres.
    pub tech_nm: u32,
    /// Peak double-precision performance in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Thermal design power in watts.
    pub tdp_watts: f64,
    /// Core/boost clock in MHz.
    pub frequency_mhz: f64,
    /// Release year.
    pub release_year: u32,
}

impl Architecture {
    /// Byte-per-FLOP ratio (the derived column of Table II).
    #[must_use]
    pub fn byte_per_flop(&self) -> f64 {
        self.bandwidth_gbs / self.peak_gflops
    }
}

#[allow(clippy::too_many_arguments)] // one argument per Table II column
fn arch(
    name: &str,
    class: MachineClass,
    tech_nm: u32,
    peak_gflops: f64,
    bandwidth_gbs: f64,
    tdp_watts: f64,
    frequency_mhz: f64,
    release_year: u32,
) -> Architecture {
    Architecture {
        name: name.to_string(),
        class,
        tech_nm,
        peak_gflops,
        bandwidth_gbs,
        tdp_watts,
        frequency_mhz,
        release_year,
    }
}

/// The nine architectures of Table II, in the paper's order.
///
/// The FPGA's "peak" is the paper's optimistic model bound at 400 MHz; the
/// GPU/CPU peaks are vendor double-precision figures.
#[must_use]
pub fn table2() -> Vec<Architecture> {
    vec![
        arch(
            "Stratix 10 GX2800 (520N)",
            MachineClass::Fpga,
            14,
            500.0,
            76.8,
            225.0,
            400.0,
            2016,
        ),
        arch(
            "Intel Xeon Gold 6130",
            MachineClass::Cpu,
            14,
            1_075.0,
            128.0,
            125.0,
            2_100.0,
            2017,
        ),
        arch(
            "Intel i9-10920X",
            MachineClass::Cpu,
            14,
            921.0,
            76.8,
            165.0,
            3_500.0,
            2019,
        ),
        arch(
            "Marvell ThunderX2",
            MachineClass::Cpu,
            16,
            512.0,
            170.0,
            180.0,
            2_000.0,
            2018,
        ),
        arch(
            "NVIDIA Tesla K80",
            MachineClass::Gpu,
            28,
            1_371.0,
            240.0,
            300.0,
            562.0,
            2014,
        ),
        arch(
            "NVIDIA Tesla P100 SXM2",
            MachineClass::Gpu,
            16,
            5_304.0,
            732.2,
            300.0,
            1_328.0,
            2016,
        ),
        arch(
            "NVIDIA RTX 2060 Super",
            MachineClass::Gpu,
            12,
            224.4,
            448.0,
            175.0,
            1_470.0,
            2019,
        ),
        arch(
            "NVIDIA Tesla V100 PCIe",
            MachineClass::Gpu,
            12,
            7_066.0,
            897.0,
            250.0,
            1_245.0,
            2017,
        ),
        arch(
            "NVIDIA A100 PCIe",
            MachineClass::Gpu,
            7,
            9_746.0,
            1_555.0,
            250.0,
            765.0,
            2020,
        ),
    ]
}

/// Look up an architecture by (case-insensitive) substring of its name.
#[must_use]
pub fn find(name_fragment: &str) -> Option<Architecture> {
    let needle = name_fragment.to_lowercase();
    table2()
        .into_iter()
        .find(|a| a.name.to_lowercase().contains(&needle))
}

/// The registry slugs of every simulatable FPGA device, in catalogue order.
///
/// These are the `<device>` part of `sem-accel`'s `fpga:<device>` backend
/// names; each resolves through [`fpga_device`].
///
/// Note on `stratix10m` vs `stratix10m-plus`: the "-plus" variant is *not*
/// mis-specified — it genuinely carries 8.7k DSPs (vs 5.7k) and 600 GB/s of
/// memory (vs 306 GB/s), exactly as Section V-D describes.  The two still
/// produce bitwise-identical modeled seconds at small degrees (e.g. the
/// `BENCH_batched.json` N = 7 sweep) because the production design's unroll
/// factor is capped by the power-of-two-*divisor* arbitration constraint
/// (`T | N + 1`, so `T ≤ 8` at N = 7) long before either device's DSPs or
/// bandwidth bind; with identical unroll, clock and base utilisation the
/// cycle model coincides.  The extra DSPs and bandwidth only pay off where
/// the cap lifts — degree 15 (`N + 1 = 16` admits `T = 16`) — which
/// `fpga-sim`'s `stratix10m_plus_diverges_when_the_divisor_cap_lifts` test
/// pins down.
#[must_use]
pub fn fpga_device_slugs() -> Vec<&'static str> {
    vec![
        "stratix10-gx2800",
        "agilex-027",
        "stratix10m",
        "stratix10m-plus",
        "ideal",
    ]
}

/// The registry slugs of the Section V-D *projected* devices: boards that do
/// not exist, designed on demand by the analytic model
/// (`perf_model::projection::design_fpga_for_targets`).  They are the
/// `<device>` part of `sem-accel`'s `fpga:projected:<slug>` backend names and
/// resolve through [`fpga_device`] like every catalogue slug, so a scheduler
/// can pool hypothetical devices next to real ones.
#[must_use]
pub fn projected_fpga_slugs() -> Vec<&'static str> {
    vec!["projected:a100-class", "projected:v100-class"]
}

/// Kernel-performance targets (degree, GFLOP/s) the `projected:a100-class`
/// device is designed for — the paper's A100 comparison points of
/// Section V-D.
pub const A100_CLASS_TARGETS: [(usize, f64); 3] = [(7, 2_100.0), (11, 3_000.0), (15, 3_970.0)];

/// Kernel-performance targets (degree, GFLOP/s) the `projected:v100-class`
/// device is designed for: ~80% of the V100's kernel roofline
/// (897 GB/s · I(N)), the achieved-bandwidth fraction the paper observes.
pub const V100_CLASS_TARGETS: [(usize, f64); 3] = [(7, 1_240.0), (11, 1_780.0), (15, 2_320.0)];

/// Build a Section V-D projected device from its bare slug (without the
/// `projected:` prefix).  Backed by the analytic model's inverse direction:
/// [`design_fpga_for_targets`] sizes fabric and memory so the device reaches
/// the named GPU's kernel performance at 300 MHz.
fn design_projected_device(slug: &str) -> Option<FpgaDevice> {
    let (name, targets): (&str, &[(usize, f64)]) = match slug {
        "a100-class" => (
            "Projected A100-class FPGA (model-designed)",
            &A100_CLASS_TARGETS,
        ),
        "v100-class" => (
            "Projected V100-class FPGA (model-designed)",
            &V100_CLASS_TARGETS,
        ),
        _ => return None,
    };
    let mut device = design_fpga_for_targets(targets, 300.0, FpuCost::stratix10_double());
    device.name = name.to_string();
    Some(device)
}

/// Resolve an FPGA device slug (see [`fpga_device_slugs`] and
/// [`projected_fpga_slugs`]) to its full description, case-insensitively.
/// The evaluated Bittware 520N also answers to its board name `520n`;
/// `projected:<slug>` entries are designed on the fly by the analytic model.
#[must_use]
pub fn fpga_device(slug: &str) -> Option<FpgaDevice> {
    let lower = slug.to_lowercase();
    if let Some(projected) = lower.strip_prefix("projected:") {
        return design_projected_device(projected);
    }
    match lower.as_str() {
        "stratix10-gx2800" | "520n" | "gx2800" => Some(FpgaDevice::stratix10_gx2800()),
        "agilex-027" => Some(FpgaDevice::agilex_027()),
        "stratix10m" => Some(FpgaDevice::stratix10m()),
        "stratix10m-plus" => Some(FpgaDevice::stratix10m_plus()),
        "ideal" => Some(FpgaDevice::hypothetical_ideal()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_nine_rows_in_three_classes() {
        let t = table2();
        assert_eq!(t.len(), 9);
        assert_eq!(t.iter().filter(|a| a.class == MachineClass::Cpu).count(), 3);
        assert_eq!(t.iter().filter(|a| a.class == MachineClass::Gpu).count(), 5);
        assert_eq!(
            t.iter().filter(|a| a.class == MachineClass::Fpga).count(),
            1
        );
    }

    #[test]
    fn derived_byte_per_flop_matches_table2() {
        // Spot-check the derived column against the paper: FPGA 0.154,
        // i9 0.083, ThunderX2 0.33, A100 0.16.
        let checks = [
            ("Stratix", 0.154),
            ("i9", 0.083),
            ("ThunderX2", 0.33),
            ("A100", 0.16),
        ];
        for (name, expected) in checks {
            let a = find(name).unwrap();
            assert!(
                (a.byte_per_flop() - expected).abs() < 0.01,
                "{name}: {}",
                a.byte_per_flop()
            );
        }
    }

    #[test]
    fn the_a100_has_the_highest_bandwidth_and_the_fpga_the_lowest() {
        let t = table2();
        let max = t
            .iter()
            .max_by(|a, b| a.bandwidth_gbs.total_cmp(&b.bandwidth_gbs))
            .unwrap();
        let min = t
            .iter()
            .min_by(|a, b| a.bandwidth_gbs.total_cmp(&b.bandwidth_gbs))
            .unwrap();
        assert!(max.name.contains("A100"));
        assert!(min.class == MachineClass::Fpga || min.name.contains("i9"));
        assert!((min.bandwidth_gbs - 76.8).abs() < 1e-9);
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(find("thunderx2").is_some());
        assert!(find("does-not-exist").is_none());
    }

    #[test]
    fn every_fpga_slug_resolves_to_a_device() {
        for slug in fpga_device_slugs() {
            let device = fpga_device(slug)
                .unwrap_or_else(|| panic!("slug `{slug}` must resolve to a device"));
            assert!(device.memory_bandwidth_gbs > 0.0, "{slug}");
        }
        assert_eq!(fpga_device_slugs().len(), FpgaDevice::catalogue().len());
        assert!(fpga_device("520N").is_some(), "board alias resolves");
        assert!(fpga_device("no-such-device").is_none());
    }

    #[test]
    fn projected_slugs_resolve_to_distinct_model_designed_devices() {
        let mut names = Vec::new();
        for slug in projected_fpga_slugs() {
            let device =
                fpga_device(slug).unwrap_or_else(|| panic!("projected slug `{slug}` must resolve"));
            assert!(device.release_year == 0, "{slug} is hypothetical");
            assert!(device.memory_bandwidth_gbs > 0.0);
            names.push(device.name);
        }
        names.sort();
        names.dedup();
        assert_eq!(
            names.len(),
            projected_fpga_slugs().len(),
            "projected devices must have distinct names for reverse lookup"
        );
        assert!(fpga_device("projected:no-such-gpu").is_none());
        // Case-insensitive like the rest of the registry.
        assert!(fpga_device("PROJECTED:A100-CLASS").is_some());
    }

    #[test]
    fn projected_devices_hit_their_design_targets_under_the_forward_model() {
        // The inverse direction (design_fpga_for_targets) and the forward
        // direction (project_device) must agree: projecting the designed
        // device over its target degrees reaches the targets it was sized
        // for, modulo the arbitration-policy rounding of the unroll factor.
        use perf_model::projection::project_device;
        use perf_model::throughput::ArbitrationPolicy;
        for (slug, targets) in [
            ("projected:a100-class", A100_CLASS_TARGETS),
            ("projected:v100-class", V100_CLASS_TARGETS),
        ] {
            let device = fpga_device(slug).unwrap();
            let degrees: Vec<usize> = targets.iter().map(|&(n, _)| n).collect();
            let outcome =
                project_device(&device, &degrees, 300.0, ArbitrationPolicy::Unconstrained);
            for (degree, gflops) in targets {
                let got = outcome.for_degree(degree).unwrap().prediction.gflops;
                assert!(
                    got >= 0.9 * gflops,
                    "{slug} degree {degree}: projected {got:.0} vs target {gflops:.0}"
                );
            }
        }
        // The A100-class board needs A100-class memory; the V100-class one
        // strictly less.
        let a100 = fpga_device("projected:a100-class").unwrap();
        let v100 = fpga_device("projected:v100-class").unwrap();
        assert!(a100.memory_bandwidth_gbs > v100.memory_bandwidth_gbs);
        assert!(a100.memory_bandwidth_gbs > 1_000.0);
    }
}
