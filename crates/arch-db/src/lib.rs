//! Evaluation-architecture catalogue and calibrated machine models.
//!
//! The paper compares its FPGA accelerator against three CPUs and five GPUs
//! (Table II), running Nekbone's `Ax` kernel on the CPUs and the tuned CUDA
//! kernel of Karp et al. on the GPUs.  None of that hardware is available to
//! this reproduction, so this crate provides:
//!
//! * [`catalog`] — the static Table II data (peak double-precision
//!   performance, memory bandwidth, TDP, process node, clock, release year)
//!   plus derived metrics such as byte-per-FLOP ratios;
//! * [`machine_model`] — analytic per-architecture kernel models calibrated
//!   against the performance ratios the paper reports (who beats whom, by
//!   which factor, at which polynomial degree), producing
//!   GFLOP/s(degree, #elements) curves and power estimates with the same
//!   shape as Fig. 1 and Fig. 2.
//!
//! The calibration targets and their provenance are documented in
//! `EXPERIMENTS.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod machine_model;

pub use catalog::{
    fpga_device, fpga_device_slugs, projected_fpga_slugs, table2, Architecture, MachineClass,
};
pub use machine_model::{calibrated_models, MachineModel};
