//! On-chip buffer (BRAM) accounting.
//!
//! The accelerator keeps one element's working set on chip (Section III-B):
//! the operand `u`, the three intermediate arrays `shur`/`shus`/`shut` and the
//! six split geometric-factor planes — ten arrays of `(N+1)^3` doubles.  Each
//! array is cyclically partitioned into `T` banks so the unrolled datapath can
//! read `T` values per cycle without arbitration, and double-buffered so the
//! load of element `e+1` overlaps the compute of element `e`.  M20K blocks
//! hold 20 kbit (2.5 kB) each, but a partition never occupies less than one
//! block.

use crate::design::AcceleratorDesign;
use perf_model::FpgaDevice;

/// Bytes of one M20K block RAM.
pub const M20K_BYTES: usize = 2_560;

/// Number of distinct on-chip arrays the kernel keeps per element.
pub const ON_CHIP_ARRAYS: usize = 10;

/// Double-buffering factor (load/compute overlap).
pub const DOUBLE_BUFFER: usize = 2;

/// Number of M20K blocks one array of `dofs` doubles needs when cyclically
/// partitioned into `banks` banks.
#[must_use]
pub fn blocks_for_array(dofs: usize, banks: usize) -> usize {
    let banks = banks.max(1);
    let words_per_bank = dofs.div_ceil(banks);
    let bytes_per_bank = words_per_bank * std::mem::size_of::<f64>();
    banks * bytes_per_bank.div_ceil(M20K_BYTES)
}

/// Total M20K blocks the design's element working set requires.
#[must_use]
pub fn design_bram_blocks(design: &AcceleratorDesign) -> usize {
    let dofs = design.dofs_per_element();
    ON_CHIP_ARRAYS * DOUBLE_BUFFER * blocks_for_array(dofs, design.unroll)
}

/// Whether the working set fits in the device BRAM next to the base design
/// (memory controllers, load/store units) which is accounted for in the
/// calibrated base utilisation.
#[must_use]
pub fn fits_in_device(design: &AcceleratorDesign, device: &FpgaDevice, base_brams: f64) -> bool {
    (design_bram_blocks(design) as f64 + base_brams) <= device.resources.brams
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::OptimizationStage;

    #[test]
    fn block_counts_round_up_per_bank() {
        // 512 doubles in 4 banks: 128 doubles = 1 kB per bank -> 1 block each.
        assert_eq!(blocks_for_array(512, 4), 4);
        // 4096 doubles in 4 banks: 8 kB per bank -> 4 blocks each.
        assert_eq!(blocks_for_array(4096, 4), 16);
        // Tiny arrays still cost one block per bank.
        assert_eq!(blocks_for_array(8, 2), 2);
    }

    #[test]
    fn bram_demand_grows_with_degree() {
        let device = FpgaDevice::stratix10_gx2800();
        let mut prev = 0;
        for degree in [1, 3, 7, 11, 15] {
            let d = AcceleratorDesign::for_degree(degree, &device);
            let blocks = design_bram_blocks(&d);
            assert!(blocks >= prev, "degree {degree}");
            prev = blocks;
        }
    }

    #[test]
    fn every_table1_design_fits_the_gx2800() {
        // The paper's BRAM column never exceeds 53%, so with the calibrated
        // base the working set must always fit.
        let device = FpgaDevice::stratix10_gx2800();
        for degree in [1_usize, 3, 5, 7, 9, 11, 13, 15] {
            let d = AcceleratorDesign::for_degree(degree, &device);
            let base = perf_model::projection::calibrated_base(degree);
            assert!(fits_in_device(&d, &device, base.brams), "degree {degree}");
        }
    }

    #[test]
    fn padding_increases_the_working_set() {
        let device = FpgaDevice::stratix10_gx2800();
        let plain = AcceleratorDesign::at_stage(9, &device, OptimizationStage::Banked);
        let mut padded = plain;
        padded.unroll = 4;
        padded.host_padding = true;
        assert!(design_bram_blocks(&padded) > design_bram_blocks(&plain));
    }
}
