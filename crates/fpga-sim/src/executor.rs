//! Functional + timing execution of the simulated accelerator.
//!
//! [`FpgaAccelerator::execute`] produces the actual kernel output (by running
//! the same double-precision arithmetic as the host kernels) together with a
//! cycle-level timing estimate derived from the design parameters:
//!
//! * the unrolled datapath retires `T / II` DOFs per cycle when fed,
//!   halved if the unroll factor does not divide `N+1` (BRAM arbitration);
//! * the external memory feeds at most `B_eff / 64` DOFs per cycle, where
//!   `B_eff` follows the allocation policy and the problem-size ramp of
//!   [`crate::memory::MemorySystem`];
//! * each element pays a pipeline fill/drain of `2 (N+1)` cycles and each
//!   kernel launch a fixed overhead, which is what bends the small-problem
//!   end of Fig. 1;
//! * the unpipelined baseline stage is modelled separately (serial FP
//!   latency and uncoalesced accesses), reproducing the ~0.025 GFLOP/s
//!   starting point of the Section III ladder.

use crate::design::{AcceleratorDesign, OptimizationStage};
use crate::memory::MemorySystem;
use crate::power::PowerModel;
use crate::synthesis::{synthesize, SynthesisReport};
use perf_model::FpgaDevice;
use sem_basis::DerivativeMatrix;
use sem_mesh::{ElementField, GeometricFactors};
use sem_obs::{recorder, Scope, SpanEvent, SpanKind};
use serde::{Deserialize, Serialize};

/// Kernel-launch overhead in cycles (queue submission, control, DMA setup).
pub const LAUNCH_OVERHEAD_CYCLES: f64 = 2_000.0;

/// Serial floating-point latency (cycles per FLOP) of the unpipelined
/// baseline design.
pub const BASELINE_FLOP_LATENCY: f64 = 8.0;

/// Cycles per uncoalesced external word of the baseline design.
pub const BASELINE_WORD_LATENCY: f64 = 70.0;

/// HLS scheduling efficiency of the `LocalMemory` ladder stage (the compiler
/// still serialises parts of the datapath before the II=1 pragma is applied).
pub const LOCAL_MEMORY_STAGE_EFFICIENCY: f64 = 0.17;

/// Timing and efficiency figures of one simulated accelerator run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Polynomial degree.
    pub degree: usize,
    /// Number of elements processed.
    pub num_elements: usize,
    /// Total simulated kernel cycles.
    pub cycles: f64,
    /// Kernel clock used (MHz).
    pub kernel_clock_mhz: f64,
    /// Simulated wall time in seconds.
    pub seconds: f64,
    /// Achieved double-precision GFLOP/s.
    pub gflops: f64,
    /// Achieved throughput in DOFs per cycle.
    pub dofs_per_cycle: f64,
    /// Effective external bandwidth in GB/s.
    pub effective_bandwidth_gbs: f64,
    /// Board power estimate in watts.
    pub power_watts: f64,
    /// Power efficiency in GFLOP/s per watt.
    pub gflops_per_watt: f64,
}

/// Per-stage breakdown of a (possibly batched) kernel invocation's simulated
/// time — the compute-stage hook a host-side pipeline model builds on.
///
/// The serving layer (`sem-serve`) schedules the kernel as the middle stage
/// of an upload/compute/download pipeline; this struct tells it how much of
/// the compute stage is a fixed once-per-submission launch cost
/// ([`LAUNCH_OVERHEAD_CYCLES`]) versus per-application pipeline work, so a
/// batched submission can amortise the former without re-deriving the cycle
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelStageTiming {
    /// Polynomial degree of the design.
    pub degree: usize,
    /// Elements per application.
    pub num_elements: usize,
    /// Applications in the batch.
    pub batch: usize,
    /// Kernel clock the figures assume (MHz).
    pub kernel_clock_mhz: f64,
    /// Fixed launch overhead, paid once per batched submission (seconds).
    pub launch_seconds: f64,
    /// Pipeline work (steady state plus per-element fill/drain) of one
    /// application (seconds).
    pub work_seconds_per_application: f64,
    /// Whole-batch compute-stage seconds: `launch + batch · work`.
    pub total_seconds: f64,
}

/// A simulated accelerator: a design synthesised onto a device.
#[derive(Debug, Clone)]
pub struct FpgaAccelerator {
    device: FpgaDevice,
    design: AcceleratorDesign,
    synthesis: SynthesisReport,
    memory: MemorySystem,
    power: PowerModel,
    derivative: DerivativeMatrix,
}

impl FpgaAccelerator {
    /// Synthesise `design` for `device` and construct the simulator.
    ///
    /// # Panics
    /// Panics if the design does not fit on the device.
    #[must_use]
    pub fn new(device: FpgaDevice, design: AcceleratorDesign) -> Self {
        let synthesis = synthesize(&design, &device);
        assert!(
            synthesis.fits,
            "design for degree {} does not fit on {}",
            design.degree, device.name
        );
        let memory = MemorySystem::of_device(&device, design.memory_allocation);
        let derivative = DerivativeMatrix::new(design.degree);
        Self {
            device,
            design,
            synthesis,
            memory,
            power: PowerModel::stratix10_board(),
            derivative,
        }
    }

    /// The production accelerator for `degree` on `device`.
    #[must_use]
    pub fn for_degree(degree: usize, device: &FpgaDevice) -> Self {
        Self::new(
            device.clone(),
            AcceleratorDesign::for_degree(degree, device),
        )
    }

    /// The synthesised design.
    #[must_use]
    pub fn design(&self) -> &AcceleratorDesign {
        &self.design
    }

    /// The synthesis report.
    #[must_use]
    pub fn synthesis(&self) -> &SynthesisReport {
        &self.synthesis
    }

    /// The device the accelerator is mapped onto.
    #[must_use]
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// The external-memory model the estimates run against.
    #[must_use]
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Board power estimate for this design (W).
    #[must_use]
    pub fn power_watts(&self) -> f64 {
        self.power
            .board_power(&self.synthesis.utilisation, self.synthesis.fmax_mhz)
    }

    /// Estimate the timing of processing `num_elements` elements without
    /// running the numerics (used for the large Fig. 1/2 sweeps).
    #[must_use]
    pub fn estimate(&self, num_elements: usize) -> ExecutionReport {
        let degree = self.design.degree;
        let nx = degree + 1;
        let dofs_per_element = sem_basis::dofs_per_element(degree) as f64;
        let total_dofs = dofs_per_element * num_elements as f64;
        let flops_per_dof = sem_kernel::flops_per_dof(degree) as f64;
        let bytes_per_dof = sem_kernel::bytes_per_dof(degree) as f64;
        let total_bytes = bytes_per_dof * total_dofs;
        let f_mhz = self.synthesis.fmax_mhz;

        let cycles = match self.design.stage {
            OptimizationStage::Baseline => {
                // Serial, unpipelined, uncoalesced: latency-bound per FLOP and
                // per external word.
                total_dofs
                    * (flops_per_dof * BASELINE_FLOP_LATENCY
                        + (bytes_per_dof / 8.0) * BASELINE_WORD_LATENCY)
                    + LAUNCH_OVERHEAD_CYCLES
            }
            stage => {
                let ii = self.design.initiation_interval as f64;
                let mut compute_rate = self.design.unroll as f64 / ii;
                if !self.design.arbitration_free() {
                    // Arbitration on the shared scratch arrays roughly halves
                    // the issue rate (Section III-B).
                    compute_rate *= 0.5;
                }
                if stage == OptimizationStage::LocalMemory {
                    compute_rate *= LOCAL_MEMORY_STAGE_EFFICIENCY;
                }
                let memory_rate =
                    self.memory.effective_bytes_per_cycle(total_bytes, f_mhz) / bytes_per_dof;
                let steady_rate = compute_rate.min(memory_rate).max(1e-9);
                // Per-element pipeline fill/drain: about half the element
                // extent in cycles (calibrated against Table I's DOFs/cycle).
                let fill = 0.5 * nx as f64 * num_elements as f64;
                total_dofs / steady_rate + fill + LAUNCH_OVERHEAD_CYCLES
            }
        };

        let seconds = cycles / (f_mhz * 1e6);
        let gflops = flops_per_dof * total_dofs / seconds / 1e9;
        let dofs_per_cycle = total_dofs / cycles;
        let effective_bandwidth_gbs = total_bytes / seconds / 1e9;
        let power_watts = self.power_watts();

        ExecutionReport {
            degree,
            num_elements,
            cycles,
            kernel_clock_mhz: f_mhz,
            seconds,
            gflops,
            dofs_per_cycle,
            effective_bandwidth_gbs,
            power_watts,
            gflops_per_watt: gflops / power_watts,
        }
    }

    /// Estimate the timing of `batch` back-to-back kernel invocations
    /// submitted as one command-queue batch (the many-RHS serving shape):
    /// steady-state and pipeline fill/drain cycles scale with the batch,
    /// while the fixed launch overhead ([`LAUNCH_OVERHEAD_CYCLES`]) is paid
    /// once for the whole batch.
    ///
    /// The report's rate figures (GFLOP/s, DOFs/cycle, bandwidth) and
    /// `seconds`/`cycles` cover the **whole batch**; `num_elements` stays
    /// the per-application element count.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn estimate_batch(&self, num_elements: usize, batch: usize) -> ExecutionReport {
        assert!(batch > 0, "need at least one application in the batch");
        let single = self.estimate(num_elements);
        if batch == 1 {
            return single;
        }
        // Both the baseline and the pipelined stages charge the launch
        // overhead additively, so the per-application work is what remains.
        let work_cycles = (single.cycles - LAUNCH_OVERHEAD_CYCLES).max(0.0);
        let cycles = work_cycles * batch as f64 + LAUNCH_OVERHEAD_CYCLES;
        let seconds = cycles / (single.kernel_clock_mhz * 1e6);
        let total_dofs =
            sem_basis::dofs_per_element(self.design.degree) as f64 * num_elements as f64;
        let batch_dofs = total_dofs * batch as f64;
        let flops = sem_kernel::flops_per_dof(self.design.degree) as f64 * batch_dofs;
        let bytes = sem_kernel::bytes_per_dof(self.design.degree) as f64 * batch_dofs;
        let gflops = flops / seconds / 1e9;
        ExecutionReport {
            cycles,
            seconds,
            gflops,
            dofs_per_cycle: batch_dofs / cycles,
            effective_bandwidth_gbs: bytes / seconds / 1e9,
            gflops_per_watt: gflops / single.power_watts,
            ..single
        }
    }

    /// The launch/work split of one kernel invocation over `num_elements`
    /// elements — the stage-timing hook pipeline schedulers consume.
    #[must_use]
    pub fn stage_timing(&self, num_elements: usize) -> KernelStageTiming {
        self.batch_stage_timing(num_elements, 1)
    }

    /// The launch/work split of `batch` back-to-back invocations submitted
    /// as one command-queue batch.  Consistent with
    /// [`FpgaAccelerator::estimate_batch`]: `total_seconds` equals the
    /// batched estimate's seconds bitwise.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn batch_stage_timing(&self, num_elements: usize, batch: usize) -> KernelStageTiming {
        assert!(batch > 0, "need at least one application in the batch");
        let single = self.estimate(num_elements);
        let hz = single.kernel_clock_mhz * 1e6;
        let work_cycles = (single.cycles - LAUNCH_OVERHEAD_CYCLES).max(0.0);
        let timing = KernelStageTiming {
            degree: self.design.degree,
            num_elements,
            batch,
            kernel_clock_mhz: single.kernel_clock_mhz,
            launch_seconds: LAUNCH_OVERHEAD_CYCLES / hz,
            work_seconds_per_application: work_cycles / hz,
            // Delegate the total to the batched estimate itself so the two
            // stay consistent structurally, not by parallel maintenance.
            total_seconds: self.estimate_batch(num_elements, batch).seconds,
        };
        let obs = recorder();
        if obs.is_enabled() {
            // Cycle-model output only: deterministic by construction, stamped
            // relative to the submission (the serving pipeline re-anchors it).
            let start = obs.stamp(0.0);
            let end = obs.stamp(timing.total_seconds);
            obs.record(
                SpanEvent::new(SpanKind::SimStage, Scope::Deterministic, start, end)
                    .with_label(obs.intern(&self.device.name))
                    .with_index(batch as u64),
            );
            let labels = [("device", self.device.name.as_str())];
            obs.counter_add("sem_sim_launches_total", &labels, 1);
            obs.observe("sem_sim_stage_seconds", &labels, timing.total_seconds);
        }
        timing
    }

    /// Execute the kernel: compute `w = A u` for every element (numerically,
    /// on the host, standing in for the datapath) and return the result
    /// together with the timing estimate.
    ///
    /// # Panics
    /// Panics if the field and geometric factors do not match the design's
    /// degree.
    #[must_use]
    pub fn execute(
        &self,
        u: &ElementField,
        geometry: &GeometricFactors,
    ) -> (ElementField, ExecutionReport) {
        let mut w = ElementField::zeros(u.degree(), u.num_elements());
        let report = self.execute_into(u, geometry, &mut w);
        (w, report)
    }

    /// Execute the kernel into a preallocated output field (the
    /// allocation-free path used by backend-routed solver iterations).
    ///
    /// # Panics
    /// Panics if the fields and geometric factors do not match the design's
    /// degree and each other.
    pub fn execute_into(
        &self,
        u: &ElementField,
        geometry: &GeometricFactors,
        w: &mut ElementField,
    ) -> ExecutionReport {
        assert_eq!(
            geometry.degree(),
            self.design.degree,
            "geometry degree mismatch"
        );
        assert_eq!(
            u.num_elements(),
            geometry.num_elements(),
            "element count mismatch"
        );
        self.execute_planes_into(u, &geometry.split(), w)
    }

    /// Like [`FpgaAccelerator::execute_into`], but on pre-split
    /// geometric-factor planes, so callers that apply the operator
    /// repeatedly (e.g. a backend inside a CG iteration) can split the
    /// geometry once instead of re-allocating the planes per application.
    ///
    /// # Panics
    /// Panics if the fields and planes do not match the design's degree and
    /// each other.
    pub fn execute_planes_into(
        &self,
        u: &ElementField,
        planes: &[Vec<f64>; 6],
        w: &mut ElementField,
    ) -> ExecutionReport {
        assert_eq!(u.degree(), self.design.degree, "field degree mismatch");
        assert_eq!(u.len(), w.len(), "output field size mismatch");
        // The datapath evaluates the same split-layout dataflow as the
        // optimised host kernel; results agree with the reference kernel to
        // rounding (the real accelerator reorders operations too, via
        // -ffp-reassoc).
        sem_kernel::optimized::ax_optimized(
            u.as_slice(),
            w.as_mut_slice(),
            planes,
            &self.derivative,
        );
        self.estimate(u.num_elements())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_model::measured_table1;
    use sem_mesh::BoxMesh;

    #[test]
    fn production_designs_reproduce_table1_within_tolerance() {
        // The simulated GFLOP/s at 4096 elements must land near the measured
        // Table I values: within 12% for the paper's headline degrees 7, 11,
        // 15 and within 45% elsewhere (the paper's own model error reaches
        // 28% for the small degrees, whose effective bandwidth is anomalous).
        let device = FpgaDevice::stratix10_gx2800();
        for row in measured_table1() {
            let acc = FpgaAccelerator::for_degree(row.degree, &device);
            let est = acc.estimate(4096);
            let rel = (est.gflops - row.gflops).abs() / row.gflops;
            let tol = if matches!(row.degree, 7 | 11 | 15) {
                0.12
            } else {
                0.45
            };
            assert!(
                rel < tol,
                "degree {}: simulated {:.1} vs measured {:.1} GFLOP/s ({:.0}%)",
                row.degree,
                est.gflops,
                row.gflops,
                rel * 100.0
            );
        }
    }

    #[test]
    fn throughput_never_exceeds_the_model_bound() {
        // The simulator must respect the paper's T_max = 4 bound on this board.
        let device = FpgaDevice::stratix10_gx2800();
        for degree in [1, 3, 5, 7, 9, 11, 13, 15] {
            let acc = FpgaAccelerator::for_degree(degree, &device);
            for elements in [16, 256, 4096] {
                let est = acc.estimate(elements);
                assert!(
                    est.dofs_per_cycle <= 4.0 + 1e-9,
                    "degree {degree}, {elements} elements: {}",
                    est.dofs_per_cycle
                );
            }
        }
    }

    #[test]
    fn performance_ramps_with_problem_size() {
        let device = FpgaDevice::stratix10_gx2800();
        let acc = FpgaAccelerator::for_degree(7, &device);
        let small = acc.estimate(10);
        let medium = acc.estimate(512);
        let large = acc.estimate(8192);
        assert!(small.gflops < medium.gflops);
        assert!(medium.gflops < large.gflops);
        assert!(large.gflops > 100.0);
    }

    #[test]
    fn optimisation_ladder_reproduces_section_iii() {
        let device = FpgaDevice::stratix10_gx2800();
        let gflops: Vec<f64> = OptimizationStage::ladder()
            .iter()
            .map(|&stage| {
                let design = AcceleratorDesign::at_stage(7, &device, stage);
                FpgaAccelerator::new(device.clone(), design)
                    .estimate(4096)
                    .gflops
            })
            .collect();
        // 0.025 -> ~10 -> ~60 -> ~109 GFLOP/s: each rung must be a large
        // multiple of the previous one, and the end points must be close to
        // the paper's numbers.
        assert!(gflops[0] < 0.1, "baseline {:.3}", gflops[0]);
        assert!(gflops[1] / gflops[0] > 50.0, "local-memory jump");
        assert!(gflops[2] / gflops[1] > 3.0, "II=1 jump");
        assert!(gflops[3] > gflops[2], "banking jump");
        assert!((gflops[3] - 109.0).abs() < 15.0, "final {:.1}", gflops[3]);
    }

    #[test]
    fn execute_matches_the_reference_kernel() {
        let degree = 5;
        let mesh = BoxMesh::unit_cube(degree, 2);
        let geo = GeometricFactors::from_mesh(&mesh);
        let device = FpgaDevice::stratix10_gx2800();
        let acc = FpgaAccelerator::for_degree(degree, &device);
        let u = mesh.evaluate(|x, y, z| (2.0 * x).sin() + y * z);
        let (w, report) = acc.execute(&u, &geo);

        let dm = DerivativeMatrix::new(degree);
        let mut w_ref = vec![0.0; u.len()];
        sem_kernel::reference::ax_reference(u.as_slice(), &mut w_ref, geo.interleaved(), &dm);
        for (a, b) in w.as_slice().iter().zip(&w_ref) {
            assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()));
        }
        assert_eq!(report.num_elements, 8);
        assert!(report.seconds > 0.0);
        assert!(report.gflops_per_watt > 0.0);
    }

    #[test]
    fn batched_estimate_amortises_the_launch_overhead() {
        let device = FpgaDevice::stratix10_gx2800();
        let acc = FpgaAccelerator::for_degree(7, &device);
        let single = acc.estimate(64);
        assert_eq!(acc.estimate_batch(64, 1), single);
        for batch in [4, 16, 64] {
            let batched = acc.estimate_batch(64, batch);
            // Per-application seconds shrink (one launch overhead for the
            // whole batch) but never below the launch-free work itself.
            let per_app = batched.seconds / batch as f64;
            assert!(per_app < single.seconds, "batch {batch}: {per_app}");
            let work_seconds =
                (single.cycles - LAUNCH_OVERHEAD_CYCLES) / (single.kernel_clock_mhz * 1e6);
            assert!(per_app > work_seconds * (1.0 - 1e-12), "batch {batch}");
            assert!(batched.gflops > single.gflops);
            assert!(batched.dofs_per_cycle <= 4.0 + 1e-9, "throughput bound");
        }
    }

    #[test]
    fn stage_timing_splits_the_batched_estimate_consistently() {
        let device = FpgaDevice::stratix10_gx2800();
        let acc = FpgaAccelerator::for_degree(7, &device);
        let single = acc.stage_timing(64);
        assert_eq!(single.batch, 1);
        assert_eq!(single.total_seconds, acc.estimate(64).seconds);
        assert!(single.launch_seconds > 0.0);
        assert!(single.work_seconds_per_application > single.launch_seconds);
        for batch in [2, 16, 64] {
            let staged = acc.batch_stage_timing(64, batch);
            // Bitwise the same total as the batched estimate...
            assert_eq!(staged.total_seconds, acc.estimate_batch(64, batch).seconds);
            // ...with the launch paid once and the work per application.
            assert_eq!(staged.launch_seconds, single.launch_seconds);
            assert_eq!(
                staged.work_seconds_per_application,
                single.work_seconds_per_application
            );
        }
    }

    #[test]
    fn stratix10m_plus_matches_the_base_device_under_the_divisor_cap() {
        // `fpga:stratix10m` and `fpga:stratix10m-plus` produce bitwise
        // identical modeled seconds in the N = 7 `BENCH_batched.json` sweep.
        // That is not a catalogue bug: at N = 7 the power-of-two-divisor
        // arbitration constraint caps the unroll at T = 8 for both devices,
        // well below where the "-plus" variant's extra DSPs (8.7k vs 5.7k)
        // or bandwidth (600 vs 306 GB/s) would bind, and with identical
        // unroll, clock and base utilisation the cycle model coincides.
        let base = FpgaDevice::stratix10m();
        let plus = FpgaDevice::stratix10m_plus();
        for degree in [7_usize, 11] {
            let db = AcceleratorDesign::for_degree(degree, &base);
            let dp = AcceleratorDesign::for_degree(degree, &plus);
            assert_eq!(db.unroll, dp.unroll, "degree {degree}: divisor-capped");
            let ab = FpgaAccelerator::new(base.clone(), db);
            let ap = FpgaAccelerator::new(plus.clone(), dp);
            for elements in [64, 4096] {
                assert_eq!(
                    ab.estimate(elements).seconds.to_bits(),
                    ap.estimate(elements).seconds.to_bits(),
                    "degree {degree}, {elements} elements: same design, same seconds"
                );
            }
        }
    }

    #[test]
    fn stratix10m_plus_diverges_when_the_divisor_cap_lifts() {
        // At N = 15 the divisor constraint admits T = 16; only the "-plus"
        // variant has the DSPs and the 600 GB/s memory to sustain it, so the
        // two devices finally separate — the extra resources are really
        // there, they just need a degree whose N + 1 can use them.
        let base = FpgaDevice::stratix10m();
        let plus = FpgaDevice::stratix10m_plus();
        let db = AcceleratorDesign::for_degree(15, &base);
        let dp = AcceleratorDesign::for_degree(15, &plus);
        assert!(dp.unroll > db.unroll, "{} vs {}", dp.unroll, db.unroll);
        let ab = FpgaAccelerator::new(base, db);
        let ap = FpgaAccelerator::new(plus, dp);
        let sb = ab.estimate(4096).seconds;
        let sp = ap.estimate(4096).seconds;
        assert!(
            sp < 0.75 * sb,
            "-plus must be much faster at N = 15: {sp} vs {sb}"
        );
    }

    #[test]
    fn power_efficiency_beats_two_gflops_per_watt_at_degree_15() {
        // Table I: 2.12 GFLOP/s/W at N = 15.
        let device = FpgaDevice::stratix10_gx2800();
        let acc = FpgaAccelerator::for_degree(15, &device);
        let est = acc.estimate(4096);
        assert!(
            est.gflops_per_watt > 1.8 && est.gflops_per_watt < 2.5,
            "efficiency {}",
            est.gflops_per_watt
        );
    }
}
