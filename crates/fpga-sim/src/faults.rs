//! Deterministic fault injection for simulated devices.
//!
//! Real accelerator pools fail in a handful of characteristic ways: a
//! transient upset corrupts one kernel result, a board dies outright, a
//! link or clock degrades and everything slows down, or a kernel hangs and
//! never returns.  This module models all four **deterministically**: a
//! [`FaultPlan`] schedules faults at *operator-application counts* (never
//! wall-clock), so a faulty run is exactly reproducible on any host — the
//! property every recovery proof in `sem-serve` leans on.
//!
//! The runtime half is a [`FaultState`]: a shared, thread-safe op counter
//! that consumes the plan in order and tells the backend, per application,
//! whether to succeed, corrupt the result, or fail with a typed
//! [`DeviceError`].  Hangs are surfaced as errors too — the simulator plays
//! the role of the modeled-time watchdog that would fire on a real host, so
//! a hung kernel costs an error and a retry, never a stuck thread.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// What a scheduled fault does to the device when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// One operator application returns a corrupted result (a bit flip in
    /// the output field).  The device stays healthy afterwards.
    Transient,
    /// The device dies: this and every later application fails with
    /// [`DeviceError::Dead`].
    Death,
    /// Sticky degradation: every later application's modelled seconds are
    /// multiplied by `factor` (a degraded link or down-clocked kernel).
    /// The application itself still succeeds.
    Slowdown {
        /// Multiplier on the device's modelled per-application seconds
        /// from this op onward (must be >= 1).
        factor: f64,
    },
    /// The kernel hangs on this application.  The modelled watchdog fires:
    /// the application fails with [`DeviceError::Hung`], the device
    /// survives, and the caller decides whether to trust it again.
    Hang,
}

impl FaultKind {
    /// Stable label for telemetry (`sem_serve_fault_injections_total`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Death => "death",
            FaultKind::Slowdown { .. } => "slowdown",
            FaultKind::Hang => "hang",
        }
    }
}

/// One fault scheduled at a device-lifetime operator-application count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// The zero-based operator application at which the fault fires.
    pub at_op: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults for one device, ordered by op count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
}

/// `splitmix64` — the workspace's standard seeded stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: a perfect device.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan from explicit faults (sorted by `at_op`; ties keep order).
    #[must_use]
    pub fn new(mut faults: Vec<ScheduledFault>) -> Self {
        faults.sort_by_key(|f| f.at_op);
        Self { faults }
    }

    /// A seeded pseudo-random plan: `count` faults drawn over the first
    /// `horizon_ops` applications, kinds drawn uniformly from
    /// transient / slowdown(2×) / hang (never death, so seeded chaos
    /// exercises retries rather than killing the pool — schedule deaths
    /// explicitly where a test wants one).  Deterministic under the seed.
    #[must_use]
    pub fn seeded(seed: u64, count: usize, horizon_ops: u64) -> Self {
        let mut state = seed ^ 0x5eed_fa17_5eed_fa17;
        let horizon = horizon_ops.max(1);
        let faults = (0..count)
            .map(|_| {
                let at_op = splitmix64(&mut state) % horizon;
                let kind = match splitmix64(&mut state) % 3 {
                    0 => FaultKind::Transient,
                    1 => FaultKind::Slowdown { factor: 2.0 },
                    _ => FaultKind::Hang,
                };
                ScheduledFault { at_op, kind }
            })
            .collect();
        Self::new(faults)
    }

    /// The scheduled faults, ordered by op count.
    #[must_use]
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A typed device failure, carrying the op count at which it surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// The device is dead: this and every later application fails.
    Dead {
        /// Device-lifetime op count at which the failure surfaced.
        at_op: u64,
    },
    /// The kernel hung on this application and the modelled watchdog
    /// fired.  The device itself may still be usable.
    Hung {
        /// Device-lifetime op count at which the failure surfaced.
        at_op: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Dead { at_op } => write!(f, "device dead at op {at_op}"),
            DeviceError::Hung { at_op } => write!(f, "kernel hung at op {at_op}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// What the injector tells the backend to do with one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Apply normally.
    Ok,
    /// Apply, then corrupt the result (see [`corrupt_value`]).
    Corrupt,
    /// Fail the application with this error.
    Fail(DeviceError),
}

/// Runtime fault state of one device: a thread-safe cursor over a
/// [`FaultPlan`], advanced once per operator application.
///
/// Shared (behind an `Arc`) between the serving layer — which wants to read
/// health and injection counts — and the backend wrapper that consults it
/// on every application.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    op: AtomicU64,
    cursor: AtomicUsize,
    dead: AtomicBool,
    slowdown_bits: AtomicU64,
    injected: AtomicU64,
}

impl FaultState {
    /// Fresh state over a plan: healthy, op counter at zero, no slowdown.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            op: AtomicU64::new(0),
            cursor: AtomicUsize::new(0),
            dead: AtomicBool::new(false),
            slowdown_bits: AtomicU64::new(1.0_f64.to_bits()),
            injected: AtomicU64::new(0),
        }
    }

    /// A state that never faults.
    #[must_use]
    pub fn healthy() -> Self {
        Self::new(FaultPlan::none())
    }

    /// The plan this state consumes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advance the op counter by one application and report what the
    /// backend must do for it.  Dead devices fail immediately; otherwise
    /// every scheduled fault due at or before this op is consumed.
    pub fn next_op(&self) -> FaultAction {
        let op = self.op.fetch_add(1, Ordering::SeqCst);
        if self.dead.load(Ordering::SeqCst) {
            return FaultAction::Fail(DeviceError::Dead { at_op: op });
        }
        let mut corrupt = false;
        let mut hung = false;
        loop {
            let cursor = self.cursor.load(Ordering::SeqCst);
            let Some(fault) = self.plan.faults.get(cursor) else {
                break;
            };
            if fault.at_op > op {
                break;
            }
            if self
                .cursor
                .compare_exchange(cursor, cursor + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue; // another thread consumed it; re-inspect
            }
            self.injected.fetch_add(1, Ordering::SeqCst);
            match fault.kind {
                FaultKind::Transient => corrupt = true,
                FaultKind::Death => self.dead.store(true, Ordering::SeqCst),
                FaultKind::Slowdown { factor } => {
                    let factor = factor.max(1.0);
                    let current = f64::from_bits(self.slowdown_bits.load(Ordering::SeqCst));
                    self.slowdown_bits
                        .store((current * factor).to_bits(), Ordering::SeqCst);
                }
                FaultKind::Hang => hung = true,
            }
        }
        if self.dead.load(Ordering::SeqCst) {
            FaultAction::Fail(DeviceError::Dead { at_op: op })
        } else if hung {
            FaultAction::Fail(DeviceError::Hung { at_op: op })
        } else if corrupt {
            FaultAction::Corrupt
        } else {
            FaultAction::Ok
        }
    }

    /// Whether the device has died.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// The sticky slowdown factor accumulated so far (1.0 = full speed).
    #[must_use]
    pub fn slowdown_factor(&self) -> f64 {
        f64::from_bits(self.slowdown_bits.load(Ordering::SeqCst))
    }

    /// Operator applications the device has been asked for so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.op.load(Ordering::SeqCst)
    }

    /// Faults consumed from the plan so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Revive a dead device and forget accumulated slowdown — the modelled
    /// equivalent of a board power-cycle.  The op counter and consumed
    /// schedule are kept: a revived device does not replay old faults.
    pub fn revive(&self) {
        self.dead.store(false, Ordering::SeqCst);
        self.slowdown_bits
            .store(1.0_f64.to_bits(), Ordering::SeqCst);
    }
}

/// Corrupt one `f64` the way a single-event upset would: flip a high
/// exponent bit of the payload.  The result is finite but wildly wrong
/// (a value near 1.0 lands near 1e-154), so residual verification is
/// guaranteed to catch it while downstream arithmetic stays NaN-free.
#[must_use]
pub fn corrupt_value(x: f64) -> f64 {
    f64::from_bits(x.to_bits() ^ (1_u64 << 61))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_always_ok() {
        let state = FaultState::healthy();
        for _ in 0..100 {
            assert_eq!(state.next_op(), FaultAction::Ok);
        }
        assert!(!state.is_dead());
        assert_eq!(state.slowdown_factor(), 1.0);
        assert_eq!(state.ops(), 100);
        assert_eq!(state.injected(), 0);
    }

    #[test]
    fn transient_corrupts_exactly_one_op() {
        let state = FaultState::new(FaultPlan::new(vec![ScheduledFault {
            at_op: 2,
            kind: FaultKind::Transient,
        }]));
        assert_eq!(state.next_op(), FaultAction::Ok);
        assert_eq!(state.next_op(), FaultAction::Ok);
        assert_eq!(state.next_op(), FaultAction::Corrupt);
        assert_eq!(state.next_op(), FaultAction::Ok);
    }

    #[test]
    fn death_is_sticky() {
        let state = FaultState::new(FaultPlan::new(vec![ScheduledFault {
            at_op: 1,
            kind: FaultKind::Death,
        }]));
        assert_eq!(state.next_op(), FaultAction::Ok);
        assert_eq!(
            state.next_op(),
            FaultAction::Fail(DeviceError::Dead { at_op: 1 })
        );
        assert_eq!(
            state.next_op(),
            FaultAction::Fail(DeviceError::Dead { at_op: 2 })
        );
        assert!(state.is_dead());
        state.revive();
        assert_eq!(state.next_op(), FaultAction::Ok);
    }

    #[test]
    fn hang_fails_once_without_killing_the_device() {
        let state = FaultState::new(FaultPlan::new(vec![ScheduledFault {
            at_op: 0,
            kind: FaultKind::Hang,
        }]));
        assert_eq!(
            state.next_op(),
            FaultAction::Fail(DeviceError::Hung { at_op: 0 })
        );
        assert!(!state.is_dead());
        assert_eq!(state.next_op(), FaultAction::Ok);
    }

    #[test]
    fn slowdown_accumulates_and_the_op_succeeds() {
        let state = FaultState::new(FaultPlan::new(vec![
            ScheduledFault {
                at_op: 0,
                kind: FaultKind::Slowdown { factor: 2.0 },
            },
            ScheduledFault {
                at_op: 3,
                kind: FaultKind::Slowdown { factor: 1.5 },
            },
        ]));
        assert_eq!(state.next_op(), FaultAction::Ok);
        assert_eq!(state.slowdown_factor(), 2.0);
        assert_eq!(state.next_op(), FaultAction::Ok);
        assert_eq!(state.next_op(), FaultAction::Ok);
        assert_eq!(state.next_op(), FaultAction::Ok);
        assert_eq!(state.slowdown_factor(), 3.0);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_ordered() {
        let a = FaultPlan::seeded(7, 8, 100);
        let b = FaultPlan::seeded(7, 8, 100);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 8);
        assert!(a.faults().windows(2).all(|w| w[0].at_op <= w[1].at_op));
        assert!(a
            .faults()
            .iter()
            .all(|f| !matches!(f.kind, FaultKind::Death)));
        let c = FaultPlan::seeded(8, 8, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn corruption_is_finite_drastic_and_involutive() {
        let x = 1.234_f64;
        let y = corrupt_value(x);
        assert!(y.is_finite());
        assert!((x - y).abs() > 1.0);
        assert_eq!(corrupt_value(y), x);
    }

    #[test]
    fn due_faults_skipped_by_a_jump_are_still_consumed() {
        // A plan scheduled at op 1 must fire even if the consumer only
        // checks at op 5 (e.g. a device that sat idle while the counter
        // advanced elsewhere is modelled conservatively).
        let state = FaultState::new(FaultPlan::new(vec![ScheduledFault {
            at_op: 1,
            kind: FaultKind::Transient,
        }]));
        assert_eq!(state.next_op(), FaultAction::Ok);
        assert_eq!(state.next_op(), FaultAction::Corrupt);
        assert_eq!(state.injected(), 1);
    }
}
