//! Cycle-approximate simulator of the HLS SEM accelerator.
//!
//! The paper's artefact is an OpenCL-HLS bitstream for a Stratix 10 FPGA; no
//! synthesis toolchain or board is available to this reproduction, so this
//! crate stands in for both (the substitution is documented in `DESIGN.md`).
//! It models the accelerator at the level the paper itself reasons about:
//!
//! * [`design`] — the accelerator configuration per polynomial degree (unroll
//!   factor, initiation interval, memory allocation policy, optimisation
//!   stage from the Section III ladder);
//! * [`bram`] — on-chip buffer (BRAM) accounting for the per-element working
//!   set;
//! * [`synthesis`] — a synthesis estimator producing resource utilisation and
//!   a kernel clock for a (device, design) pair, pinned to the paper's
//!   measured values for the as-built GX2800 designs;
//! * [`memory`] — the external-memory model: four DDR4 banks, 512 bit per
//!   cycle each at 300 MHz, with banked vs. interleaved allocation and a
//!   problem-size-dependent effective bandwidth (the STREAM-for-FPGA
//!   behaviour the paper cites);
//! * [`power`] — a utilisation/clock-based board power model calibrated to
//!   Table I;
//! * [`precond`] — the cycle/BRAM model of the on-device preconditioner
//!   kernels (Jacobi pointwise scale, FDM three-contraction pass), so a
//!   preconditioned CG never round-trips the residual over PCIe;
//! * [`executor`] — the functional+timing simulator: it produces bit-exact
//!   kernel results (by running the same arithmetic as the CPU reference)
//!   together with a cycle count, from which GFLOP/s, DOFs/cycle, bandwidth
//!   and power-efficiency are derived;
//! * [`faults`] — deterministic fault injection ([`FaultPlan`] /
//!   [`FaultState`]): transient result corruption, scheduled device death,
//!   sticky slowdown and hangs, all keyed to operator-application counts so
//!   faulty runs replay bit-for-bit.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bram;
pub mod design;
pub mod executor;
pub mod faults;
pub mod memory;
pub mod multi;
pub mod power;
pub mod precond;
pub mod stream;
pub mod synthesis;

pub use design::{AcceleratorDesign, MemoryAllocation, OptimizationStage};
pub use executor::{ExecutionReport, FpgaAccelerator, KernelStageTiming};
pub use faults::{
    corrupt_value, DeviceError, FaultAction, FaultKind, FaultPlan, FaultState, ScheduledFault,
};
pub use memory::MemorySystem;
pub use multi::{MultiBoardAccelerator, MultiBoardEstimate};
pub use perf_model::FpgaDevice;
pub use precond::{estimate_jacobi_seconds, FdmPrecondEstimate, FdmPrecondModel};
pub use stream::{stream_sweep, StreamKernel, StreamPoint};
pub use synthesis::{synthesize, SynthesisReport};
