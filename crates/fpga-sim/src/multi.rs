//! Multi-board scaling estimates.
//!
//! The paper evaluates a single Bittware 520N, but its host application
//! (Nek5000/Nekbone) is an MPI code that partitions elements across ranks;
//! the natural deployment of the accelerator is therefore one board per rank.
//! This module estimates how the simulated accelerator scales when the
//! element set is block-partitioned across several boards, including the
//! gather–scatter exchange traffic that the interface nodes generate over the
//! host network.

use crate::executor::FpgaAccelerator;
use perf_model::FpgaDevice;
use sem_basis::DerivativeMatrix;
use sem_kernel::optimized::ax_optimized_slices;
use sem_mesh::{ElementField, GeometricFactors};
use serde::{Deserialize, Serialize};

/// Scaling estimate for a multi-board run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiBoardEstimate {
    /// Polynomial degree.
    pub degree: usize,
    /// Total number of elements.
    pub num_elements: usize,
    /// Number of boards the elements are spread over.
    pub boards: usize,
    /// Elements on the most loaded board.
    pub elements_per_board: usize,
    /// Simulated kernel time of the most loaded board (seconds).
    pub kernel_seconds: f64,
    /// Estimated interface-exchange time per operator application (seconds).
    pub exchange_seconds: f64,
    /// Aggregate throughput in GFLOP/s including the exchange overhead.
    pub gflops: f64,
    /// Parallel efficiency against a single board.
    pub parallel_efficiency: f64,
}

/// Estimate the scaling of the accelerator for `degree` over `boards` boards,
/// assuming a block partition of `num_elements` elements and an
/// `interconnect_gbs` GB/s host interconnect for the interface exchange.
///
/// # Panics
/// Panics if `boards` is zero.
#[must_use]
pub fn estimate_scaling(
    device: &FpgaDevice,
    degree: usize,
    num_elements: usize,
    boards: usize,
    interconnect_gbs: f64,
) -> MultiBoardEstimate {
    assert!(boards > 0, "need at least one board");
    let accelerator = FpgaAccelerator::for_degree(degree, device);
    let elements_per_board = num_elements.div_ceil(boards);
    let local = accelerator.estimate(elements_per_board);

    // Interface traffic: a block partition of a roughly cubic box exposes
    // about 2·(E_local)^(2/3) faces per board; each face carries (N+1)^2
    // doubles that must be exchanged and summed.
    let nx = (degree + 1) as f64;
    let faces = 2.0 * (elements_per_board as f64).powf(2.0 / 3.0);
    let exchange_bytes = if boards == 1 {
        0.0
    } else {
        faces * nx * nx * 8.0 * 2.0 // send + receive
    };
    let exchange_seconds = exchange_bytes / (interconnect_gbs * 1e9);

    let flops = sem_kernel::flops_per_dof(degree) as f64
        * sem_basis::dofs_per_element(degree) as f64
        * num_elements as f64;
    let wall = local.seconds + exchange_seconds;
    let gflops = flops / wall / 1e9;

    let single = accelerator.estimate(num_elements);
    let ideal_speedup = boards as f64;
    let actual_speedup = single.seconds / wall;
    MultiBoardEstimate {
        degree,
        num_elements,
        boards,
        elements_per_board,
        kernel_seconds: local.seconds,
        exchange_seconds,
        gflops,
        parallel_efficiency: (actual_speedup / ideal_speedup).min(1.0),
    }
}

/// A set of identical simulated accelerator boards with the element set
/// block-partitioned across them, one partition per board — the
/// one-board-per-MPI-rank deployment the paper's host application implies.
///
/// Unlike [`estimate_scaling`], which only produces timing numbers, this
/// type also *executes* the kernel functionally: each board evaluates its
/// own contiguous block of elements (numerically on the host, standing in
/// for the per-board datapath), so a solver can iterate through a
/// multi-board backend and obtain bit-identical results to the single-board
/// simulator.
#[derive(Debug, Clone)]
pub struct MultiBoardAccelerator {
    accelerator: FpgaAccelerator,
    derivative: DerivativeMatrix,
    boards: usize,
    interconnect_gbs: f64,
}

impl MultiBoardAccelerator {
    /// Synthesise the per-degree production design onto `boards` copies of
    /// `device`, exchanging interface data over an `interconnect_gbs` GB/s
    /// host interconnect.
    ///
    /// # Panics
    /// Panics if `boards` is zero or the design does not fit on the device.
    #[must_use]
    pub fn new(degree: usize, device: &FpgaDevice, boards: usize, interconnect_gbs: f64) -> Self {
        assert!(boards > 0, "need at least one board");
        Self {
            accelerator: FpgaAccelerator::for_degree(degree, device),
            derivative: DerivativeMatrix::new(degree),
            boards,
            interconnect_gbs,
        }
    }

    /// Number of boards.
    #[must_use]
    pub fn boards(&self) -> usize {
        self.boards
    }

    /// The per-board accelerator (identical design on every board).
    #[must_use]
    pub fn accelerator(&self) -> &FpgaAccelerator {
        &self.accelerator
    }

    /// The device every board carries.
    #[must_use]
    pub fn device(&self) -> &FpgaDevice {
        self.accelerator.device()
    }

    /// Elements on the most loaded board for a block partition of
    /// `num_elements`.
    #[must_use]
    pub fn elements_per_board(&self, num_elements: usize) -> usize {
        num_elements.div_ceil(self.boards)
    }

    /// Timing estimate for one operator application over `num_elements`
    /// block-partitioned elements (kernel time of the most loaded board plus
    /// the interface exchange).
    #[must_use]
    pub fn estimate(&self, num_elements: usize) -> MultiBoardEstimate {
        estimate_scaling(
            self.device(),
            self.accelerator.design().degree,
            num_elements,
            self.boards,
            self.interconnect_gbs,
        )
    }

    /// Execute `w = A u`: every board evaluates its contiguous element block
    /// with the same split-layout dataflow as the single-board simulator, so
    /// results are bitwise identical to [`FpgaAccelerator::execute`].
    ///
    /// # Panics
    /// Panics if the fields and geometric factors do not match the design's
    /// degree and each other.
    pub fn execute_into(
        &self,
        u: &ElementField,
        geometry: &GeometricFactors,
        w: &mut ElementField,
    ) -> MultiBoardEstimate {
        let degree = self.accelerator.design().degree;
        assert_eq!(geometry.degree(), degree, "geometry degree mismatch");
        assert_eq!(
            u.num_elements(),
            geometry.num_elements(),
            "element count mismatch"
        );
        self.execute_planes_into(u, &geometry.split(), w)
    }

    /// Like [`MultiBoardAccelerator::execute_into`], but on pre-split
    /// geometric-factor planes, so repeated applications (e.g. inside a CG
    /// iteration) split the geometry once.
    ///
    /// # Panics
    /// Panics if the fields and planes do not match the design's degree and
    /// each other.
    pub fn execute_planes_into(
        &self,
        u: &ElementField,
        planes: &[Vec<f64>; 6],
        w: &mut ElementField,
    ) -> MultiBoardEstimate {
        let degree = self.accelerator.design().degree;
        assert_eq!(u.degree(), degree, "field degree mismatch");
        assert_eq!(u.len(), w.len(), "output field size mismatch");
        for plane in planes {
            assert_eq!(plane.len(), u.len(), "geometric plane length mismatch");
        }

        let num_elements = u.num_elements();
        let npts = u.dofs_per_element();
        let per_board = self.elements_per_board(num_elements);

        // Each board runs the shared split-layout element loop on its own
        // contiguous block, so results are bitwise identical to a single
        // board evaluating everything.
        let u_data = u.as_slice();
        let w_data = w.as_mut_slice();
        for board in 0..self.boards {
            let first = board * per_board;
            let last = ((board + 1) * per_board).min(num_elements);
            if first >= last {
                break;
            }
            let range = first * npts..last * npts;
            ax_optimized_slices(
                &u_data[range.clone()],
                &mut w_data[range.clone()],
                [
                    &planes[0][range.clone()],
                    &planes[1][range.clone()],
                    &planes[2][range.clone()],
                    &planes[3][range.clone()],
                    &planes[4][range.clone()],
                    &planes[5][range.clone()],
                ],
                &self.derivative,
            );
        }
        self.estimate(num_elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_board_matches_the_plain_estimate() {
        let device = FpgaDevice::stratix10_gx2800();
        let est = estimate_scaling(&device, 7, 4096, 1, 12.0);
        assert_eq!(est.elements_per_board, 4096);
        assert_eq!(est.exchange_seconds, 0.0);
        assert!((est.parallel_efficiency - 1.0).abs() < 1e-9);
        let single = FpgaAccelerator::for_degree(7, &device).estimate(4096);
        assert!((est.gflops - single.gflops).abs() < 1e-6);
    }

    #[test]
    fn more_boards_increase_aggregate_throughput() {
        let device = FpgaDevice::stratix10_gx2800();
        let one = estimate_scaling(&device, 7, 8192, 1, 12.0);
        let four = estimate_scaling(&device, 7, 8192, 4, 12.0);
        let eight = estimate_scaling(&device, 7, 8192, 8, 12.0);
        assert!(four.gflops > 2.0 * one.gflops);
        assert!(eight.gflops > four.gflops);
        assert!(eight.parallel_efficiency <= 1.0);
    }

    #[test]
    fn efficiency_degrades_when_boards_outnumber_the_work() {
        let device = FpgaDevice::stratix10_gx2800();
        let few = estimate_scaling(&device, 7, 512, 2, 12.0);
        let many = estimate_scaling(&device, 7, 512, 32, 12.0);
        assert!(many.parallel_efficiency < few.parallel_efficiency);
    }

    #[test]
    #[should_panic(expected = "at least one board")]
    fn zero_boards_is_rejected() {
        let device = FpgaDevice::stratix10_gx2800();
        let _ = estimate_scaling(&device, 7, 64, 0, 12.0);
    }

    #[test]
    #[should_panic(expected = "at least one board")]
    fn accelerator_rejects_zero_boards() {
        let device = FpgaDevice::stratix10_gx2800();
        let _ = MultiBoardAccelerator::new(7, &device, 0, 12.0);
    }

    #[test]
    fn multi_board_execution_is_bitwise_identical_to_single_board() {
        use sem_mesh::BoxMesh;
        let degree = 5;
        let device = FpgaDevice::stratix10_gx2800();
        let mesh = BoxMesh::unit_cube(degree, 2); // 8 elements
        let geometry = GeometricFactors::from_mesh(&mesh);
        let u = mesh.evaluate(|x, y, z| (3.0 * x).sin() * (y + 0.2) + z * z);

        let single = FpgaAccelerator::for_degree(degree, &device);
        let (w_single, _) = single.execute(&u, &geometry);

        for boards in [1, 2, 3, 4] {
            let multi = MultiBoardAccelerator::new(degree, &device, boards, 12.0);
            let mut w_multi = ElementField::zeros(degree, mesh.num_elements());
            let est = multi.execute_into(&u, &geometry, &mut w_multi);
            assert_eq!(
                w_single.as_slice(),
                w_multi.as_slice(),
                "{boards} boards: partitioned execution must not change results"
            );
            assert_eq!(est.boards, boards);
            assert!(est.kernel_seconds > 0.0);
        }
    }

    #[test]
    fn multi_board_estimates_match_the_free_function() {
        let device = FpgaDevice::stratix10_gx2800();
        let multi = MultiBoardAccelerator::new(7, &device, 4, 12.0);
        let a = multi.estimate(4096);
        let b = estimate_scaling(&device, 7, 4096, 4, 12.0);
        assert_eq!(a, b);
        assert_eq!(multi.elements_per_board(4096), 1024);
        assert_eq!(multi.boards(), 4);
    }
}
