//! Multi-board scaling estimates.
//!
//! The paper evaluates a single Bittware 520N, but its host application
//! (Nek5000/Nekbone) is an MPI code that partitions elements across ranks;
//! the natural deployment of the accelerator is therefore one board per rank.
//! This module estimates how the simulated accelerator scales when the
//! element set is block-partitioned across several boards, including the
//! gather–scatter exchange traffic that the interface nodes generate over the
//! host network.

use crate::executor::FpgaAccelerator;
use perf_model::FpgaDevice;
use serde::{Deserialize, Serialize};

/// Scaling estimate for a multi-board run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiBoardEstimate {
    /// Polynomial degree.
    pub degree: usize,
    /// Total number of elements.
    pub num_elements: usize,
    /// Number of boards the elements are spread over.
    pub boards: usize,
    /// Elements on the most loaded board.
    pub elements_per_board: usize,
    /// Simulated kernel time of the most loaded board (seconds).
    pub kernel_seconds: f64,
    /// Estimated interface-exchange time per operator application (seconds).
    pub exchange_seconds: f64,
    /// Aggregate throughput in GFLOP/s including the exchange overhead.
    pub gflops: f64,
    /// Parallel efficiency against a single board.
    pub parallel_efficiency: f64,
}

/// Estimate the scaling of the accelerator for `degree` over `boards` boards,
/// assuming a block partition of `num_elements` elements and an
/// `interconnect_gbs` GB/s host interconnect for the interface exchange.
///
/// # Panics
/// Panics if `boards` is zero.
#[must_use]
pub fn estimate_scaling(
    device: &FpgaDevice,
    degree: usize,
    num_elements: usize,
    boards: usize,
    interconnect_gbs: f64,
) -> MultiBoardEstimate {
    assert!(boards > 0, "need at least one board");
    let accelerator = FpgaAccelerator::for_degree(degree, device);
    let elements_per_board = num_elements.div_ceil(boards);
    let local = accelerator.estimate(elements_per_board);

    // Interface traffic: a block partition of a roughly cubic box exposes
    // about 2·(E_local)^(2/3) faces per board; each face carries (N+1)^2
    // doubles that must be exchanged and summed.
    let nx = (degree + 1) as f64;
    let faces = 2.0 * (elements_per_board as f64).powf(2.0 / 3.0);
    let exchange_bytes = if boards == 1 {
        0.0
    } else {
        faces * nx * nx * 8.0 * 2.0 // send + receive
    };
    let exchange_seconds = exchange_bytes / (interconnect_gbs * 1e9);

    let flops =
        sem_kernel::flops_per_dof(degree) as f64 * sem_basis::dofs_per_element(degree) as f64
            * num_elements as f64;
    let wall = local.seconds + exchange_seconds;
    let gflops = flops / wall / 1e9;

    let single = accelerator.estimate(num_elements);
    let ideal_speedup = boards as f64;
    let actual_speedup = single.seconds / wall;
    MultiBoardEstimate {
        degree,
        num_elements,
        boards,
        elements_per_board,
        kernel_seconds: local.seconds,
        exchange_seconds,
        gflops,
        parallel_efficiency: (actual_speedup / ideal_speedup).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_board_matches_the_plain_estimate() {
        let device = FpgaDevice::stratix10_gx2800();
        let est = estimate_scaling(&device, 7, 4096, 1, 12.0);
        assert_eq!(est.elements_per_board, 4096);
        assert_eq!(est.exchange_seconds, 0.0);
        assert!((est.parallel_efficiency - 1.0).abs() < 1e-9);
        let single = FpgaAccelerator::for_degree(7, &device).estimate(4096);
        assert!((est.gflops - single.gflops).abs() < 1e-6);
    }

    #[test]
    fn more_boards_increase_aggregate_throughput() {
        let device = FpgaDevice::stratix10_gx2800();
        let one = estimate_scaling(&device, 7, 8192, 1, 12.0);
        let four = estimate_scaling(&device, 7, 8192, 4, 12.0);
        let eight = estimate_scaling(&device, 7, 8192, 8, 12.0);
        assert!(four.gflops > 2.0 * one.gflops);
        assert!(eight.gflops > four.gflops);
        assert!(eight.parallel_efficiency <= 1.0);
    }

    #[test]
    fn efficiency_degrades_when_boards_outnumber_the_work() {
        let device = FpgaDevice::stratix10_gx2800();
        let few = estimate_scaling(&device, 7, 512, 2, 12.0);
        let many = estimate_scaling(&device, 7, 512, 32, 12.0);
        assert!(many.parallel_efficiency < few.parallel_efficiency);
    }

    #[test]
    #[should_panic(expected = "at least one board")]
    fn zero_boards_is_rejected() {
        let device = FpgaDevice::stratix10_gx2800();
        let _ = estimate_scaling(&device, 7, 64, 0, 12.0);
    }
}
