//! External-memory model.
//!
//! The evaluated board has four DDR4 banks whose controllers run at 300 MHz
//! and deliver 512 bit per cycle each (Section V-B), for a peak of
//! 76.8 GB/s.  Two effects reduce what the kernel actually sees:
//!
//! * **Allocation policy** — with the default interleaved allocation several
//!   Avalon masters contend for the same bank and arbitration costs
//!   bandwidth; pinning each buffer to its own bank (Section III-D) removes
//!   that loss.
//! * **Problem size** — like the STREAM-for-FPGA measurements the paper
//!   cites, the effective bandwidth ramps up with the size of the transferred
//!   data; small inputs are dominated by latency and never reach peak.

use crate::design::MemoryAllocation;
use perf_model::FpgaDevice;
use serde::{Deserialize, Serialize};

/// Fraction of peak bandwidth an interleaved allocation reaches on large
/// transfers (bus arbitration between Avalon masters).
pub const INTERLEAVED_EFFICIENCY: f64 = 0.55;

/// Fraction of peak bandwidth a banked allocation reaches on large transfers.
pub const BANKED_EFFICIENCY: f64 = 0.97;

/// Transfer size (bytes) at which the effective bandwidth reaches half of its
/// asymptotic value — the latency/ramp-up knee of the STREAM-like curve.
pub const HALF_BANDWIDTH_BYTES: f64 = 512.0 * 1024.0;

/// The external-memory system of a board, configured for one allocation
/// policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    /// Peak bandwidth in bytes per second.
    pub peak_bytes_per_sec: f64,
    /// Number of banks.
    pub banks: usize,
    /// Memory-controller clock in MHz.
    pub clock_mhz: f64,
    /// Allocation policy.
    pub allocation: MemoryAllocation,
}

impl MemorySystem {
    /// Build the memory system of a device under a given allocation policy.
    #[must_use]
    pub fn of_device(device: &FpgaDevice, allocation: MemoryAllocation) -> Self {
        Self {
            peak_bytes_per_sec: device.bandwidth_bytes_per_sec(),
            banks: device.memory_banks,
            clock_mhz: device.memory_clock_mhz,
            allocation,
        }
    }

    /// Asymptotic (large-transfer) efficiency of this configuration.
    #[must_use]
    pub fn asymptotic_efficiency(&self) -> f64 {
        match self.allocation {
            MemoryAllocation::Interleaved => INTERLEAVED_EFFICIENCY,
            MemoryAllocation::Banked => BANKED_EFFICIENCY,
        }
    }

    /// Effective bandwidth (bytes/s) for a transfer of `bytes` bytes.
    #[must_use]
    pub fn effective_bandwidth(&self, bytes: f64) -> f64 {
        let ramp = bytes / (bytes + HALF_BANDWIDTH_BYTES);
        self.peak_bytes_per_sec * self.asymptotic_efficiency() * ramp
    }

    /// Effective bytes per kernel cycle for a transfer of `bytes` bytes at a
    /// kernel clock of `kernel_mhz`.
    #[must_use]
    pub fn effective_bytes_per_cycle(&self, bytes: f64, kernel_mhz: f64) -> f64 {
        if kernel_mhz <= 0.0 {
            return 0.0;
        }
        self.effective_bandwidth(bytes) / (kernel_mhz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gx_banked() -> MemorySystem {
        MemorySystem::of_device(&FpgaDevice::stratix10_gx2800(), MemoryAllocation::Banked)
    }

    #[test]
    fn banked_beats_interleaved_at_every_size() {
        let banked = gx_banked();
        let interleaved = MemorySystem::of_device(
            &FpgaDevice::stratix10_gx2800(),
            MemoryAllocation::Interleaved,
        );
        for bytes in [1e4, 1e6, 1e8, 1e10] {
            assert!(banked.effective_bandwidth(bytes) > interleaved.effective_bandwidth(bytes));
        }
    }

    #[test]
    fn bandwidth_ramps_with_problem_size() {
        let mem = gx_banked();
        let small = mem.effective_bandwidth(64.0 * 512.0 * 10.0); // 10 elements at N = 7
        let large = mem.effective_bandwidth(64.0 * 512.0 * 4096.0); // 4096 elements
        assert!(small < large);
        assert!(
            large > 0.9 * 76.8e9,
            "large transfers approach peak: {large}"
        );
        assert!(
            small < 0.5 * 76.8e9,
            "small transfers are latency bound: {small}"
        );
    }

    #[test]
    fn large_banked_transfers_sustain_about_four_dofs_per_cycle() {
        // 64 B per DOF at 300 MHz and ~75 GB/s effective is ≈3.9 DOFs/cycle —
        // consistent with the paper's T_max = 4 and with the measured 3.83 to
        // 3.96 DOFs/cycle for the best degrees.
        let mem = gx_banked();
        let bytes = 64.0 * 512.0 * 4096.0;
        let per_cycle = mem.effective_bytes_per_cycle(bytes, 300.0) / 64.0;
        assert!(per_cycle > 3.7 && per_cycle < 4.05, "per cycle {per_cycle}");
    }

    #[test]
    fn zero_clock_is_handled() {
        let mem = gx_banked();
        assert_eq!(mem.effective_bytes_per_cycle(1e6, 0.0), 0.0);
    }
}
