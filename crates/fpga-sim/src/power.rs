//! Board power model.
//!
//! The paper measures 77–100 W board power via the Bittware MMD API
//! (Table I).  Power tracks resource utilisation and clock: a static floor
//! for the board and memory plus dynamic terms proportional to the logic
//! toggling at the kernel clock and to the BRAM/DSP activity.  The constants
//! below are calibrated against Table I (within ~10% on every row).

use perf_model::ResourceVector;
use serde::{Deserialize, Serialize};

/// Calibrated power model for Stratix 10-class boards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static board + memory power (W).
    pub static_watts: f64,
    /// Dynamic logic power at 100% ALM utilisation and the reference clock (W).
    pub logic_watts: f64,
    /// Dynamic BRAM power at 100% utilisation (W).
    pub bram_watts: f64,
    /// Dynamic DSP power at 100% utilisation (W).
    pub dsp_watts: f64,
    /// Reference clock for the dynamic terms (MHz).
    pub reference_clock_mhz: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::stratix10_board()
    }
}

impl PowerModel {
    /// Constants calibrated against the paper's Table I power column.
    #[must_use]
    pub fn stratix10_board() -> Self {
        Self {
            static_watts: 55.0,
            logic_watts: 60.0,
            bram_watts: 15.0,
            dsp_watts: 10.0,
            reference_clock_mhz: 300.0,
        }
    }

    /// Predict the board power (W) for a design with the given utilisation
    /// fractions running at `kernel_mhz`.
    #[must_use]
    pub fn board_power(&self, utilisation: &ResourceVector, kernel_mhz: f64) -> f64 {
        let clock_scale = kernel_mhz / self.reference_clock_mhz;
        self.static_watts
            + self.logic_watts * utilisation.alms * clock_scale
            + self.bram_watts * utilisation.brams
            + self.dsp_watts * utilisation.dsps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_model::measured_table1;

    #[test]
    fn calibration_matches_table1_within_ten_percent() {
        let model = PowerModel::stratix10_board();
        for row in measured_table1() {
            let util = ResourceVector::new(row.logic_fraction, row.dsp_fraction, row.bram_fraction);
            let predicted = model.board_power(&util, row.fmax_mhz);
            let rel = (predicted - row.power_watts).abs() / row.power_watts;
            assert!(
                rel < 0.12,
                "degree {}: predicted {predicted:.1} W vs measured {} W",
                row.degree,
                row.power_watts
            );
        }
    }

    #[test]
    fn power_increases_with_clock_and_utilisation() {
        let model = PowerModel::stratix10_board();
        let low = model.board_power(&ResourceVector::new(0.3, 0.1, 0.1), 200.0);
        let high_util = model.board_power(&ResourceVector::new(0.7, 0.1, 0.1), 200.0);
        let high_clock = model.board_power(&ResourceVector::new(0.3, 0.1, 0.1), 350.0);
        assert!(high_util > low);
        assert!(high_clock > low);
        assert!(low > model.static_watts);
    }
}
