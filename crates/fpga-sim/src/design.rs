//! Accelerator design points.
//!
//! A design fixes everything the HLS flow would fix at compile time: the
//! polynomial degree the datapath is specialised for, the unroll factor
//! (vector width) `T`, the initiation interval of the pipelined loops, how
//! the geometric factors are laid out, how buffers are allocated across the
//! external memory banks, and which rung of the Section III optimisation
//! ladder the design corresponds to.

use perf_model::throughput::{constrain_throughput, ArbitrationPolicy};
use perf_model::{projection::calibrated_base, FpgaDevice};
use serde::{Deserialize, Serialize};

/// External-memory allocation policy (Section III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MemoryAllocation {
    /// Every buffer interleaved across all banks (the OpenCL runtime
    /// default); convenient but loses bandwidth to bus arbitration.
    Interleaved,
    /// Each buffer pinned to one bank (the optimisation that takes the N=7
    /// design from 60 to 109 GFLOP/s).
    #[default]
    Banked,
}

/// The optimisation ladder of Section III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OptimizationStage {
    /// Listing-1 translated directly to HLS: no on-chip caching, no unrolling,
    /// serial floating-point chains (0.025 GFLOP/s at N = 7).
    Baseline,
    /// BRAM-cached operands, split `gxyz`, unrolled inner loops — but the
    /// compiler still schedules the critical loops at II = 2 (≈10 GFLOP/s).
    LocalMemory,
    /// `#pragma ii 1` forces single-cycle initiation (≈60 GFLOP/s).
    InitiationIntervalOne,
    /// Banked external memory on top of all of the above (≈109 GFLOP/s at
    /// N = 7 — the design of Table I).
    #[default]
    Banked,
}

impl OptimizationStage {
    /// All stages in ladder order.
    #[must_use]
    pub fn ladder() -> [Self; 4] {
        [
            Self::Baseline,
            Self::LocalMemory,
            Self::InitiationIntervalOne,
            Self::Banked,
        ]
    }

    /// Initiation interval of the critical loop at this stage.
    #[must_use]
    pub fn initiation_interval(self) -> usize {
        match self {
            Self::Baseline => 1, // the baseline is not pipelined at all; its cost is modelled separately
            Self::LocalMemory => 2,
            Self::InitiationIntervalOne | Self::Banked => 1,
        }
    }

    /// Memory allocation implied by the stage.
    #[must_use]
    pub fn memory_allocation(self) -> MemoryAllocation {
        match self {
            Self::Banked => MemoryAllocation::Banked,
            _ => MemoryAllocation::Interleaved,
        }
    }
}

/// A fully specified accelerator design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorDesign {
    /// Polynomial degree `N` the datapath is specialised for.
    pub degree: usize,
    /// Unroll factor / vector width `T` (DOFs entering the pipeline per cycle).
    pub unroll: usize,
    /// Initiation interval of the critical loop.
    pub initiation_interval: usize,
    /// Whether the host pads elements up to the next supported size.
    pub host_padding: bool,
    /// External-memory allocation policy.
    pub memory_allocation: MemoryAllocation,
    /// The optimisation-ladder stage this design corresponds to.
    pub stage: OptimizationStage,
}

impl AcceleratorDesign {
    /// The production design for `degree` on `device`.
    ///
    /// For degrees the degree-specialized CPU kernel family covers, the
    /// unroll factor and initiation interval come from the generated
    /// kernel's own structure ([`sem_kernel::kernel_structure`]): the
    /// kernel's arbitration-free vector width, narrowed by halving — each
    /// halving keeps it a power-of-two divisor of `N + 1` — until it fits
    /// the fabric next to the calibrated base design and the bandwidth
    /// bound at the memory clock.  Measured CPU structure and modeled FPGA
    /// structure therefore share one source of truth.  Degrees outside the
    /// generated range fall back to the closed-form arbitration policy.
    #[must_use]
    pub fn for_degree(degree: usize, device: &FpgaDevice) -> Self {
        let base = calibrated_base(degree);
        let available = device.resources.saturating_minus(&base);
        let resource_limit = device.fpu.max_throughput(degree, &available);
        let bandwidth_limit = perf_model::throughput::bandwidth_throughput(
            device.memory_bandwidth_gbs,
            degree,
            device.memory_clock_mhz,
        );
        let unconstrained = resource_limit.min(bandwidth_limit);
        let (unroll, initiation_interval) = match sem_kernel::kernel_structure(degree) {
            Some(kernel) => {
                let mut unroll = kernel.unroll;
                while unroll > 1 && unroll as f64 > unconstrained {
                    unroll /= 2;
                }
                (unroll, kernel.initiation_interval)
            }
            None => (
                constrain_throughput(unconstrained, degree, ArbitrationPolicy::PowerOfTwoDivisor)
                    .max(1.0) as usize,
                1,
            ),
        };
        Self {
            degree,
            unroll,
            initiation_interval,
            host_padding: false,
            memory_allocation: MemoryAllocation::Banked,
            stage: OptimizationStage::Banked,
        }
    }

    /// The same design at an earlier rung of the optimisation ladder (used by
    /// the ablation benchmark reproducing Section III).
    #[must_use]
    pub fn at_stage(degree: usize, device: &FpgaDevice, stage: OptimizationStage) -> Self {
        let mut design = Self::for_degree(degree, device);
        design.stage = stage;
        design.initiation_interval = stage.initiation_interval();
        design.memory_allocation = stage.memory_allocation();
        if stage == OptimizationStage::Baseline {
            design.unroll = 1;
        }
        design
    }

    /// GLL points per direction the datapath processes (after optional
    /// host padding).
    #[must_use]
    pub fn points_per_direction(&self) -> usize {
        let n1 = self.degree + 1;
        if self.host_padding {
            n1.div_ceil(self.unroll) * self.unroll
        } else {
            n1
        }
    }

    /// Degrees of freedom per (possibly padded) element.
    #[must_use]
    pub fn dofs_per_element(&self) -> usize {
        self.points_per_direction().pow(3)
    }

    /// Whether the unroll factor divides the element extent, i.e. whether the
    /// BRAM accesses are arbitration-free (Section III-B).
    #[must_use]
    pub fn arbitration_free(&self) -> bool {
        self.points_per_direction().is_multiple_of(self.unroll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_designs_match_the_papers_unroll_pattern() {
        let device = FpgaDevice::stratix10_gx2800();
        for degree in [1_usize, 3, 5, 7, 9, 11, 13, 15] {
            let d = AcceleratorDesign::for_degree(degree, &device);
            let expected = if (degree + 1) % 4 == 0 { 4 } else { 2 };
            assert_eq!(d.unroll, expected, "degree {degree}");
            assert!(d.arbitration_free());
            assert_eq!(d.initiation_interval, 1);
            assert_eq!(d.memory_allocation, MemoryAllocation::Banked);
        }
    }

    #[test]
    fn ladder_stages_have_the_documented_settings() {
        let device = FpgaDevice::stratix10_gx2800();
        let baseline = AcceleratorDesign::at_stage(7, &device, OptimizationStage::Baseline);
        assert_eq!(baseline.unroll, 1);
        assert_eq!(baseline.memory_allocation, MemoryAllocation::Interleaved);
        let local = AcceleratorDesign::at_stage(7, &device, OptimizationStage::LocalMemory);
        assert_eq!(local.initiation_interval, 2);
        let ii1 = AcceleratorDesign::at_stage(7, &device, OptimizationStage::InitiationIntervalOne);
        assert_eq!(ii1.initiation_interval, 1);
        assert_eq!(ii1.memory_allocation, MemoryAllocation::Interleaved);
        let banked = AcceleratorDesign::at_stage(7, &device, OptimizationStage::Banked);
        assert_eq!(banked.memory_allocation, MemoryAllocation::Banked);
        assert_eq!(OptimizationStage::ladder().len(), 4);
    }

    #[test]
    fn padding_rounds_the_element_up() {
        let device = FpgaDevice::stratix10_gx2800();
        let mut d = AcceleratorDesign::for_degree(9, &device);
        assert_eq!(d.points_per_direction(), 10);
        d.unroll = 4;
        assert!(!d.arbitration_free());
        d.host_padding = true;
        assert_eq!(d.points_per_direction(), 12);
        assert_eq!(d.dofs_per_element(), 1728);
        assert!(d.arbitration_free());
    }

    #[test]
    fn bigger_devices_allow_wider_unrolls() {
        let ideal = FpgaDevice::hypothetical_ideal();
        let d = AcceleratorDesign::for_degree(15, &ideal);
        assert!(d.unroll >= 16, "unroll {}", d.unroll);
    }

    #[test]
    fn covered_degrees_consume_the_generated_kernel_structure() {
        let ideal = FpgaDevice::hypothetical_ideal();
        let gx2800 = FpgaDevice::stratix10_gx2800();
        for degree in 3..=15 {
            let kernel = sem_kernel::kernel_structure(degree).unwrap();
            for device in [&ideal, &gx2800] {
                let d = AcceleratorDesign::for_degree(degree, device);
                // The design's unroll is the kernel's vector width, possibly
                // halved to fit the device — never some unrelated constant.
                assert!(
                    kernel.unroll.is_multiple_of(d.unroll) && d.unroll <= kernel.unroll,
                    "degree {degree}: design unroll {} vs kernel unroll {}",
                    d.unroll,
                    kernel.unroll
                );
                assert_eq!(d.initiation_interval, kernel.initiation_interval);
            }
        }
        // An unconstrained device inherits the kernel's full vector width.
        let d15 = AcceleratorDesign::for_degree(15, &ideal);
        assert_eq!(d15.unroll, sem_kernel::kernel_structure(15).unwrap().unroll);
    }
}
