//! A STREAM-style effective-bandwidth study for the FPGA memory system.
//!
//! The paper explains its small-problem performance and its model error
//! through the input-size-dependent effective bandwidth it observed with the
//! FPGA adaptation of the HPCChallenge STREAM benchmark (reference [42]).
//! This module reproduces that experiment against the simulated memory
//! system: a copy/scale/add/triad sweep over transfer sizes for both
//! allocation policies, yielding the effective-bandwidth curve the executor
//! and the model error analysis rely on.

use crate::design::MemoryAllocation;
use crate::memory::MemorySystem;
use perf_model::FpgaDevice;
use serde::{Deserialize, Serialize};

/// The four classical STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = s * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + s * c[i]`
    Triad,
}

impl StreamKernel {
    /// Bytes moved per vector element (read + write traffic).
    #[must_use]
    pub fn bytes_per_element(self) -> usize {
        match self {
            Self::Copy | Self::Scale => 16,
            Self::Add | Self::Triad => 24,
        }
    }

    /// All four kernels.
    #[must_use]
    pub fn all() -> [Self; 4] {
        [Self::Copy, Self::Scale, Self::Add, Self::Triad]
    }
}

/// One measurement of the simulated STREAM sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamPoint {
    /// Which kernel was run.
    pub kernel: StreamKernel,
    /// Vector length in double-precision elements.
    pub elements: usize,
    /// Total bytes moved.
    pub bytes: u64,
    /// Effective bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Fraction of the board's peak bandwidth.
    pub fraction_of_peak: f64,
}

/// Run the simulated STREAM sweep on `device` under `allocation` for the
/// given vector lengths (in doubles).
#[must_use]
pub fn stream_sweep(
    device: &FpgaDevice,
    allocation: MemoryAllocation,
    vector_lengths: &[usize],
) -> Vec<StreamPoint> {
    let memory = MemorySystem::of_device(device, allocation);
    let peak = device.bandwidth_bytes_per_sec();
    let mut points = Vec::new();
    for &kernel in &StreamKernel::all() {
        for &elements in vector_lengths {
            let bytes = (elements * kernel.bytes_per_element()) as u64;
            let effective = memory.effective_bandwidth(bytes as f64);
            points.push(StreamPoint {
                kernel,
                elements,
                bytes,
                bandwidth_gbs: effective / 1e9,
                fraction_of_peak: effective / peak,
            });
        }
    }
    points
}

/// The default sweep sizes (64 KiB … 1 GiB of doubles), mirroring the
/// HPCChallenge STREAM adaptation's range.
#[must_use]
pub fn default_vector_lengths() -> Vec<usize> {
    (13..=27).map(|p| 1usize << p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_moves_more_bytes_than_copy() {
        assert!(StreamKernel::Triad.bytes_per_element() > StreamKernel::Copy.bytes_per_element());
        assert_eq!(StreamKernel::all().len(), 4);
    }

    #[test]
    fn bandwidth_ramps_and_saturates_below_peak() {
        let device = FpgaDevice::stratix10_gx2800();
        let points = stream_sweep(&device, MemoryAllocation::Banked, &default_vector_lengths());
        let triad: Vec<&StreamPoint> = points
            .iter()
            .filter(|p| p.kernel == StreamKernel::Triad)
            .collect();
        for pair in triad.windows(2) {
            assert!(pair[1].bandwidth_gbs >= pair[0].bandwidth_gbs);
        }
        let last = triad.last().unwrap();
        assert!(last.fraction_of_peak > 0.9 && last.fraction_of_peak <= 1.0);
        let first = triad.first().unwrap();
        assert!(
            first.fraction_of_peak < 0.5,
            "small transfers are latency bound"
        );
    }

    #[test]
    fn interleaved_never_beats_banked() {
        let device = FpgaDevice::stratix10_gx2800();
        let lengths = default_vector_lengths();
        let banked = stream_sweep(&device, MemoryAllocation::Banked, &lengths);
        let interleaved = stream_sweep(&device, MemoryAllocation::Interleaved, &lengths);
        for (b, i) in banked.iter().zip(&interleaved) {
            assert!(b.bandwidth_gbs >= i.bandwidth_gbs);
        }
    }

    #[test]
    fn sweep_covers_every_kernel_and_size() {
        let device = FpgaDevice::stratix10_gx2800();
        let lengths = vec![1 << 14, 1 << 20];
        let points = stream_sweep(&device, MemoryAllocation::Banked, &lengths);
        assert_eq!(points.len(), 4 * 2);
    }
}
