//! Cycle / BRAM model of the on-device preconditioner kernels.
//!
//! A CG preconditioner that lives on the host forces the residual across the
//! PCIe link twice per iteration, which is exactly the round trip the
//! offload design exists to avoid (FPGA CG implementations keep the
//! preconditioner on the device for this reason).  This module prices the
//! two device-resident preconditioner passes the workspace ships:
//!
//! * **Jacobi** — a pointwise multiply of the residual by the resident
//!   inverse diagonal: one FLOP per DOF, three streamed words per DOF
//!   (residual in, diagonal in, correction out).  Purely memory-bound.
//! * **FDM** — the fast-diagonalization tensor pass: three small dense
//!   contractions forward (`Sᵀ`), a modal scale, three back (`S`), the same
//!   datapath shape as the `Ax` kernel itself (which is what makes it a
//!   natural second kernel on the fabric), plus the small Galerkin coarse
//!   solve (rectangular transfer contractions and one dense triangular
//!   solve, which pipelines poorly and is charged serially).
//!
//! The FDM operators are tiny and stay resident in BRAM: per direction
//! class the `S`/`Sᵀ` pair, per class combination the inverse
//! eigenvalue-sum table, plus the double-buffered patch working set.
//! [`FdmPrecondModel::bram_blocks`] accounts for them with the same M20K
//! arithmetic as the `Ax` working set ([`crate::bram`]), and
//! [`FdmPrecondModel::fits_beside_ax`] checks the combined kernel still fits
//! the fabric.

use crate::bram::{blocks_for_array, DOUBLE_BUFFER};
use crate::executor::{FpgaAccelerator, LAUNCH_OVERHEAD_CYCLES};
use sem_basis::fdm_coarse_degree;
use sem_kernel::fdm::{fdm_flops_per_element, fdm_patch_points};
use serde::{Deserialize, Serialize};

/// Streamed external words per DOF of the Jacobi pass (residual in, inverse
/// diagonal in, correction out).
pub const JACOBI_WORDS_PER_DOF: f64 = 3.0;

/// Streamed external bytes per DOF of the FDM pass (residual in, correction
/// out; the operators stay in BRAM).
pub const FDM_BYTES_PER_DOF: f64 = 16.0;

/// Worst-case distinct boundary classes per direction (low / interior /
/// high), used to bound the resident `S`/`Sᵀ` storage.
pub const DIRECTION_CLASSES: usize = 3;

/// Worst-case distinct class combinations (3³), bounding the resident
/// inverse eigenvalue-sum tables.
pub const CLASS_COMBINATIONS: usize = 27;

/// Timing/resource estimate of the on-device FDM preconditioner pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FdmPrecondEstimate {
    /// Polynomial degree.
    pub degree: usize,
    /// Elements per application.
    pub num_elements: usize,
    /// Coarse-space dimension charged to the serial solve stage.
    pub coarse_dofs: usize,
    /// Total simulated cycles of one application.
    pub cycles: f64,
    /// Simulated seconds of one application.
    pub seconds: f64,
    /// Floating-point operations of one application.
    pub flops: f64,
    /// M20K blocks the resident FDM tables and patch buffers occupy.
    pub bram_blocks: usize,
    /// Whether the FDM kernel fits on the device next to the `Ax` design.
    pub fits: bool,
}

/// The on-device FDM preconditioner kernel bound to an accelerator design.
#[derive(Debug, Clone)]
pub struct FdmPrecondModel {
    degree: usize,
    coarse_dofs: usize,
}

impl FdmPrecondModel {
    /// Model the FDM pass for `degree` with a Galerkin coarse space of
    /// `coarse_dofs` unknowns (zero when the preconditioner has no coarse
    /// level).
    #[must_use]
    pub fn new(degree: usize, coarse_dofs: usize) -> Self {
        Self {
            degree,
            coarse_dofs,
        }
    }

    /// Bytes of the one-off FDM table upload a solve session pays: the
    /// per-class `S`/`Sᵀ` pairs, the per-combination inverse eigenvalue-sum
    /// tables, and the lower-triangular coarse Cholesky factor.  These cross
    /// the PCIe link once per session (they are shared by every right-hand
    /// side), so `sem-accel` folds them into the offload plan's shared
    /// bytes.
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        let pnx = fdm_patch_points(self.degree) as u64;
        let nc = self.coarse_dofs as u64;
        let matrices = 3 * DIRECTION_CLASSES as u64 * 2 * pnx * pnx;
        let tables = CLASS_COMBINATIONS as u64 * pnx * pnx * pnx;
        let factor = nc * (nc + 1) / 2;
        (matrices + tables + factor) * 8
    }

    /// M20K blocks of the resident working set: the per-class `S`/`Sᵀ`
    /// pairs, the per-combination inverse tables, and the double-buffered
    /// patch buffers partitioned like the `Ax` scratch.
    #[must_use]
    pub fn bram_blocks(&self, accelerator: &FpgaAccelerator) -> usize {
        let pnx = fdm_patch_points(self.degree);
        let banks = accelerator.design().unroll;
        // S and Sᵀ per direction class (row-major pnx² doubles each).
        let matrices = 3 * DIRECTION_CLASSES * 2 * blocks_for_array(pnx * pnx, 1);
        // Inverse eigenvalue-sum tables, banked like the datapath reads them.
        let tables = CLASS_COMBINATIONS * blocks_for_array(pnx * pnx * pnx, banks);
        // Two patch working buffers, double-buffered across elements.
        let buffers = 2 * DOUBLE_BUFFER * blocks_for_array(pnx * pnx * pnx, banks);
        matrices + tables + buffers
    }

    /// Whether the FDM tables and buffers fit in the device BRAM next to the
    /// synthesised `Ax` design (whose own working set and base system are in
    /// the synthesis report's utilisation).
    #[must_use]
    pub fn fits_beside_ax(&self, accelerator: &FpgaAccelerator) -> bool {
        let used = accelerator.synthesis().utilisation.brams * accelerator.device().resources.brams;
        (self.bram_blocks(accelerator) as f64 + used) <= accelerator.device().resources.brams
    }

    /// Estimate one FDM application over `num_elements` elements on
    /// `accelerator`'s design and clock: the tensor pass streams at the
    /// design's unrolled rate (memory-capped on the 16 streamed bytes per
    /// DOF), each element pays the pipeline fill, the coarse transfer rides
    /// the same datapath and the dense triangular coarse solve is charged
    /// serially at one multiply-add per cycle.
    #[must_use]
    pub fn estimate(
        &self,
        accelerator: &FpgaAccelerator,
        num_elements: usize,
    ) -> FdmPrecondEstimate {
        let design = accelerator.design();
        let nx = self.degree + 1;
        let pnx = fdm_patch_points(self.degree);
        let dofs_per_element = (pnx * pnx * pnx) as f64;
        let total_dofs = dofs_per_element * num_elements as f64;
        let f_mhz = accelerator.synthesis().fmax_mhz;

        let ii = design.initiation_interval as f64;
        let mut compute_rate = design.unroll as f64 / ii;
        if !design.arbitration_free() {
            compute_rate *= 0.5;
        }
        // The pass streams far fewer external bytes per DOF than `Ax`
        // (16 vs 64+), so the memory system rarely binds; model it with the
        // same effective-bandwidth ramp regardless.
        let total_bytes = FDM_BYTES_PER_DOF * total_dofs;
        let memory_rate = accelerator
            .memory()
            .effective_bytes_per_cycle(total_bytes, f_mhz)
            / FDM_BYTES_PER_DOF;
        let steady_rate = compute_rate.min(memory_rate).max(1e-9);
        let fill = 0.5 * pnx as f64 * num_elements as f64;

        // Coarse level (absent entirely when `coarse_dofs == 0`).  The
        // restriction/prolongation contractions read the element data
        // already resident on chip and their multiply-adds ride the
        // datapath's spare width (the FDM pass streams a quarter of the Ax
        // bytes, so width, not bandwidth, is the binding resource), so they
        // add work to the FLOP ledger but no streaming cycles.  The dense
        // triangular solve is different: its row-to-row dependency chain
        // cannot pipeline across rows, so it runs the row dot products on
        // the `T`-wide multiply-add units at `nc²/T` cycles.
        let cnx = (fdm_coarse_degree(self.degree) + 1) as f64;
        let transfer_flops = if self.coarse_dofs == 0 {
            0.0
        } else {
            4.0 * cnx * (nx * nx * nx) as f64 * num_elements as f64
        };
        let coarse_cycles = (self.coarse_dofs as f64).powi(2) / design.unroll as f64;

        let cycles = total_dofs / steady_rate + fill + coarse_cycles + LAUNCH_OVERHEAD_CYCLES;
        let seconds = cycles / (f_mhz * 1e6);
        let flops = fdm_flops_per_element(self.degree) as f64 * num_elements as f64
            + transfer_flops
            + 2.0 * (self.coarse_dofs as f64).powi(2);

        FdmPrecondEstimate {
            degree: self.degree,
            num_elements,
            coarse_dofs: self.coarse_dofs,
            cycles,
            seconds,
            flops,
            bram_blocks: self.bram_blocks(accelerator),
            fits: self.fits_beside_ax(accelerator),
        }
    }
}

/// Estimate one Jacobi preconditioner application over `num_elements`
/// elements: a pointwise multiply streaming three words per DOF, memory
/// bound, with the usual pipeline fill and launch overhead.
#[must_use]
pub fn estimate_jacobi_seconds(accelerator: &FpgaAccelerator, num_elements: usize) -> f64 {
    let design = accelerator.design();
    let nx = design.degree + 1;
    let total_dofs = (nx * nx * nx) as f64 * num_elements as f64;
    let f_mhz = accelerator.synthesis().fmax_mhz;
    let bytes_per_dof = JACOBI_WORDS_PER_DOF * 8.0;
    let memory_rate = accelerator
        .memory()
        .effective_bytes_per_cycle(bytes_per_dof * total_dofs, f_mhz)
        / bytes_per_dof;
    let compute_rate = design.unroll as f64;
    let steady_rate = compute_rate.min(memory_rate).max(1e-9);
    let cycles = total_dofs / steady_rate + LAUNCH_OVERHEAD_CYCLES;
    cycles / (f_mhz * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_model::FpgaDevice;

    fn accelerator(degree: usize) -> FpgaAccelerator {
        FpgaAccelerator::for_degree(degree, &FpgaDevice::stratix10_gx2800())
    }

    #[test]
    fn fdm_pass_costs_about_one_ax_application_at_scale() {
        // Same contraction structure, fewer geometric multiplies, fewer
        // streamed bytes: at serving scale the FDM pass must land within a
        // small factor of the Ax kernel itself — that is what makes
        // on-device preconditioning worth the fabric.  (At tiny element
        // counts the pipelined-but-dependency-bound coarse solve is the
        // visible floor instead.)
        for degree in [3_usize, 7, 11] {
            let acc = accelerator(degree);
            let elements = 4096;
            let ax = acc.estimate(elements).seconds;
            let fdm = FdmPrecondModel::new(degree, 343)
                .estimate(&acc, elements)
                .seconds;
            assert!(fdm > 0.0);
            assert!(fdm < 1.5 * ax, "degree {degree}: fdm {fdm} vs ax {ax}");
        }
    }

    #[test]
    fn fdm_tables_fit_beside_every_table1_design() {
        for degree in [1_usize, 3, 5, 7, 9, 11, 13, 15] {
            let acc = accelerator(degree);
            let model = FdmPrecondModel::new(degree, 343);
            let est = model.estimate(&acc, 4096);
            assert!(est.bram_blocks > 0);
            assert!(est.fits, "degree {degree}: {} blocks", est.bram_blocks);
        }
    }

    #[test]
    fn coarse_solve_is_visible_but_amortises_at_scale() {
        let acc = accelerator(7);
        // Visible at any size...
        let small_without = FdmPrecondModel::new(7, 0).estimate(&acc, 64);
        let small_with = FdmPrecondModel::new(7, 343).estimate(&acc, 64);
        assert!(small_with.cycles > small_without.cycles);
        // ...dominant only at tiny element counts (the dependency-bound
        // triangular solve is a fixed floor); at serving scale it is noise.
        let large_without = FdmPrecondModel::new(7, 0).estimate(&acc, 4096);
        let large_with = FdmPrecondModel::new(7, 343).estimate(&acc, 4096);
        assert!(large_with.seconds < 1.1 * large_without.seconds);
    }

    #[test]
    fn jacobi_pass_is_much_cheaper_than_fdm() {
        let acc = accelerator(7);
        let jacobi = estimate_jacobi_seconds(&acc, 64);
        let fdm = FdmPrecondModel::new(7, 343).estimate(&acc, 64).seconds;
        assert!(jacobi > 0.0);
        assert!(jacobi < fdm);
    }

    #[test]
    fn per_element_cost_scales_linearly_at_size() {
        let acc = accelerator(7);
        let model = FdmPrecondModel::new(7, 0);
        let small = model.estimate(&acc, 512).seconds;
        let large = model.estimate(&acc, 4096).seconds;
        let ratio = large / small;
        assert!((ratio - 8.0).abs() < 1.0, "ratio {ratio}");
    }
}
