//! Synthesis estimation: resources, utilisation and achievable kernel clock
//! for a (device, design) pair.
//!
//! Resource demand follows the paper's model: the empirically calibrated base
//! design (`R_base(N)`, Section IV) plus `T` copies of the per-DOF arithmetic
//! and the BRAM working set.  The kernel clock of the eight as-built GX2800
//! designs is pinned to the values the paper measured (Table I); for every
//! other configuration an analytic estimate is used in which routing pressure
//! (logic utilisation) erodes the achievable clock — the behaviour visible in
//! Table I where the fuller designs close timing lower.

use crate::bram::design_bram_blocks;
use crate::design::{AcceleratorDesign, OptimizationStage};
use perf_model::projection::calibrated_base;
use perf_model::{FpgaDevice, ResourceVector};
use serde::{Deserialize, Serialize};

/// Result of "synthesising" a design for a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisReport {
    /// The design that was synthesised.
    pub design: AcceleratorDesign,
    /// Device name.
    pub device: String,
    /// Absolute resources consumed.
    pub resources: ResourceVector,
    /// Utilisation fractions of the device.
    pub utilisation: ResourceVector,
    /// Estimated register count (reported for parity with Table I).
    pub registers: u64,
    /// Achievable kernel clock in MHz.
    pub fmax_mhz: f64,
    /// Whether the design fits on the device.
    pub fits: bool,
}

/// Analytic clock estimate: an empty fabric closes near the device maximum,
/// and every additional 10% of logic utilisation costs about 23 MHz of
/// routing slack (fit to the spread of Table I).
#[must_use]
pub fn estimated_fmax_mhz(device: &FpgaDevice, logic_utilisation: f64) -> f64 {
    let degraded = device.max_kernel_clock_mhz + 40.0 - 230.0 * logic_utilisation;
    degraded.clamp(150.0, device.max_kernel_clock_mhz)
}

/// Synthesise `design` for `device`.
#[must_use]
pub fn synthesize(design: &AcceleratorDesign, device: &FpgaDevice) -> SynthesisReport {
    let base = calibrated_base(design.degree);
    // The baseline design has no unrolled datapath worth speaking of; the
    // later stages replicate the per-DOF FPUs `unroll` times.
    let compute = device
        .fpu
        .compute_resources(design.degree, design.unroll as f64);
    let brams = design_bram_blocks(design) as f64;
    let mut resources = base.plus(&compute);
    resources.brams += brams;

    let utilisation = resources.utilisation(&device.resources);
    let fits = resources.fits_within(&device.resources);

    // Kernel clock: pin the as-built GX2800 production designs to the
    // measured Table I values, otherwise estimate analytically.
    let is_as_built = device.name.contains("GX2800")
        && design.stage == OptimizationStage::Banked
        && !design.host_padding;
    let fmax_mhz = if is_as_built {
        perf_model::measured::measured_fmax_mhz(design.degree)
            .unwrap_or_else(|| estimated_fmax_mhz(device, utilisation.alms))
    } else {
        estimated_fmax_mhz(device, utilisation.alms)
    };

    // Registers scale with the datapath width; 2.2 registers per ALM of the
    // consumed logic reproduces the magnitude of Table I's register column.
    let registers = (resources.alms * 2.2) as u64;

    SynthesisReport {
        design: *design,
        device: device.name.clone(),
        resources,
        utilisation,
        registers,
        fmax_mhz,
        fits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_model::measured_table1;

    #[test]
    fn as_built_designs_use_measured_clocks() {
        let device = FpgaDevice::stratix10_gx2800();
        for row in measured_table1() {
            let design = AcceleratorDesign::for_degree(row.degree, &device);
            let report = synthesize(&design, &device);
            assert_eq!(report.fmax_mhz, row.fmax_mhz, "degree {}", row.degree);
            assert!(report.fits, "degree {} must fit", row.degree);
        }
    }

    #[test]
    fn utilisation_is_within_the_device_and_tracks_table1_loosely() {
        let device = FpgaDevice::stratix10_gx2800();
        for row in measured_table1() {
            let design = AcceleratorDesign::for_degree(row.degree, &device);
            let report = synthesize(&design, &device);
            assert!(report.utilisation.alms <= 1.0);
            // The logic utilisation must reproduce the measured value closely
            // because the base is calibrated from it.
            assert!(
                (report.utilisation.alms - row.logic_fraction).abs() < 0.08,
                "degree {}: {:.2} vs {:.2}",
                row.degree,
                report.utilisation.alms,
                row.logic_fraction
            );
        }
    }

    #[test]
    fn estimated_clock_degrades_with_utilisation_and_is_clamped() {
        let device = FpgaDevice::stratix10_gx2800();
        let empty = estimated_fmax_mhz(&device, 0.1);
        let full = estimated_fmax_mhz(&device, 0.9);
        assert!(empty > full);
        assert!(full >= 150.0);
        assert!(empty <= device.max_kernel_clock_mhz);
    }

    #[test]
    fn non_production_stages_use_the_analytic_clock() {
        let device = FpgaDevice::stratix10_gx2800();
        let design = AcceleratorDesign::at_stage(7, &device, OptimizationStage::LocalMemory);
        let report = synthesize(&design, &device);
        assert_ne!(report.fmax_mhz, 274.0);
        assert!(report.fmax_mhz >= 150.0);
    }

    #[test]
    fn oversubscribed_designs_are_flagged() {
        // A huge unroll cannot fit on the GX2800.
        let device = FpgaDevice::stratix10_gx2800();
        let mut design = AcceleratorDesign::for_degree(15, &device);
        design.unroll = 64;
        let report = synthesize(&design, &device);
        assert!(!report.fits);
        assert!(report.utilisation.alms > 1.0);
    }

    #[test]
    fn register_estimate_is_in_the_table1_ballpark() {
        let device = FpgaDevice::stratix10_gx2800();
        let design = AcceleratorDesign::for_degree(7, &device);
        let report = synthesize(&design, &device);
        assert!(report.registers > 800_000 && report.registers < 2_500_000);
    }
}
