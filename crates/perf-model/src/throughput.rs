//! Throughput and peak-performance prediction (the core of Section IV).
//!
//! The accelerator processes `T` degrees of freedom per cycle.  `T` is bounded
//! by three things:
//!
//! 1. **Bandwidth**: each DOF needs 8 double words from/to external memory,
//!    so `T_B = B / (64 · f)`;
//! 2. **Resources**: the fabric left over after the base design
//!    (`R_max = R_tot − R_base`) must hold `T` copies of the per-DOF FPUs,
//!    `T_R = min over resource types of R_max / (C_add R_add + C_mul R_mul)`;
//! 3. **Arbitration**: the HLS tool only produces stall-free BRAM access if
//!    the unroll factor is a power of two that divides `N + 1`
//!    (`T = 2^k`, `(N+1) mod T = 0`).
//!
//! Peak performance is then `P_max(N) = (12(N+1) + 15) · T_max · f`.

use crate::cost::{bytes_per_dof, flops_per_dof};
use crate::device::FpgaDevice;
use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};

/// Which constraint ends up limiting the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerformanceBound {
    /// External memory bandwidth is the binding constraint.
    Bandwidth,
    /// Adaptive logic (ALMs) is the binding constraint.
    Logic,
    /// DSP blocks are the binding constraint.
    Dsp,
    /// Block RAM is the binding constraint.
    Bram,
}

/// How the unroll factor is constrained (Section IV / Section V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ArbitrationPolicy {
    /// The as-built HLS behaviour: `T` must be a power of two **and** divide
    /// `N + 1`, otherwise BRAM arbitration destroys the pipeline.
    #[default]
    PowerOfTwoDivisor,
    /// Future-HLS assumption used for the Agilex / Stratix 10M projections:
    /// `T` must still be a power of two but no longer needs to divide `N+1`.
    PowerOfTwo,
    /// No constraint at all (used for the "ideal FPGA" projection, which is
    /// sized so that memory bandwidth is the only limit).
    Unconstrained,
}

/// The model's prediction for one accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPrediction {
    /// Polynomial degree.
    pub degree: usize,
    /// Kernel clock used for the prediction, MHz.
    pub frequency_mhz: f64,
    /// Bandwidth-limited throughput `T_B` in DOFs/cycle.
    pub bandwidth_limit: f64,
    /// Resource-limited throughput `T_R` in DOFs/cycle.
    pub resource_limit: f64,
    /// `min(T_B, T_R)` before the arbitration constraint.
    pub unconstrained: f64,
    /// Final throughput after the arbitration policy.
    pub dofs_per_cycle: f64,
    /// Whether the arbitration/unroll constraint reduced the throughput.
    pub arbitration_limited: bool,
    /// The binding constraint (before arbitration).
    pub bound: PerformanceBound,
    /// Predicted performance `P_max` in GFLOP/s.
    pub gflops: f64,
}

/// Bandwidth-limited throughput `T_B = B / (bytes_per_dof · f)` in DOFs/cycle.
#[must_use]
pub fn bandwidth_throughput(bandwidth_gbs: f64, degree: usize, frequency_mhz: f64) -> f64 {
    if frequency_mhz <= 0.0 {
        return 0.0;
    }
    bandwidth_gbs * 1e9 / (bytes_per_dof(degree) * frequency_mhz * 1e6)
}

/// Apply an arbitration policy to an unconstrained throughput value.
#[must_use]
pub fn constrain_throughput(unconstrained: f64, degree: usize, policy: ArbitrationPolicy) -> f64 {
    match policy {
        ArbitrationPolicy::Unconstrained => unconstrained,
        ArbitrationPolicy::PowerOfTwo => largest_power_of_two_at_most(unconstrained),
        ArbitrationPolicy::PowerOfTwoDivisor => {
            let n1 = degree + 1;
            let mut best = 1.0_f64;
            let mut t = 1_usize;
            while (t as f64) <= unconstrained {
                if n1.is_multiple_of(t) {
                    best = t as f64;
                }
                t *= 2;
            }
            best.min(unconstrained.max(1.0))
        }
    }
}

fn largest_power_of_two_at_most(x: f64) -> f64 {
    if x < 1.0 {
        return x.max(0.0);
    }
    let mut t = 1.0_f64;
    while t * 2.0 <= x {
        t *= 2.0;
    }
    t
}

/// Predict the throughput and performance of the accelerator for `degree` on
/// `device`, given the empirically calibrated base utilisation `base` and the
/// kernel clock `frequency_mhz`.
#[must_use]
pub fn predict(
    device: &FpgaDevice,
    degree: usize,
    base: &ResourceVector,
    frequency_mhz: f64,
    policy: ArbitrationPolicy,
) -> ThroughputPrediction {
    let available = device.resources.saturating_minus(base);
    let per_unit = device.fpu.compute_resources(degree, 1.0);

    // Resource bound and which resource binds.
    let mut resource_limit = f64::INFINITY;
    let mut bound = PerformanceBound::Logic;
    if per_unit.alms > 0.0 {
        resource_limit = available.alms / per_unit.alms;
        bound = PerformanceBound::Logic;
    }
    if per_unit.dsps > 0.0 {
        let t = available.dsps / per_unit.dsps;
        if t < resource_limit {
            resource_limit = t;
            bound = PerformanceBound::Dsp;
        }
    }
    if per_unit.brams > 0.0 {
        let t = available.brams / per_unit.brams;
        if t < resource_limit {
            resource_limit = t;
            bound = PerformanceBound::Bram;
        }
    }

    let bandwidth_limit = bandwidth_throughput(device.memory_bandwidth_gbs, degree, frequency_mhz);
    let unconstrained = bandwidth_limit.min(resource_limit);
    if bandwidth_limit <= resource_limit {
        bound = PerformanceBound::Bandwidth;
    }
    let dofs_per_cycle = constrain_throughput(unconstrained, degree, policy);
    let arbitration_limited = dofs_per_cycle + 1e-12 < largest_power_of_two_at_most(unconstrained);

    let gflops = flops_per_dof(degree) * dofs_per_cycle * frequency_mhz * 1e6 / 1e9;

    ThroughputPrediction {
        degree,
        frequency_mhz,
        bandwidth_limit,
        resource_limit,
        unconstrained,
        dofs_per_cycle,
        arbitration_limited,
        bound,
        gflops,
    }
}

/// Peak performance `P_max(N) = (12(N+1)+15) · T · f` in GFLOP/s.
#[must_use]
pub fn peak_gflops(degree: usize, dofs_per_cycle: f64, frequency_mhz: f64) -> f64 {
    flops_per_dof(degree) * dofs_per_cycle * frequency_mhz * 1e6 / 1e9
}

/// Relative model error in percent, `|model − measured| / measured · 100`,
/// computed on the throughput per cycle as in Table I.
#[must_use]
pub fn model_error_percent(modelled_dofs_per_cycle: f64, measured_dofs_per_cycle: f64) -> f64 {
    if measured_dofs_per_cycle == 0.0 {
        return f64::INFINITY;
    }
    ((modelled_dofs_per_cycle - measured_dofs_per_cycle) / measured_dofs_per_cycle).abs() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_bound_matches_the_papers_tmax_of_four() {
        // 76.8 GB/s at a 300 MHz memory clock gives T_B = 4 DOFs/cycle.
        let t = bandwidth_throughput(76.8, 7, 300.0);
        assert!((t - 4.0).abs() < 1e-9);
    }

    #[test]
    fn arbitration_constraint_per_degree() {
        // N+1 = 8: can unroll by 4 (or 8 if allowed by the other limits).
        assert_eq!(
            constrain_throughput(4.0, 7, ArbitrationPolicy::PowerOfTwoDivisor),
            4.0
        );
        assert_eq!(
            constrain_throughput(7.9, 7, ArbitrationPolicy::PowerOfTwoDivisor),
            4.0
        );
        // N+1 = 10: only 2 divides it among the powers of two <= 4.
        assert_eq!(
            constrain_throughput(4.0, 9, ArbitrationPolicy::PowerOfTwoDivisor),
            2.0
        );
        // N+1 = 6 with T up to 4: only 2.
        assert_eq!(
            constrain_throughput(4.0, 5, ArbitrationPolicy::PowerOfTwoDivisor),
            2.0
        );
        // N+1 = 12 with T up to 15.9: 4 under the divisor policy, 8 without it.
        assert_eq!(
            constrain_throughput(15.9, 11, ArbitrationPolicy::PowerOfTwoDivisor),
            4.0
        );
        assert_eq!(
            constrain_throughput(15.9, 11, ArbitrationPolicy::PowerOfTwo),
            8.0
        );
        // Unconstrained passes through.
        assert_eq!(
            constrain_throughput(62.5, 15, ArbitrationPolicy::Unconstrained),
            62.5
        );
    }

    #[test]
    fn gx2800_prediction_reproduces_table1_peaks() {
        let device = FpgaDevice::stratix10_gx2800();
        let base = ResourceVector::new(450_000.0, 100.0, 2_000.0);
        // N = 7 at the measured 274 MHz clock: T = 4, P ≈ 111 · 4 · 274 MHz ≈ 122 GF;
        // at the 300 MHz memory clock the model gives 133 GF — the paper's
        // Fig. 3 "modeled 300 MHz" curve.  The bandwidth bound is 4 either way.
        let p = predict(
            &device,
            7,
            &base,
            274.0,
            ArbitrationPolicy::PowerOfTwoDivisor,
        );
        assert_eq!(p.dofs_per_cycle, 4.0);
        assert_eq!(p.bound, PerformanceBound::Bandwidth);
        assert!((p.gflops - 111.0 * 4.0 * 274e6 / 1e9).abs() < 1e-6);

        // N = 9: the divisor constraint halves the throughput.
        let p9 = predict(
            &device,
            9,
            &base,
            233.0,
            ArbitrationPolicy::PowerOfTwoDivisor,
        );
        assert_eq!(p9.dofs_per_cycle, 2.0);
        assert!(p9.arbitration_limited);
    }

    #[test]
    fn agilex_projection_matches_section_vd() {
        // The Agilex 027 coupled with 153.6 GB/s at 300 MHz: the paper
        // projects 266, 191 and 248 GFLOP/s for N = 7, 11, 15.
        let device = FpgaDevice::agilex_027();
        for (degree, base_alms, expected) in [
            (7_usize, 452_000.0, 266.4),
            (11, 328_000.0, 190.8),
            (15, 251_000.0, 248.4),
        ] {
            let base = ResourceVector::new(base_alms, 0.0, 0.0);
            let p = predict(&device, degree, &base, 300.0, ArbitrationPolicy::PowerOfTwo);
            assert!(
                (p.gflops - expected).abs() < 0.12 * expected,
                "degree {degree}: {} vs {expected}",
                p.gflops
            );
        }
    }

    #[test]
    fn ideal_fpga_is_memory_bound_and_beats_two_tflops() {
        let device = FpgaDevice::hypothetical_ideal();
        let base = ResourceVector::new(450_000.0, 100.0, 2_000.0);
        let p7 = predict(&device, 7, &base, 300.0, ArbitrationPolicy::Unconstrained);
        assert!(p7.gflops > 2_000.0, "N=7 projection {}", p7.gflops);
        assert_eq!(p7.bound, PerformanceBound::Bandwidth);
        let p11 = predict(&device, 11, &base, 300.0, ArbitrationPolicy::Unconstrained);
        assert!(p11.gflops > 2_800.0, "N=11 projection {}", p11.gflops);
    }

    #[test]
    fn model_error_is_symmetric_in_sign() {
        assert!((model_error_percent(4.0, 3.58) - 11.73).abs() < 0.1);
        assert!((model_error_percent(3.2, 3.58) - 10.61).abs() < 0.1);
        assert_eq!(model_error_percent(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn peak_formula_matches_measured_identity() {
        // 111 FLOP/DOF · 3.96 DOF/cycle · 216 MHz ≈ 136 GFLOP/s (Table I, N = 11).
        let p = peak_gflops(11, 3.96, 216.0);
        assert!((p - 136.0).abs() < 1.0);
    }
}
