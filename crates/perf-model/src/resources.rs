//! FPGA resource accounting.
//!
//! The paper's resource measure is
//!
//! \[R_{tot} = R_{base}(N) + R_{comp}(N) , \qquad
//!   R_{comp}(N) = T \cdot (C_{add}(N) R_{add} + C_{mul}(N) R_{mul})\]
//!
//! where `T` is the throughput in DOFs per cycle and `R_add`, `R_mul` are
//! the resources needed to instantiate one double-precision adder or
//! multiplier.  Resources are tracked along three axes: adaptive logic
//! modules (ALMs), DSP blocks and M20K BRAM blocks.

use crate::cost::KernelCost;
use serde::{Deserialize, Serialize};

/// A vector of FPGA resources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ResourceVector {
    /// Adaptive logic modules.
    pub alms: f64,
    /// DSP blocks.
    pub dsps: f64,
    /// M20K block RAMs.
    pub brams: f64,
}

impl ResourceVector {
    /// Create a resource vector.
    #[must_use]
    pub fn new(alms: f64, dsps: f64, brams: f64) -> Self {
        Self { alms, dsps, brams }
    }

    /// Element-wise addition.
    #[must_use]
    pub fn plus(&self, other: &Self) -> Self {
        Self {
            alms: self.alms + other.alms,
            dsps: self.dsps + other.dsps,
            brams: self.brams + other.brams,
        }
    }

    /// Element-wise subtraction, clamped at zero.
    #[must_use]
    pub fn saturating_minus(&self, other: &Self) -> Self {
        Self {
            alms: (self.alms - other.alms).max(0.0),
            dsps: (self.dsps - other.dsps).max(0.0),
            brams: (self.brams - other.brams).max(0.0),
        }
    }

    /// Scale every component.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            alms: self.alms * factor,
            dsps: self.dsps * factor,
            brams: self.brams * factor,
        }
    }

    /// Whether every component of `self` fits within `capacity`.
    #[must_use]
    pub fn fits_within(&self, capacity: &Self) -> bool {
        self.alms <= capacity.alms && self.dsps <= capacity.dsps && self.brams <= capacity.brams
    }

    /// Utilisation fractions of `self` relative to a capacity vector
    /// (components with zero capacity report zero utilisation).
    #[must_use]
    pub fn utilisation(&self, capacity: &Self) -> Self {
        let frac = |used: f64, cap: f64| if cap > 0.0 { used / cap } else { 0.0 };
        Self {
            alms: frac(self.alms, capacity.alms),
            dsps: frac(self.dsps, capacity.dsps),
            brams: frac(self.brams, capacity.brams),
        }
    }
}

/// Resources needed to instantiate one double-precision floating-point unit.
///
/// The defaults reflect Intel Stratix 10 style devices where the DSP blocks
/// natively support single precision only: a double-precision multiplier
/// consumes several 18×19 DSP slices plus correction logic, and a
/// double-precision adder is built almost entirely out of ALMs — which is why
/// the paper's accelerator ends up *logic bound*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpuCost {
    /// ALMs per double-precision adder.
    pub add_alms: f64,
    /// DSPs per double-precision adder.
    pub add_dsps: f64,
    /// ALMs per double-precision multiplier.
    pub mult_alms: f64,
    /// DSPs per double-precision multiplier.
    pub mult_dsps: f64,
}

impl Default for FpuCost {
    fn default() -> Self {
        Self::stratix10_double()
    }
}

impl FpuCost {
    /// Empirical double-precision FPU costs on Stratix 10-class devices.
    #[must_use]
    pub fn stratix10_double() -> Self {
        Self {
            add_alms: 700.0,
            add_dsps: 0.0,
            mult_alms: 300.0,
            mult_dsps: 4.0,
        }
    }

    /// A hypothetical device with DSP blocks hardened for double precision
    /// (the final remark of Section V-D): multiplications and additions map
    /// almost entirely to DSPs, relieving the logic pressure.
    #[must_use]
    pub fn hardened_double_dsp() -> Self {
        Self {
            add_alms: 80.0,
            add_dsps: 0.5,
            mult_alms: 60.0,
            mult_dsps: 1.0,
        }
    }

    /// Resources required to sustain `throughput` DOFs per cycle at degree
    /// `degree`: the paper's `R_comp(N) = T (C_add R_add + C_mul R_mul)`.
    #[must_use]
    pub fn compute_resources(&self, degree: usize, throughput: f64) -> ResourceVector {
        let c = KernelCost::new(degree);
        ResourceVector {
            alms: throughput * (c.adds as f64 * self.add_alms + c.mults as f64 * self.mult_alms),
            dsps: throughput * (c.adds as f64 * self.add_dsps + c.mults as f64 * self.mult_dsps),
            brams: 0.0,
        }
    }

    /// The largest throughput (DOFs/cycle) the available compute resources
    /// can sustain at degree `degree` — the element-wise division
    /// `R_max / R_comp-per-unit-T` of the paper, taking the minimum over the
    /// resource types that are actually consumed.
    #[must_use]
    pub fn max_throughput(&self, degree: usize, available: &ResourceVector) -> f64 {
        let per_unit = self.compute_resources(degree, 1.0);
        let mut t = f64::INFINITY;
        if per_unit.alms > 0.0 {
            t = t.min(available.alms / per_unit.alms);
        }
        if per_unit.dsps > 0.0 {
            t = t.min(available.dsps / per_unit.dsps);
        }
        if per_unit.brams > 0.0 {
            t = t.min(available.brams / per_unit.brams);
        }
        t.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = ResourceVector::new(10.0, 2.0, 1.0);
        let b = ResourceVector::new(4.0, 5.0, 0.5);
        let sum = a.plus(&b);
        assert_eq!(sum.alms, 14.0);
        let diff = a.saturating_minus(&b);
        assert_eq!(diff.dsps, 0.0);
        assert!(a.scaled(2.0).alms == 20.0);
        assert!(b.fits_within(&ResourceVector::new(5.0, 6.0, 1.0)));
        assert!(!a.fits_within(&b));
        let u = a.utilisation(&ResourceVector::new(20.0, 4.0, 0.0));
        assert!((u.alms - 0.5).abs() < 1e-12);
        assert_eq!(u.brams, 0.0);
    }

    #[test]
    fn compute_resources_scale_linearly_with_throughput() {
        let fpu = FpuCost::stratix10_double();
        let r1 = fpu.compute_resources(7, 1.0);
        let r4 = fpu.compute_resources(7, 4.0);
        assert!((r4.alms - 4.0 * r1.alms).abs() < 1e-9);
        assert!((r4.dsps - 4.0 * r1.dsps).abs() < 1e-9);
    }

    #[test]
    fn stratix_double_precision_is_logic_heavy() {
        // The defining observation of the paper: per unit throughput the ALM
        // demand dominates relative to the device's ALM/DSP ratio (~162 on
        // the GX2800), so the design is logic bound.
        let fpu = FpuCost::stratix10_double();
        let r = fpu.compute_resources(7, 1.0);
        assert!(r.alms / r.dsps > 933_120.0 / 5_760.0);
    }

    #[test]
    fn hardened_dsp_flips_the_bottleneck() {
        let fpu = FpuCost::hardened_double_dsp();
        let r = fpu.compute_resources(7, 1.0);
        assert!(r.alms / r.dsps < 933_120.0 / 5_760.0);
    }

    #[test]
    fn max_throughput_respects_the_scarcest_resource() {
        let fpu = FpuCost::stratix10_double();
        let per_unit = fpu.compute_resources(7, 1.0);
        // Plenty of DSPs, little logic: ALMs limit.
        let avail = ResourceVector::new(per_unit.alms * 3.0, per_unit.dsps * 100.0, 0.0);
        let t = fpu.max_throughput(7, &avail);
        assert!((t - 3.0).abs() < 1e-9);
        // Plenty of logic, few DSPs: DSPs limit.
        let avail = ResourceVector::new(per_unit.alms * 100.0, per_unit.dsps * 2.0, 0.0);
        let t = fpu.max_throughput(7, &avail);
        assert!((t - 2.0).abs() < 1e-9);
    }
}
