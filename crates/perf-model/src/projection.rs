//! Performance projection for current and future FPGAs (Section V-D).
//!
//! The methodology follows the paper: take the empirically measured base
//! resource utilisation of the Stratix 10 designs (`R_base(N)` derived from
//! Table I), combine it with a candidate device's resources, memory bandwidth
//! and clock, and evaluate the throughput model for each polynomial degree.
//! The module also answers the inverse question — what device would be needed
//! to hit a target performance — which is how the paper arrives at its
//! "hypothetical ideal" FPGA.

use crate::device::FpgaDevice;
use crate::measured::{measured_row, measured_table1};
use crate::resources::{FpuCost, ResourceVector};
use crate::throughput::{constrain_throughput, predict, ArbitrationPolicy, ThroughputPrediction};
use serde::{Deserialize, Serialize};

/// Projection for one polynomial degree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeProjection {
    /// Polynomial degree.
    pub degree: usize,
    /// The model's throughput/performance prediction.
    pub prediction: ThroughputPrediction,
}

/// Projection of a whole device over a set of degrees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectionOutcome {
    /// Device name.
    pub device: String,
    /// Kernel clock assumed for the projection (MHz).
    pub frequency_mhz: f64,
    /// Per-degree predictions.
    pub projections: Vec<DegreeProjection>,
}

impl ProjectionOutcome {
    /// The best projected performance over all degrees, in GFLOP/s.
    #[must_use]
    pub fn peak_gflops(&self) -> f64 {
        self.projections
            .iter()
            .map(|p| p.prediction.gflops)
            .fold(0.0, f64::max)
    }

    /// The projection for a specific degree, if present.
    #[must_use]
    pub fn for_degree(&self, degree: usize) -> Option<&DegreeProjection> {
        self.projections.iter().find(|p| p.degree == degree)
    }
}

/// The empirically calibrated base resource utilisation `R_base(N)` on the
/// Stratix 10 GX2800: the measured total utilisation of Table I minus the
/// compute resources the model attributes to the measured unroll factor.
///
/// For degrees the paper did not synthesise, the nearest synthesised degree
/// is used (the base utilisation varies slowly with `N`).
#[must_use]
pub fn calibrated_base(degree: usize) -> ResourceVector {
    let gx = FpgaDevice::stratix10_gx2800();
    let table = measured_table1();
    // Nearest measured degree.
    let row = measured_row(degree).unwrap_or_else(|| {
        table
            .iter()
            .min_by_key(|r| r.degree.abs_diff(degree))
            .copied()
            .expect("table is non-empty")
    });
    // The unroll factor the as-built design used (divisor-constrained, T <= 4).
    let t_used = constrain_throughput(4.0, row.degree, ArbitrationPolicy::PowerOfTwoDivisor);
    let comp = gx.fpu.compute_resources(row.degree, t_used);
    let total = ResourceVector::new(
        row.logic_fraction * gx.resources.alms,
        row.dsp_fraction * gx.resources.dsps,
        row.bram_fraction * gx.resources.brams,
    );
    total.saturating_minus(&comp)
}

/// Project a device over a set of polynomial degrees at the given clock.
#[must_use]
pub fn project_device(
    device: &FpgaDevice,
    degrees: &[usize],
    frequency_mhz: f64,
    policy: ArbitrationPolicy,
) -> ProjectionOutcome {
    let projections = degrees
        .iter()
        .map(|&degree| {
            let base = calibrated_base(degree);
            DegreeProjection {
                degree,
                prediction: predict(device, degree, &base, frequency_mhz, policy),
            }
        })
        .collect();
    ProjectionOutcome {
        device: device.name.clone(),
        frequency_mhz,
        projections,
    }
}

/// Section V-D, inverse direction: size an FPGA that reaches
/// `target_gflops` for each listed degree at clock `frequency_mhz`, assuming
/// the same per-FPU costs as the calibrated fabric.
///
/// Returns the synthetic device (resources, bandwidth) the model requires.
#[must_use]
pub fn design_fpga_for_targets(
    targets: &[(usize, f64)],
    frequency_mhz: f64,
    fpu: FpuCost,
) -> FpgaDevice {
    let mut needed = ResourceVector::default();
    let mut needed_bandwidth_gbs: f64 = 0.0;
    for &(degree, gflops) in targets {
        let flops_per_dof = crate::cost::flops_per_dof(degree);
        let throughput = gflops * 1e9 / (flops_per_dof * frequency_mhz * 1e6);
        // Bandwidth needed so that T_B >= throughput.
        let bw = throughput * crate::cost::bytes_per_dof(degree) * frequency_mhz * 1e6 / 1e9;
        needed_bandwidth_gbs = needed_bandwidth_gbs.max(bw);
        let base = calibrated_base(degree);
        let total = base.plus(&fpu.compute_resources(degree, throughput));
        needed.alms = needed.alms.max(total.alms);
        needed.dsps = needed.dsps.max(total.dsps);
        needed.brams = needed.brams.max(total.brams.max(base.brams));
    }
    FpgaDevice {
        name: "Model-designed FPGA".to_string(),
        resources: needed,
        fpu,
        memory_bandwidth_gbs: needed_bandwidth_gbs,
        memory_banks: 16,
        memory_clock_mhz: 300.0,
        max_kernel_clock_mhz: frequency_mhz,
        tdp_watts: 300.0,
        release_year: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROJECTION_DEGREES: [usize; 3] = [7, 11, 15];

    #[test]
    fn calibrated_base_is_positive_and_below_device_capacity() {
        let gx = FpgaDevice::stratix10_gx2800();
        for degree in 1..=16 {
            let base = calibrated_base(degree);
            assert!(base.alms > 0.0);
            assert!(base.fits_within(&gx.resources), "degree {degree}");
        }
    }

    #[test]
    fn gx2800_projection_reproduces_the_measured_ranking() {
        // The model at the memory clock (300 MHz) must reproduce the paper's
        // T_max = 4 / 2 pattern of Table I.
        let device = FpgaDevice::stratix10_gx2800();
        let out = project_device(
            &device,
            &[1, 3, 5, 7, 9, 11, 13, 15],
            300.0,
            ArbitrationPolicy::PowerOfTwoDivisor,
        );
        for p in &out.projections {
            let expect = if (p.degree + 1) % 4 == 0 { 4.0 } else { 2.0 };
            assert_eq!(p.prediction.dofs_per_cycle, expect, "degree {}", p.degree);
        }
    }

    #[test]
    fn agilex_and_stratix10m_projections_match_section_vd() {
        let agilex = project_device(
            &FpgaDevice::agilex_027(),
            &PROJECTION_DEGREES,
            300.0,
            ArbitrationPolicy::PowerOfTwo,
        );
        // Paper: 266, 191 and 248 GFLOP/s.
        let expected = [(7_usize, 266.0), (11, 191.0), (15, 248.0)];
        for (degree, gflops) in expected {
            let got = agilex.for_degree(degree).unwrap().prediction.gflops;
            assert!(
                (got - gflops).abs() < 0.15 * gflops,
                "Agilex degree {degree}: {got} vs {gflops}"
            );
        }

        let s10m = project_device(
            &FpgaDevice::stratix10m(),
            &PROJECTION_DEGREES,
            300.0,
            ArbitrationPolicy::PowerOfTwo,
        );
        // Paper: peaks at ~382 GFLOP/s (N = 11).
        let got = s10m.for_degree(11).unwrap().prediction.gflops;
        assert!(
            (got - 382.0).abs() < 0.15 * 382.0,
            "Stratix 10M N=11: {got}"
        );
        assert!(s10m.peak_gflops() >= got);
    }

    #[test]
    fn ideal_fpga_projection_lands_in_the_tflops_range() {
        let ideal = project_device(
            &FpgaDevice::hypothetical_ideal(),
            &PROJECTION_DEGREES,
            300.0,
            ArbitrationPolicy::Unconstrained,
        );
        // Paper: 2.1, 3.0, 3.97 TFLOP/s.  Our calibrated FPU cost makes the
        // highest degrees DSP-bound slightly earlier, so we accept >= 2 TF at
        // N = 7 and >= 2.8 TF at N >= 11 (documented in EXPERIMENTS.md).
        assert!(ideal.for_degree(7).unwrap().prediction.gflops > 2_000.0);
        assert!(ideal.for_degree(11).unwrap().prediction.gflops > 2_800.0);
        assert!(ideal.for_degree(15).unwrap().prediction.gflops > 2_800.0);
    }

    #[test]
    fn designing_for_a100_class_targets_requires_an_a100_class_memory() {
        // Ask the model for a device matching the A100 GPU kernel performance
        // the paper quotes (≈2.3 TF at N = 9, ≈1.8 TF at N = 15): the required
        // bandwidth must come out close to (but below) the A100's 1.555 TB/s,
        // and the logic must be several times the GX2800 — the shape of the
        // paper's "ideal FPGA".
        let device = design_fpga_for_targets(
            &[(7, 2_100.0), (11, 3_000.0), (15, 3_970.0)],
            300.0,
            FpuCost::stratix10_double(),
        );
        assert!(device.memory_bandwidth_gbs > 1_000.0 && device.memory_bandwidth_gbs < 1_555.0);
        let gx = FpgaDevice::stratix10_gx2800();
        assert!(device.resources.alms > 4.0 * gx.resources.alms);
        assert!(device.resources.dsps > 2.0 * gx.resources.dsps);
    }

    #[test]
    fn projection_outcome_helpers() {
        let out = project_device(
            &FpgaDevice::stratix10_gx2800(),
            &[7, 11],
            300.0,
            ArbitrationPolicy::PowerOfTwoDivisor,
        );
        assert!(out.for_degree(7).is_some());
        assert!(out.for_degree(8).is_none());
        assert!(out.peak_gflops() > 100.0);
    }
}
