//! The paper's Table I: synthesis and performance of the eight accelerators
//! measured on the Stratix 10 GX2800.
//!
//! These values serve two purposes in the reproduction:
//!
//! 1. they are the *reference data* every regenerated table/figure is
//!    compared against (see `EXPERIMENTS.md`), and
//! 2. they provide the empirically measured base resource utilisation
//!    `R_base(N)` that the paper's own projection methodology reuses
//!    ("the base resource utilization … can be empirically measured for each
//!    degree").
//!
//! Four percentage values in the scanned table are obvious OCR glitches
//! (logic 12% for N=7, DSP 1% for N=9, logic 10% for N=13, logic 171% for
//! N=15); they are restored to the physically consistent values 72%, 21%,
//! 70% and 71% and the correction is documented here and in `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Polynomial degree `N`.
    pub degree: usize,
    /// Kernel clock after synthesis, MHz.
    pub fmax_mhz: f64,
    /// Logic (ALM) utilisation fraction of the device.
    pub logic_fraction: f64,
    /// Absolute number of registers used.
    pub registers: u64,
    /// BRAM utilisation fraction.
    pub bram_fraction: f64,
    /// DSP utilisation fraction.
    pub dsp_fraction: f64,
    /// Measured board power in watts.
    pub power_watts: f64,
    /// Measured performance in GFLOP/s (4096 elements).
    pub gflops: f64,
    /// Measured power efficiency in GFLOP/s/W.
    pub gflops_per_watt: f64,
    /// Measured throughput in DOFs per cycle.
    pub dofs_per_cycle: f64,
    /// Model error reported by the paper (percent).
    pub model_error_percent: f64,
}

/// The eight synthesised accelerators of Table I.
#[must_use]
pub fn measured_table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            degree: 1,
            fmax_mhz: 391.0,
            logic_fraction: 0.31,
            registers: 539_409,
            bram_fraction: 0.04,
            dsp_fraction: 0.06,
            power_watts: 81.05,
            gflops: 22.1,
            gflops_per_watt: 0.27,
            dofs_per_cycle: 1.45,
            model_error_percent: 27.61,
        },
        Table1Row {
            degree: 3,
            fmax_mhz: 292.0,
            logic_fraction: 0.50,
            registers: 1_031_880,
            bram_fraction: 0.09,
            dsp_fraction: 0.14,
            power_watts: 84.38,
            gflops: 62.2,
            gflops_per_watt: 0.78,
            dofs_per_cycle: 3.28,
            model_error_percent: 17.99,
        },
        Table1Row {
            degree: 5,
            fmax_mhz: 243.0,
            logic_fraction: 0.46,
            registers: 968_793,
            bram_fraction: 0.10,
            dsp_fraction: 0.05,
            power_watts: 77.52,
            gflops: 31.4,
            gflops_per_watt: 0.41,
            dofs_per_cycle: 1.48,
            model_error_percent: 25.89,
        },
        Table1Row {
            degree: 7,
            fmax_mhz: 274.0,
            logic_fraction: 0.72,
            registers: 1_464_437,
            bram_fraction: 0.18,
            dsp_fraction: 0.24,
            power_watts: 90.38,
            gflops: 109.0,
            gflops_per_watt: 1.21,
            dofs_per_cycle: 3.58,
            model_error_percent: 10.05,
        },
        Table1Row {
            degree: 9,
            fmax_mhz: 233.0,
            logic_fraction: 0.59,
            registers: 1_350_551,
            bram_fraction: 0.27,
            dsp_fraction: 0.21,
            power_watts: 84.31,
            gflops: 62.4,
            gflops_per_watt: 0.74,
            dofs_per_cycle: 1.98,
            model_error_percent: 0.82,
        },
        Table1Row {
            degree: 11,
            fmax_mhz: 216.0,
            logic_fraction: 0.69,
            registers: 1_511_613,
            bram_fraction: 0.34,
            dsp_fraction: 0.17,
            power_watts: 90.65,
            gflops: 136.4,
            gflops_per_watt: 1.50,
            dofs_per_cycle: 3.96,
            model_error_percent: 1.02,
        },
        Table1Row {
            degree: 13,
            fmax_mhz: 170.0,
            logic_fraction: 0.70,
            registers: 1_644_011,
            bram_fraction: 0.53,
            dsp_fraction: 0.10,
            power_watts: 83.37,
            gflops: 62.14,
            gflops_per_watt: 0.74,
            dofs_per_cycle: 1.99,
            model_error_percent: 0.31,
        },
        Table1Row {
            degree: 15,
            fmax_mhz: 266.0,
            logic_fraction: 0.71,
            registers: 1_705_581,
            bram_fraction: 0.39,
            dsp_fraction: 0.22,
            power_watts: 99.65,
            gflops: 211.3,
            gflops_per_watt: 2.12,
            dofs_per_cycle: 3.83,
            model_error_percent: 4.30,
        },
    ]
}

/// Look up the measured row for a degree, if the paper synthesised it.
#[must_use]
pub fn measured_row(degree: usize) -> Option<Table1Row> {
    measured_table1().into_iter().find(|r| r.degree == degree)
}

/// Measured kernel clock (MHz) of the GX2800 bitstream for `degree`, when the
/// paper synthesised that degree.  Used by the FPGA simulator to pin the
/// clock of the "as-built" designs instead of relying on the noisy analytic
/// fmax estimate.
#[must_use]
pub fn measured_fmax_mhz(degree: usize) -> Option<f64> {
    measured_row(degree).map(|r| r.fmax_mhz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::flops_per_dof;

    #[test]
    fn table_has_the_eight_degrees() {
        let t = measured_table1();
        assert_eq!(t.len(), 8);
        let degrees: Vec<usize> = t.iter().map(|r| r.degree).collect();
        assert_eq!(degrees, vec![1, 3, 5, 7, 9, 11, 13, 15]);
    }

    #[test]
    fn rows_are_internally_consistent() {
        // GFLOP/s = flops_per_dof * DOFs/cycle * fmax must hold within a few
        // percent for every measured row (it is how the paper computes the
        // column), and GFLOP/s/W = GFLOP/s / power.
        for row in measured_table1() {
            let implied = flops_per_dof(row.degree) * row.dofs_per_cycle * row.fmax_mhz * 1e6 / 1e9;
            let rel = (implied - row.gflops).abs() / row.gflops;
            assert!(
                rel < 0.03,
                "degree {}: implied {implied:.1} vs reported {}",
                row.degree,
                row.gflops
            );
            let eff = row.gflops / row.power_watts;
            assert!((eff - row.gflops_per_watt).abs() < 0.05);
        }
    }

    #[test]
    fn peak_degrees_reach_four_dofs_per_cycle() {
        // The paper's model gives T_max = 4 on this board; degrees divisible
        // by four (N+1 = 4, 8, 12, 16) get close, the others sit near 2.
        for row in measured_table1() {
            if (row.degree + 1) % 4 == 0 {
                assert!(row.dofs_per_cycle > 3.2, "degree {}", row.degree);
            } else {
                assert!(row.dofs_per_cycle < 2.1, "degree {}", row.degree);
            }
        }
    }

    #[test]
    fn lookup_by_degree() {
        assert!(measured_row(7).is_some());
        assert!(measured_row(8).is_none());
        assert_eq!(measured_fmax_mhz(15), Some(266.0));
    }
}
