//! Seeded open-loop workload generators for live-traffic serving.
//!
//! An open-loop load source decides arrival times without waiting for the
//! server: millions of independent users do not pause because the pool is
//! busy.  Three canonical shapes are provided, each a time-varying rate
//! `λ(t)` sampled into concrete arrival timestamps by Lewis–Shedler
//! thinning against the peak rate.  The generator is fully deterministic
//! under a seed, so every `BENCH_live.json` row is reproducible bit for
//! bit and the live smoke test in CI replays the exact committed trace.

/// A time-varying offered-load shape, in requests per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Memoryless arrivals at a constant rate: the classical open-loop
    /// baseline.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_rps: f64,
    },
    /// A square-wave burst pattern: `base_rps` most of the time, spiking
    /// to `burst_rps` for the first `burst_fraction` of every period.
    Bursty {
        /// Off-burst arrival rate, requests per second.
        base_rps: f64,
        /// In-burst arrival rate, requests per second.
        burst_rps: f64,
        /// Length of one base+burst cycle, seconds.
        period_seconds: f64,
        /// Fraction of each period spent bursting, in (0, 1).
        burst_fraction: f64,
    },
    /// A sinusoidal day/night cycle around a mean rate.
    Diurnal {
        /// Mean arrival rate, requests per second.
        mean_rps: f64,
        /// Relative swing in [0, 1]: the rate oscillates between
        /// `mean × (1 − amplitude)` and `mean × (1 + amplitude)`.
        amplitude: f64,
        /// Length of one full cycle, seconds.
        period_seconds: f64,
    },
}

impl WorkloadKind {
    /// The instantaneous arrival rate `λ(t)` in requests per second.
    #[must_use]
    pub fn rate_at(&self, t_seconds: f64) -> f64 {
        match *self {
            Self::Poisson { rate_rps } => rate_rps,
            Self::Bursty {
                base_rps,
                burst_rps,
                period_seconds,
                burst_fraction,
            } => {
                let phase = (t_seconds / period_seconds).fract();
                if phase < burst_fraction {
                    burst_rps
                } else {
                    base_rps
                }
            }
            Self::Diurnal {
                mean_rps,
                amplitude,
                period_seconds,
            } => {
                let phase = 2.0 * std::f64::consts::PI * t_seconds / period_seconds;
                mean_rps * (1.0 + amplitude * phase.sin())
            }
        }
    }

    /// The peak of `λ(t)` over all `t`, used as the thinning envelope.
    #[must_use]
    pub fn peak_rate_rps(&self) -> f64 {
        match *self {
            Self::Poisson { rate_rps } => rate_rps,
            Self::Bursty {
                base_rps,
                burst_rps,
                ..
            } => base_rps.max(burst_rps),
            Self::Diurnal {
                mean_rps,
                amplitude,
                ..
            } => mean_rps * (1.0 + amplitude),
        }
    }

    /// The time-average of `λ(t)` over one period (the offered load a
    /// sweep reports).
    #[must_use]
    pub fn mean_rate_rps(&self) -> f64 {
        match *self {
            Self::Poisson { rate_rps } => rate_rps,
            Self::Bursty {
                base_rps,
                burst_rps,
                burst_fraction,
                ..
            } => burst_rps * burst_fraction + base_rps * (1.0 - burst_fraction),
            Self::Diurnal { mean_rps, .. } => mean_rps,
        }
    }

    /// Panic with a descriptive message if the shape parameters are not
    /// a valid rate function (non-finite, negative, or a degenerate
    /// period/fraction).
    fn validate(&self) {
        let ok = |x: f64| x.is_finite() && x >= 0.0;
        match *self {
            Self::Poisson { rate_rps } => {
                assert!(ok(rate_rps), "Poisson rate must be finite and >= 0");
            }
            Self::Bursty {
                base_rps,
                burst_rps,
                period_seconds,
                burst_fraction,
            } => {
                assert!(
                    ok(base_rps) && ok(burst_rps),
                    "burst rates must be finite and >= 0"
                );
                assert!(
                    period_seconds.is_finite() && period_seconds > 0.0,
                    "burst period must be positive"
                );
                assert!(
                    (0.0..=1.0).contains(&burst_fraction),
                    "burst fraction must lie in [0, 1]"
                );
            }
            Self::Diurnal {
                mean_rps,
                amplitude,
                period_seconds,
            } => {
                assert!(ok(mean_rps), "diurnal mean rate must be finite and >= 0");
                assert!(
                    (0.0..=1.0).contains(&amplitude),
                    "diurnal amplitude must lie in [0, 1]"
                );
                assert!(
                    period_seconds.is_finite() && period_seconds > 0.0,
                    "diurnal period must be positive"
                );
            }
        }
    }
}

/// Sample concrete arrival timestamps for `kind` over `[0, horizon_seconds)`.
///
/// Lewis–Shedler thinning: draw a homogeneous Poisson process at the peak
/// rate, keep each candidate arrival at time `t` with probability
/// `λ(t) / λ_peak`.  The returned timestamps are strictly increasing and
/// fully determined by `(kind, seed, horizon_seconds)`.
#[must_use]
pub fn arrival_times(kind: WorkloadKind, seed: u64, horizon_seconds: f64) -> Vec<f64> {
    kind.validate();
    assert!(
        horizon_seconds.is_finite() && horizon_seconds >= 0.0,
        "horizon must be finite and >= 0"
    );
    let peak = kind.peak_rate_rps();
    if peak <= 0.0 {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    let mut t = 0.0_f64;
    loop {
        // Exponential inter-arrival gap at the envelope rate; next_unit is
        // in (0, 1], so ln() is finite and the gap strictly positive.
        t += -rng.next_unit().ln() / peak;
        if t >= horizon_seconds {
            break;
        }
        if rng.next_unit() <= kind.rate_at(t) / peak {
            out.push(t);
        }
    }
    out
}

/// The splitmix64 generator: tiny, seedable, and plenty for load traces.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform double in (0, 1]: 53 mantissa bits, shifted off zero so
    /// `ln()` of the result is always finite.
    fn next_unit(&mut self) -> f64 {
        (((self.next_u64() >> 11) as f64) + 1.0) / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_under_a_seed() {
        let kind = WorkloadKind::Poisson { rate_rps: 5.0 };
        let a = arrival_times(kind, 42, 100.0);
        let b = arrival_times(kind, 42, 100.0);
        assert_eq!(a, b, "same seed must replay the same trace");
        let c = arrival_times(kind, 43, 100.0);
        assert_ne!(a, c, "a different seed must give a different trace");
    }

    #[test]
    fn poisson_count_is_near_the_offered_load() {
        let kind = WorkloadKind::Poisson { rate_rps: 8.0 };
        let arrivals = arrival_times(kind, 7, 500.0);
        let expected = 8.0 * 500.0;
        let n = arrivals.len() as f64;
        assert!(
            (n - expected).abs() < 4.0 * expected.sqrt(),
            "count {n} too far from expectation {expected}"
        );
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_inside_the_horizon() {
        for kind in [
            WorkloadKind::Poisson { rate_rps: 20.0 },
            WorkloadKind::Bursty {
                base_rps: 2.0,
                burst_rps: 40.0,
                period_seconds: 10.0,
                burst_fraction: 0.2,
            },
            WorkloadKind::Diurnal {
                mean_rps: 10.0,
                amplitude: 0.8,
                period_seconds: 30.0,
            },
        ] {
            let arrivals = arrival_times(kind, 11, 60.0);
            assert!(!arrivals.is_empty());
            for pair in arrivals.windows(2) {
                assert!(pair[0] < pair[1], "timestamps must strictly increase");
            }
            assert!(*arrivals.last().unwrap() < 60.0);
            assert!(arrivals[0] >= 0.0);
        }
    }

    #[test]
    fn bursts_concentrate_arrivals_in_the_burst_window() {
        let kind = WorkloadKind::Bursty {
            base_rps: 1.0,
            burst_rps: 50.0,
            period_seconds: 10.0,
            burst_fraction: 0.1,
        };
        let arrivals = arrival_times(kind, 3, 200.0);
        let in_burst = arrivals
            .iter()
            .filter(|&&t| (t / 10.0).fract() < 0.1)
            .count();
        // 10% of the time carries 50/(50·0.1 + 1·0.9) ≈ 85% of the load.
        assert!(
            in_burst * 2 > arrivals.len(),
            "bursts carry the majority of arrivals: {in_burst}/{}",
            arrivals.len()
        );
    }

    #[test]
    fn diurnal_rate_swings_around_the_mean() {
        let kind = WorkloadKind::Diurnal {
            mean_rps: 10.0,
            amplitude: 0.5,
            period_seconds: 40.0,
        };
        assert!((kind.rate_at(10.0) - 15.0).abs() < 1e-9, "peak at T/4");
        assert!((kind.rate_at(30.0) - 5.0).abs() < 1e-9, "trough at 3T/4");
        assert!((kind.peak_rate_rps() - 15.0).abs() < 1e-12);
        assert!((kind.mean_rate_rps() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mean_rate_matches_the_sampled_trace() {
        let kind = WorkloadKind::Bursty {
            base_rps: 2.0,
            burst_rps: 20.0,
            period_seconds: 5.0,
            burst_fraction: 0.25,
        };
        let horizon = 400.0;
        let arrivals = arrival_times(kind, 19, horizon);
        let sampled = arrivals.len() as f64 / horizon;
        let mean = kind.mean_rate_rps();
        assert!((mean - 6.5).abs() < 1e-12);
        assert!(
            (sampled - mean).abs() < 4.0 * (mean / horizon).sqrt(),
            "sampled rate {sampled} too far from offered {mean}"
        );
    }

    #[test]
    fn zero_rate_or_zero_horizon_yields_no_arrivals() {
        assert!(arrival_times(WorkloadKind::Poisson { rate_rps: 0.0 }, 1, 100.0).is_empty());
        assert!(arrival_times(WorkloadKind::Poisson { rate_rps: 5.0 }, 1, 0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "burst fraction")]
    fn invalid_burst_fraction_is_rejected() {
        let _ = arrival_times(
            WorkloadKind::Bursty {
                base_rps: 1.0,
                burst_rps: 2.0,
                period_seconds: 10.0,
                burst_fraction: 1.5,
            },
            0,
            10.0,
        );
    }
}
