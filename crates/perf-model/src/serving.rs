//! Analytic serving-cost models: the three-stage offload pipeline and the
//! host roofline cost the scheduler's model-optimal policy runs on.
//!
//! A batched accelerator session moves data in three stages — H2D upload,
//! kernel compute, D2H download — over a full-duplex host link.  With double
//! buffering the stages overlap across right-hand sides (upload `i+1` while
//! solving `i` while downloading `i-1`), and the session makespan of `B`
//! identical requests collapses to the classical pipeline closed form
//!
//! ```text
//! makespan = shared + u + c + d + (B - 1) · max(u, c, d)
//! ```
//!
//! where `shared` is the one-off geometry/matrix upload and `u`/`c`/`d` are
//! the per-request stage times.  [`PipelineCost`] carries those four numbers
//! and answers both the serial (no-overlap) and the overlapped session time;
//! `sem-serve`'s event-level `PipelineTimeline` reproduces the same makespan
//! from an explicit schedule and `sem-accel`'s `SolveReport` uses the closed
//! form for its pipelined-vs-serial transfer accounting.
//!
//! [`DeadlineModel`] prices predicted completion times for admission
//! control: a request whose model-predicted completion overshoots the
//! deadline gets an [`AdmissionVerdict::Reject`] carrying the overshoot, and
//! admitting only under-deadline requests bounds the predicted p99 (see
//! [`nearest_rank_percentile`]) by the target.
//!
//! [`HostCostModel`] is the other half of policy costing: a roofline-derated
//! estimate of what one operator application costs on a *measured* (CPU)
//! backend, for which no simulator model exists.  It only has to rank hosts
//! against accelerators, not predict wall-clocks exactly.

use crate::cost::{dofs_per_element, flops_per_dof, operational_intensity};
use crate::roofline::roofline_gflops;
use serde::{Deserialize, Serialize};

/// Stage costs of serving one batch of identical requests through the
/// three-stage offload pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineCost {
    /// One-off upload of the data every request shares (geometric factors,
    /// derivative matrices), in seconds.
    pub shared_upload_seconds: f64,
    /// Per-request operand upload, in seconds.
    pub upload_seconds: f64,
    /// Per-request compute (the whole solve's kernel time), in seconds.
    pub compute_seconds: f64,
    /// Per-request result download, in seconds.
    pub download_seconds: f64,
}

impl PipelineCost {
    /// The longest of the three per-request stages — the pipeline's
    /// steady-state bottleneck.
    #[must_use]
    pub fn bottleneck_seconds(&self) -> f64 {
        self.upload_seconds
            .max(self.compute_seconds)
            .max(self.download_seconds)
    }

    /// Session seconds when every stage runs serially (today's blocking
    /// accounting): `shared + B (u + c + d)`.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn serial_session_seconds(&self, batch: usize) -> f64 {
        assert!(batch > 0, "need at least one request");
        self.shared_upload_seconds
            + batch as f64 * (self.upload_seconds + self.compute_seconds + self.download_seconds)
    }

    /// Session makespan with double-buffered stage overlap:
    /// `shared + u + c + d + (B - 1) max(u, c, d)`.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn overlapped_session_seconds(&self, batch: usize) -> f64 {
        assert!(batch > 0, "need at least one request");
        self.shared_upload_seconds
            + self.upload_seconds
            + self.compute_seconds
            + self.download_seconds
            + (batch - 1) as f64 * self.bottleneck_seconds()
    }

    /// Session makespan under the given overlap setting.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn session_seconds(&self, batch: usize, overlap: bool) -> f64 {
        if overlap {
            self.overlapped_session_seconds(batch)
        } else {
            self.serial_session_seconds(batch)
        }
    }

    /// Transfer seconds left exposed (not hidden behind compute) by the
    /// overlapped schedule: `makespan − B·c`.  Never negative, and never more
    /// than the serial transfer total.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn exposed_transfer_seconds(&self, batch: usize) -> f64 {
        (self.overlapped_session_seconds(batch) - batch as f64 * self.compute_seconds).max(0.0)
    }

    /// Seconds the overlap hides relative to the serial schedule.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn overlap_win_seconds(&self, batch: usize) -> f64 {
        (self.serial_session_seconds(batch) - self.overlapped_session_seconds(batch)).max(0.0)
    }
}

/// The verdict of pricing one predicted completion time against a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionVerdict {
    /// The model predicts the request completes within the deadline.
    Admit,
    /// The model prices the request over the deadline.
    Reject {
        /// Seconds by which the predicted completion overshoots the deadline.
        over_seconds: f64,
    },
}

impl AdmissionVerdict {
    /// Whether the verdict admits the request.
    #[must_use]
    pub fn is_admit(&self) -> bool {
        matches!(self, AdmissionVerdict::Admit)
    }
}

/// Deadline-based admission pricing over model-predicted completion times.
///
/// Admission control asks one question per request: *if this request joins
/// the predicted backlog, does the model still complete it by the deadline?*
/// Admitting only requests the model prices under the deadline bounds every
/// predicted completion — and therefore the predicted p99 — by the target,
/// which is the serving-level guarantee `sem-serve`'s `AdmissionPolicy`
/// enforces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadlineModel {
    /// The completion-time target in seconds (from submission, which is
    /// time zero for every request in a batch-arrival serve).
    pub deadline_seconds: f64,
}

impl DeadlineModel {
    /// A model with the given completion-time target.
    #[must_use]
    pub fn new(deadline_seconds: f64) -> Self {
        Self { deadline_seconds }
    }

    /// Price one predicted completion time against the deadline.
    #[must_use]
    pub fn verdict(&self, predicted_completion_seconds: f64) -> AdmissionVerdict {
        if predicted_completion_seconds <= self.deadline_seconds {
            AdmissionVerdict::Admit
        } else {
            AdmissionVerdict::Reject {
                over_seconds: predicted_completion_seconds - self.deadline_seconds,
            }
        }
    }

    /// Whether the model admits a request predicted to complete at
    /// `predicted_completion_seconds`.
    #[must_use]
    pub fn admits(&self, predicted_completion_seconds: f64) -> bool {
        self.verdict(predicted_completion_seconds).is_admit()
    }
}

/// Nearest-rank percentile of a set of (latency or completion) seconds:
/// the smallest value such that at least `p` percent of the samples are at
/// or below it.  `p` is clamped to (0, 100].
///
/// Returns `None` for an empty set: an empty window carries no latency
/// evidence, and reporting `0.0` would hand an SLO controller a perfect
/// tail latency fabricated from no data (e.g. an all-rejected window
/// reading as "p99 = 0, scale down").
#[must_use]
pub fn nearest_rank_percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Roofline-derated cost model for a natively executed (measured) backend,
/// used by scheduling policies that must price hosts before running on them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostCostModel {
    /// Peak double-precision performance in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Fraction of the roofline bound the kernel actually achieves.  The
    /// paper's CPU baselines land around 5–10% of peak on this kernel, so
    /// the default is deliberately pessimistic.
    pub achieved_fraction: f64,
}

impl Default for HostCostModel {
    fn default() -> Self {
        Self::generic_server()
    }
}

impl HostCostModel {
    /// A deliberately conservative contemporary server CPU: the point is to
    /// rank the host against accelerator models, not to predict wall-clock.
    #[must_use]
    pub fn generic_server() -> Self {
        Self {
            peak_gflops: 500.0,
            bandwidth_gbs: 25.0,
            achieved_fraction: 0.1,
        }
    }

    /// Build a model from an `arch-db`-style (peak, bandwidth) pair at the
    /// default achieved fraction.
    #[must_use]
    pub fn from_peaks(peak_gflops: f64, bandwidth_gbs: f64) -> Self {
        Self {
            peak_gflops,
            bandwidth_gbs,
            ..Self::generic_server()
        }
    }

    /// GFLOP/s the model predicts this host sustains on the SEM kernel at
    /// polynomial degree `degree`.
    #[must_use]
    pub fn sustained_gflops(&self, degree: usize) -> f64 {
        roofline_gflops(
            self.peak_gflops,
            self.bandwidth_gbs,
            operational_intensity(degree),
        ) * self.achieved_fraction
    }

    /// Predicted seconds of one operator application over `num_elements`
    /// degree-`degree` elements.
    #[must_use]
    pub fn seconds_per_application(&self, degree: usize, num_elements: usize) -> f64 {
        let flops = flops_per_dof(degree) * dofs_per_element(degree) as f64 * num_elements as f64;
        flops / (self.sustained_gflops(degree).max(1e-9) * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> PipelineCost {
        PipelineCost {
            shared_upload_seconds: 0.5,
            upload_seconds: 0.1,
            compute_seconds: 1.0,
            download_seconds: 0.2,
        }
    }

    #[test]
    fn serial_and_overlapped_closed_forms() {
        let c = cost();
        assert!((c.serial_session_seconds(4) - (0.5 + 4.0 * 1.3)).abs() < 1e-12);
        // Compute dominates: shared + u + c + d + 3c.
        assert!((c.overlapped_session_seconds(4) - (0.5 + 1.3 + 3.0)).abs() < 1e-12);
        assert_eq!(c.bottleneck_seconds(), 1.0);
    }

    #[test]
    fn batch_of_one_cannot_overlap_anything() {
        let c = cost();
        assert_eq!(c.serial_session_seconds(1), c.overlapped_session_seconds(1));
        assert_eq!(c.overlap_win_seconds(1), 0.0);
    }

    #[test]
    fn overlap_invariants_hold_across_batches_and_shapes() {
        let shapes = [
            cost(),
            // Transfer-dominated pipeline.
            PipelineCost {
                shared_upload_seconds: 0.0,
                upload_seconds: 2.0,
                compute_seconds: 0.5,
                download_seconds: 1.0,
            },
        ];
        for c in shapes {
            for batch in [1, 2, 16, 64] {
                let serial = c.serial_session_seconds(batch);
                let overlapped = c.overlapped_session_seconds(batch);
                let b = batch as f64;
                // Makespan at least the busiest single channel, at most serial.
                let channel_max = (c.shared_upload_seconds + b * c.upload_seconds)
                    .max(b * c.compute_seconds)
                    .max(b * c.download_seconds);
                assert!(overlapped >= channel_max - 1e-12);
                assert!(overlapped <= serial + 1e-12);
                assert!(c.exposed_transfer_seconds(batch) >= 0.0);
                assert!(
                    c.session_seconds(batch, true) == overlapped
                        && c.session_seconds(batch, false) == serial
                );
            }
        }
    }

    #[test]
    fn exposed_transfer_shrinks_per_request_as_the_batch_grows() {
        let c = cost();
        let per_rhs_16 = c.exposed_transfer_seconds(16) / 16.0;
        let per_rhs_1 = c.exposed_transfer_seconds(1);
        assert!(per_rhs_16 < per_rhs_1);
        // Compute-dominated: everything but the pipeline ramp is hidden.
        assert!(
            (c.exposed_transfer_seconds(16)
                - (c.shared_upload_seconds + c.upload_seconds + c.download_seconds))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn deadline_model_prices_exactly_at_the_boundary() {
        let model = DeadlineModel::new(2.0);
        assert!(model.admits(0.0));
        assert!(model.admits(2.0), "the deadline itself is admissible");
        assert_eq!(model.verdict(1.5), AdmissionVerdict::Admit);
        match model.verdict(3.25) {
            AdmissionVerdict::Reject { over_seconds } => {
                assert!((over_seconds - 1.25).abs() < 1e-15);
            }
            AdmissionVerdict::Admit => panic!("3.25 s must be priced over a 2 s deadline"),
        }
    }

    #[test]
    fn admitting_under_deadline_completions_bounds_the_predicted_p99() {
        let model = DeadlineModel::new(1.0);
        let predicted = [0.2, 0.5, 0.9, 1.0, 1.4, 2.0];
        let admitted: Vec<f64> = predicted
            .iter()
            .copied()
            .filter(|&s| model.admits(s))
            .collect();
        assert_eq!(admitted.len(), 4);
        assert!(nearest_rank_percentile(&admitted, 99.0).unwrap() <= model.deadline_seconds);
        // The unfiltered stream overshoots.
        assert!(nearest_rank_percentile(&predicted, 99.0).unwrap() > model.deadline_seconds);
    }

    #[test]
    fn nearest_rank_percentile_matches_the_definition() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(nearest_rank_percentile(&samples, 50.0), Some(3.0));
        assert_eq!(nearest_rank_percentile(&samples, 100.0), Some(5.0));
        assert_eq!(nearest_rank_percentile(&samples, 1.0), Some(1.0));
        assert_eq!(nearest_rank_percentile(&[7.5], 99.0), Some(7.5));
    }

    #[test]
    fn empty_windows_carry_no_percentile_evidence() {
        // Regression: this used to return 0.0 — a fabricated "perfect tail"
        // that an all-rejected serving window would feed to the autoscaler
        // as a scale-down signal.
        assert_eq!(nearest_rank_percentile(&[], 99.0), None);
        assert_eq!(nearest_rank_percentile(&[], 50.0), None);
    }

    #[test]
    fn host_model_prices_the_kernel_sanely() {
        let host = HostCostModel::generic_server();
        // Memory bound at every degree on 25 GB/s.
        assert!(host.sustained_gflops(7) < host.peak_gflops * host.achieved_fraction);
        let s = host.seconds_per_application(7, 64);
        assert!(s > 1e-6 && s < 1.0, "seconds {s}");
        // More elements cost proportionally more.
        let s2 = host.seconds_per_application(7, 128);
        assert!((s2 / s - 2.0).abs() < 1e-9);
        // A faster host is cheaper.
        let fast = HostCostModel::from_peaks(2_000.0, 200.0);
        assert!(fast.seconds_per_application(7, 64) < s);
    }
}
