//! FPGA device descriptions.
//!
//! Includes the evaluated Bittware 520N (Intel Stratix 10 GX2800) and the
//! three devices projected in Section V-D: the Intel Agilex 027 coupled with
//! ThunderX2-class memory, the Stratix 10M ASIC-prototyping device coupled
//! with ~306 GB/s memory, and the hypothetical "ideal" FPGA that would rival
//! an NVIDIA A100 on this kernel.

use crate::resources::{FpuCost, ResourceVector};
use serde::{Deserialize, Serialize};

/// An FPGA board: reconfigurable fabric plus its external memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Human-readable device name.
    pub name: String,
    /// Total fabric resources.
    pub resources: ResourceVector,
    /// Per-FPU resource costs on this fabric.
    pub fpu: FpuCost,
    /// External memory bandwidth in GB/s.
    pub memory_bandwidth_gbs: f64,
    /// Number of external memory banks.
    pub memory_banks: usize,
    /// Memory-controller clock in MHz (the paper's controllers run at
    /// 300 MHz delivering 512 bit per cycle per bank).
    pub memory_clock_mhz: f64,
    /// Maximum kernel clock the fabric can reach in MHz.
    pub max_kernel_clock_mhz: f64,
    /// Nominal board power budget (TDP) in watts.
    pub tdp_watts: f64,
    /// Year of release (0 for hypothetical devices).
    pub release_year: u32,
}

impl FpgaDevice {
    /// The evaluated device: Bittware 520N with a Stratix 10 GX2800 and four
    /// banks of DDR4-2400 (76.8 GB/s aggregate).
    #[must_use]
    pub fn stratix10_gx2800() -> Self {
        Self {
            name: "Stratix 10 GX2800 (Bittware 520N)".to_string(),
            resources: ResourceVector::new(933_120.0, 5_760.0, 11_721.0),
            fpu: FpuCost::stratix10_double(),
            memory_bandwidth_gbs: 76.8,
            memory_banks: 4,
            memory_clock_mhz: 300.0,
            max_kernel_clock_mhz: 400.0,
            tdp_watts: 225.0,
            release_year: 2016,
        }
    }

    /// Projection device 1: Intel Agilex 027 coupled with a 153.6 GB/s
    /// external memory (ThunderX2-class, Section V-D).
    #[must_use]
    pub fn agilex_027() -> Self {
        Self {
            name: "Intel Agilex 027 (projected)".to_string(),
            resources: ResourceVector::new(912_800.0, 8_528.0, 13_272.0),
            fpu: FpuCost::stratix10_double(),
            memory_bandwidth_gbs: 153.6,
            memory_banks: 8,
            memory_clock_mhz: 300.0,
            max_kernel_clock_mhz: 500.0,
            tdp_watts: 225.0,
            release_year: 2021,
        }
    }

    /// Projection device 2: Stratix 10M — an ASIC-prototyping part with 3.6×
    /// the logic of the GX2800 but 40% fewer DSPs — coupled with a 306 GB/s
    /// memory system (Section V-D).
    #[must_use]
    pub fn stratix10m() -> Self {
        Self {
            name: "Stratix 10M (projected)".to_string(),
            resources: ResourceVector::new(3_359_232.0, 5_700.0, 12_950.0),
            fpu: FpuCost::stratix10_double(),
            memory_bandwidth_gbs: 306.0,
            memory_banks: 8,
            memory_clock_mhz: 300.0,
            max_kernel_clock_mhz: 400.0,
            tdp_watts: 250.0,
            release_year: 2020,
        }
    }

    /// Projection device 3: the hypothetical "ideal" CFD FPGA of Section V-D —
    /// 6.2 M ALMs, 20 k DSPs, ~12.9 k BRAMs and a 1.2 TB/s memory system —
    /// which the paper's model predicts would outperform an NVIDIA A100 on
    /// this kernel.
    #[must_use]
    pub fn hypothetical_ideal() -> Self {
        Self {
            name: "Hypothetical ideal CFD FPGA".to_string(),
            resources: ResourceVector::new(6_200_000.0, 20_000.0, 12_900.0),
            fpu: FpuCost::stratix10_double(),
            memory_bandwidth_gbs: 1_200.0,
            memory_banks: 16,
            memory_clock_mhz: 300.0,
            max_kernel_clock_mhz: 400.0,
            tdp_watts: 300.0,
            release_year: 0,
        }
    }

    /// Stratix 10M variant with 8.7 k DSPs and 600 GB/s memory — the "what if
    /// Intel built it" device the paper notes would rival a P100/V100.
    #[must_use]
    pub fn stratix10m_plus() -> Self {
        let mut d = Self::stratix10m();
        d.name = "Stratix 10M + 8.7k DSPs + 600 GB/s (projected)".to_string();
        d.resources.dsps = 8_700.0;
        d.memory_bandwidth_gbs = 600.0;
        d
    }

    /// All catalogue devices in presentation order.
    #[must_use]
    pub fn catalogue() -> Vec<Self> {
        vec![
            Self::stratix10_gx2800(),
            Self::agilex_027(),
            Self::stratix10m(),
            Self::stratix10m_plus(),
            Self::hypothetical_ideal(),
        ]
    }

    /// Bytes per cycle one memory bank can deliver (512 bit = 64 B for the
    /// DDR4 controllers of the evaluated board).
    #[must_use]
    pub fn bank_bytes_per_cycle(&self) -> f64 {
        let total_bytes_per_cycle = self.memory_bandwidth_gbs * 1e9 / (self.memory_clock_mhz * 1e6);
        total_bytes_per_cycle / self.memory_banks as f64
    }

    /// Peak external bandwidth in bytes per second.
    #[must_use]
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.memory_bandwidth_gbs * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gx2800_matches_table2_row() {
        let d = FpgaDevice::stratix10_gx2800();
        assert_eq!(d.memory_banks, 4);
        assert!((d.memory_bandwidth_gbs - 76.8).abs() < 1e-12);
        assert_eq!(d.release_year, 2016);
        // 76.8 GB/s over 4 banks at 300 MHz is 64 B per bank per cycle,
        // i.e. the 512-bit controllers of Section V-B.
        assert!((d.bank_bytes_per_cycle() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn projection_devices_scale_as_described() {
        let gx = FpgaDevice::stratix10_gx2800();
        let s10m = FpgaDevice::stratix10m();
        assert!((s10m.resources.alms / gx.resources.alms - 3.6).abs() < 0.01);
        assert!(s10m.resources.dsps < gx.resources.dsps);
        let ideal = FpgaDevice::hypothetical_ideal();
        assert!(ideal.resources.alms / gx.resources.alms > 6.0);
        assert!((ideal.resources.dsps / gx.resources.dsps - 3.47).abs() < 0.1);
        assert!(ideal.memory_bandwidth_gbs < 1_555.0, "less than the A100");
    }

    #[test]
    fn catalogue_contains_all_devices() {
        let names: Vec<String> = FpgaDevice::catalogue()
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names.len(), 5);
        assert!(names.iter().any(|n| n.contains("GX2800")));
        assert!(names.iter().any(|n| n.contains("Agilex")));
        assert!(names
            .iter()
            .any(|n| n.contains("ideal") || n.contains("Ideal")));
    }
}
