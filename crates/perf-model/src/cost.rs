//! Per-DOF cost, traffic and operational intensity (Section IV).
//!
//! These formulas are intentionally duplicated from `sem-kernel::ops` so the
//! model crate stays dependency-free; a workspace-level integration test
//! asserts the two stay identical.

use serde::{Deserialize, Serialize};

/// Bytes per double-precision word.
pub const DOUBLE_BYTES: f64 = 8.0;

/// Floating-point cost per degree of freedom, `C(N) = (adds, mults)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Additions per DOF: `6(N+1) + 6`.
    pub adds: usize,
    /// Multiplications per DOF: `6(N+1) + 9`.
    pub mults: usize,
}

impl KernelCost {
    /// Evaluate `C(N)`.
    #[must_use]
    pub fn new(degree: usize) -> Self {
        Self {
            adds: 6 * (degree + 1) + 6,
            mults: 6 * (degree + 1) + 9,
        }
    }

    /// Total FLOPs per DOF: `12(N+1) + 15`.
    #[must_use]
    pub fn total(&self) -> usize {
        self.adds + self.mults
    }
}

/// Global-memory accesses per degree of freedom, `Q(N) = (loads, writes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelTraffic {
    /// Loads per DOF (six geometric factors + the operand).
    pub loads: usize,
    /// Writes per DOF (the result).
    pub writes: usize,
}

impl KernelTraffic {
    /// Evaluate `Q(N)` (degree-independent: `(7, 1)`).
    #[must_use]
    pub fn new(_degree: usize) -> Self {
        Self {
            loads: 7,
            writes: 1,
        }
    }

    /// Total words per DOF.
    #[must_use]
    pub fn total_words(&self) -> usize {
        self.loads + self.writes
    }

    /// Total bytes per DOF.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.total_words() as f64 * DOUBLE_BYTES
    }
}

/// Total FLOPs per DOF, `12(N+1) + 15`.
#[inline]
#[must_use]
pub fn flops_per_dof(degree: usize) -> f64 {
    KernelCost::new(degree).total() as f64
}

/// Bytes of compulsory traffic per DOF (64 bytes).
#[inline]
#[must_use]
pub fn bytes_per_dof(degree: usize) -> f64 {
    KernelTraffic::new(degree).total_bytes()
}

/// Operational intensity `I(N) = (12(N+1)+15) / (8 · 8)` in FLOP/byte.
#[inline]
#[must_use]
pub fn operational_intensity(degree: usize) -> f64 {
    flops_per_dof(degree) / bytes_per_dof(degree)
}

/// Degrees of freedom in one 3-D element, `(N+1)^3`.
#[inline]
#[must_use]
pub fn dofs_per_element(degree: usize) -> usize {
    (degree + 1).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms() {
        assert_eq!(KernelCost::new(7).total(), 111);
        assert_eq!(KernelCost::new(11).total(), 159);
        assert_eq!(KernelCost::new(15).total(), 207);
        assert_eq!(KernelTraffic::new(9).total_words(), 8);
        assert!((bytes_per_dof(9) - 64.0).abs() < 1e-12);
        assert_eq!(dofs_per_element(7), 512);
    }

    #[test]
    fn intensity_is_monotone_in_degree() {
        let mut prev = 0.0;
        for n in 1..=16 {
            let i = operational_intensity(n);
            assert!(i > prev);
            prev = i;
        }
    }
}
