//! Sensitivity analysis of the performance model.
//!
//! Section V-D asks which resource an FPGA vendor should invest in for this
//! class of computation (more logic? more DSPs? more bandwidth?).  This
//! module answers that systematically: it sweeps one device parameter at a
//! time and reports where the binding constraint flips and how much
//! performance each increment buys — the ablation study behind the paper's
//! "higher logic-to-DSP ratio" recommendation.

use crate::device::FpgaDevice;
use crate::projection::calibrated_base;
use crate::throughput::{predict, ArbitrationPolicy, ThroughputPrediction};
use serde::{Deserialize, Serialize};

/// Which device parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepParameter {
    /// Multiply the ALM count.
    Logic,
    /// Multiply the DSP count.
    Dsp,
    /// Multiply the external memory bandwidth.
    Bandwidth,
}

/// One point of a sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The multiplier applied to the swept parameter.
    pub factor: f64,
    /// The resulting prediction.
    pub prediction: ThroughputPrediction,
}

/// Result of sweeping one parameter for one degree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivitySweep {
    /// Base device name.
    pub device: String,
    /// Swept parameter.
    pub parameter: SweepParameter,
    /// Polynomial degree.
    pub degree: usize,
    /// The sweep points, in increasing factor order.
    pub points: Vec<SweepPoint>,
}

impl SensitivitySweep {
    /// The smallest factor at which the binding constraint differs from the
    /// constraint at factor 1.0 (i.e. where additional investment stops
    /// paying), if any.
    #[must_use]
    pub fn saturation_factor(&self) -> Option<f64> {
        let baseline = self.points.first()?.prediction.bound;
        self.points
            .iter()
            .find(|p| p.prediction.bound != baseline)
            .map(|p| p.factor)
    }

    /// Performance gain of the largest factor relative to the smallest.
    #[must_use]
    pub fn total_gain(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(first), Some(last)) if first.prediction.gflops > 0.0 => {
                last.prediction.gflops / first.prediction.gflops
            }
            _ => 1.0,
        }
    }
}

fn scaled_device(device: &FpgaDevice, parameter: SweepParameter, factor: f64) -> FpgaDevice {
    let mut d = device.clone();
    match parameter {
        SweepParameter::Logic => d.resources.alms *= factor,
        SweepParameter::Dsp => d.resources.dsps *= factor,
        SweepParameter::Bandwidth => d.memory_bandwidth_gbs *= factor,
    }
    d
}

/// Sweep `parameter` over `factors` for `degree` on `device` at the given
/// clock, using the future-HLS (power-of-two) arbitration policy.
#[must_use]
pub fn sweep(
    device: &FpgaDevice,
    parameter: SweepParameter,
    degree: usize,
    factors: &[f64],
    frequency_mhz: f64,
) -> SensitivitySweep {
    let base = calibrated_base(degree);
    let points = factors
        .iter()
        .map(|&factor| SweepPoint {
            factor,
            prediction: predict(
                &scaled_device(device, parameter, factor),
                degree,
                &base,
                frequency_mhz,
                ArbitrationPolicy::PowerOfTwo,
            ),
        })
        .collect();
    SensitivitySweep {
        device: device.name.clone(),
        parameter,
        degree,
        points,
    }
}

/// The default sweep factors (1x … 16x).
#[must_use]
pub fn default_factors() -> Vec<f64> {
    vec![1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0]
}

/// For a device and degree, rank the three parameters by the performance gain
/// a 4x investment in each would buy — the "what should the vendor build"
/// question of Section V-D.
#[must_use]
pub fn investment_ranking(
    device: &FpgaDevice,
    degree: usize,
    frequency_mhz: f64,
) -> Vec<(SweepParameter, f64)> {
    let factors = [1.0, 4.0];
    let mut gains: Vec<(SweepParameter, f64)> = [
        SweepParameter::Logic,
        SweepParameter::Dsp,
        SweepParameter::Bandwidth,
    ]
    .into_iter()
    .map(|p| {
        let s = sweep(device, p, degree, &factors, frequency_mhz);
        (p, s.total_gain())
    })
    .collect();
    gains.sort_by(|a, b| b.1.total_cmp(&a.1));
    gains
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::PerformanceBound;

    #[test]
    fn bandwidth_is_the_best_investment_on_the_evaluated_board() {
        // The GX2800 design is bandwidth-bound at 300 MHz (T_B = 4 < T_R), so
        // more bandwidth must rank first — consistent with the paper coupling
        // every projected device with a faster memory system.
        let ranking = investment_ranking(&FpgaDevice::stratix10_gx2800(), 7, 300.0);
        assert_eq!(ranking[0].0, SweepParameter::Bandwidth);
        assert!(ranking[0].1 > 1.5);
    }

    #[test]
    fn logic_becomes_the_constraint_once_bandwidth_is_plentiful() {
        // Sweep bandwidth on the GX2800: performance saturates once the
        // bandwidth bound passes the logic bound, and the binding constraint
        // flips from memory to a fabric resource.
        let s = sweep(
            &FpgaDevice::stratix10_gx2800(),
            SweepParameter::Bandwidth,
            11,
            &default_factors(),
            300.0,
        );
        assert_eq!(
            s.points.first().unwrap().prediction.bound,
            PerformanceBound::Bandwidth
        );
        let last = s.points.last().unwrap().prediction;
        assert_ne!(last.bound, PerformanceBound::Bandwidth);
        assert!(s.saturation_factor().is_some());
    }

    #[test]
    fn dsp_investment_alone_buys_nothing_on_a_bandwidth_bound_design() {
        let s = sweep(
            &FpgaDevice::stratix10_gx2800(),
            SweepParameter::Dsp,
            7,
            &default_factors(),
            300.0,
        );
        assert!((s.total_gain() - 1.0).abs() < 1e-9);
        assert!(s.saturation_factor().is_none());
    }

    #[test]
    fn sweeps_are_monotone_in_the_invested_resource() {
        for parameter in [
            SweepParameter::Logic,
            SweepParameter::Dsp,
            SweepParameter::Bandwidth,
        ] {
            let s = sweep(
                &FpgaDevice::stratix10_gx2800(),
                parameter,
                15,
                &default_factors(),
                300.0,
            );
            for pair in s.points.windows(2) {
                assert!(
                    pair[1].prediction.gflops + 1e-9 >= pair[0].prediction.gflops,
                    "{parameter:?}"
                );
            }
        }
    }
}
