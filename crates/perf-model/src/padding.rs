//! Host-side padding analysis (Section III-E and the padding term of
//! Section IV).
//!
//! When `N + 1` is not divisible by the unroll factor the accelerator either
//! suffers BRAM arbitration (halving the throughput) or the host pads each
//! element up to the next size `N_2 + 1` that the wider kernel supports.
//! Padding buys a larger unroll factor `T_2` but inflates the work by
//! `((N_2 + 1)/(N + 1))^3`, so the paper's net gain is
//!
//! \[\text{gain} = \frac{T_2}{T_1} \left(\frac{N + 1}{N + 1 + p}\right)^3\]
//!
//! with `p` the number of padded points per direction.

use crate::throughput::{constrain_throughput, ArbitrationPolicy};
use serde::{Deserialize, Serialize};

/// Outcome of a padding analysis for one degree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaddingAnalysis {
    /// Original polynomial degree.
    pub degree: usize,
    /// Points per direction after padding.
    pub padded_points: usize,
    /// Padded points added per direction (`p`).
    pub padding: usize,
    /// Throughput achievable without padding (subject to the divisor rule).
    pub unpadded_throughput: f64,
    /// Throughput of the padded kernel.
    pub padded_throughput: f64,
    /// Work inflation factor `((N+1+p)/(N+1))^3 >= 1`.
    pub work_inflation: f64,
    /// Net speedup of padding over not padding (`> 1` means padding pays).
    pub net_gain: f64,
}

/// Efficiency factor of padding: the fraction of padded work that is useful,
/// `((N+1)/(N+1+p))^3`.
#[must_use]
pub fn padding_efficiency(degree: usize, padded_points: usize) -> f64 {
    let n1 = (degree + 1) as f64;
    let np = padded_points as f64;
    assert!(np >= n1, "padding cannot shrink the element");
    (n1 / np).powi(3)
}

/// The smallest number of points `>= N+1` divisible by `target_unroll`.
#[must_use]
pub fn padded_points_for_unroll(degree: usize, target_unroll: usize) -> usize {
    assert!(target_unroll >= 1);
    let n1 = degree + 1;
    n1.div_ceil(target_unroll) * target_unroll
}

/// Analyse whether padding degree `degree` up to an unroll factor of
/// `target_unroll` pays off, given the hardware could sustain at most
/// `max_throughput` DOFs/cycle if arbitration were no issue.
#[must_use]
pub fn analyse_padding(
    degree: usize,
    target_unroll: usize,
    max_throughput: f64,
) -> PaddingAnalysis {
    let unpadded =
        constrain_throughput(max_throughput, degree, ArbitrationPolicy::PowerOfTwoDivisor);
    let padded_points = padded_points_for_unroll(degree, target_unroll);
    let padding = padded_points - (degree + 1);
    let padded_throughput = (target_unroll as f64).min(max_throughput);
    let work_inflation = 1.0 / padding_efficiency(degree, padded_points);
    let net_gain = (padded_throughput / unpadded) / work_inflation;
    PaddingAnalysis {
        degree,
        padded_points,
        padding,
        unpadded_throughput: unpadded,
        padded_throughput,
        work_inflation,
        net_gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisible_degrees_need_no_padding() {
        let a = analyse_padding(7, 4, 4.0);
        assert_eq!(a.padding, 0);
        assert!((a.net_gain - 1.0).abs() < 1e-12);
        assert!((a.work_inflation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_degrees_lose_from_padding() {
        // N = 1 (2 points) padded to 4 points quadruples the work per
        // direction cubed (8x) while only doubling the throughput.
        let a = analyse_padding(1, 4, 4.0);
        assert_eq!(a.padded_points, 4);
        assert_eq!(a.padding, 2);
        assert!(a.net_gain < 1.0, "net gain {}", a.net_gain);
    }

    #[test]
    fn moderate_degrees_can_roughly_break_even() {
        // N = 13 (14 points) padded to 16 points: work inflation
        // (16/14)^3 ≈ 1.49, throughput gain 2 -> net ≈ 1.34: padding helps a
        // bit, which is why the paper explored it, but the gain is modest and
        // vanishes once host-side cost is considered.
        let a = analyse_padding(13, 4, 4.0);
        assert_eq!(a.padded_points, 16);
        assert!(
            a.net_gain > 1.0 && a.net_gain < 1.6,
            "net gain {}",
            a.net_gain
        );
    }

    #[test]
    fn efficiency_decreases_with_padding() {
        assert!(padding_efficiency(9, 10) > padding_efficiency(9, 12));
        assert_eq!(padding_efficiency(9, 10), 1.0);
    }

    #[test]
    fn padded_points_round_up_to_multiples() {
        assert_eq!(padded_points_for_unroll(9, 4), 12);
        assert_eq!(padded_points_for_unroll(7, 4), 8);
        assert_eq!(padded_points_for_unroll(5, 8), 8);
        assert_eq!(padded_points_for_unroll(12, 4), 16);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn padding_cannot_shrink() {
        let _ = padding_efficiency(9, 8);
    }
}
