//! Calibration: mapping observed model drift back to the model term that
//! produced the prediction.
//!
//! The serving layer records one `sem_obs::DriftSample` per stage per
//! admitted request — predicted seconds (the figure admission and placement
//! compared) against the seconds the executed timeline actually charged.
//! Aggregating those residuals answers *whether* the model is lying;
//! [`suspect_term`] answers *where*: it names the `perf_model` /
//! accelerator-model term each stage's prediction flows from, so a
//! calibration report reads as a worklist of model constants to revisit
//! rather than a pile of anonymous numbers.

/// The model term a drifting stage implicates.
///
/// Stage names follow the serving layer's drift samples: `upload`,
/// `compute`, `download`, `residual_stream` (per-request stage costs) and
/// `session` (the whole-job makespan prediction).  Unknown stages map to
/// `"unmodelled stage"` rather than panicking, so new stages degrade
/// gracefully in reports.
#[must_use]
pub fn suspect_term(stage: &str) -> &'static str {
    match stage {
        "shared_upload" => "OffloadPlan::shared_upload_seconds (table bytes / link_gbs)",
        "upload" => "OffloadPlan::operand_upload_seconds (operand bytes / link_gbs)",
        "compute" => "AxBackend::simulated_seconds_per_batch (cycle model + applications hint)",
        "download" => "OffloadPlan::result_download_seconds (result bytes / link_gbs)",
        "residual_stream" => "RESIDUAL_BYTES_PER_ITERATION x applications hint / link_gbs",
        "session" => "PipelineTimeline::predict (overlap recurrence over the stage terms)",
        _ => "unmodelled stage",
    }
}

/// An online multiplicative correction for a drifting prediction term.
///
/// The live serving path feeds every executed job's (predicted, actual)
/// session seconds into the corrector; subsequent admission verdicts and
/// autoscaler capacity checks price jobs at
/// `prediction × correction()` instead of trusting the raw model.  The
/// correction is the ratio of accumulated actual to accumulated predicted
/// seconds — exactly the aggregate the drift report computes for the
/// `session` stage, whose suspect term is the admission-time applications
/// hint.  Clamped to `[0.125, 8.0]` so one absurd sample cannot swing
/// admission by more than 8x in either direction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriftCorrector {
    predicted_seconds: f64,
    actual_seconds: f64,
    samples: usize,
}

impl DriftCorrector {
    /// A corrector with no evidence yet (correction factor 1).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one executed job's predicted and actual seconds.
    pub fn record(&mut self, predicted_seconds: f64, actual_seconds: f64) {
        if predicted_seconds.is_finite()
            && actual_seconds.is_finite()
            && predicted_seconds > 0.0
            && actual_seconds >= 0.0
        {
            self.predicted_seconds += predicted_seconds;
            self.actual_seconds += actual_seconds;
            self.samples += 1;
        }
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The multiplicative correction: accumulated actual over accumulated
    /// predicted seconds, clamped to `[0.125, 8.0]`; `1.0` with no
    /// evidence.
    #[must_use]
    pub fn correction(&self) -> f64 {
        if self.samples == 0 || self.predicted_seconds <= 0.0 {
            1.0
        } else {
            (self.actual_seconds / self.predicted_seconds).clamp(0.125, 8.0)
        }
    }

    /// Apply the correction to a raw model prediction.
    #[must_use]
    pub fn corrected(&self, predicted_seconds: f64) -> f64 {
        predicted_seconds * self.correction()
    }
}

/// Per-stage drift correction: one [`DriftCorrector`] per model term the
/// drift report attributes residuals to, instead of a single factor
/// smearing every stage's error onto every other stage's prediction.
///
/// The serving layer records each executed request's per-stage
/// (predicted, actual) pairs under the same stage names [`suspect_term`]
/// knows (`shared_upload`, `upload`, `compute`, `download`,
/// `residual_stream`, `session`); consumers then correct each stage's raw
/// prediction by *that stage's own* measured ratio — an upload-bandwidth
/// lie no longer inflates the compute prediction.  Timeout budgets price
/// off the corrected per-stage figures, so a sticky device slowdown (which
/// drifts `compute` only) tightens exactly the budget it should.
///
/// Unknown stages share one fallback corrector, mirroring
/// [`suspect_term`]'s graceful `"unmodelled stage"` degradation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageDriftCorrector {
    shared_upload: DriftCorrector,
    upload: DriftCorrector,
    compute: DriftCorrector,
    download: DriftCorrector,
    residual_stream: DriftCorrector,
    session: DriftCorrector,
    unmodelled: DriftCorrector,
}

impl StageDriftCorrector {
    /// A corrector set with no evidence yet (every factor 1).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, stage: &str) -> &DriftCorrector {
        match stage {
            "shared_upload" => &self.shared_upload,
            "upload" => &self.upload,
            "compute" => &self.compute,
            "download" => &self.download,
            "residual_stream" => &self.residual_stream,
            "session" => &self.session,
            _ => &self.unmodelled,
        }
    }

    fn slot_mut(&mut self, stage: &str) -> &mut DriftCorrector {
        match stage {
            "shared_upload" => &mut self.shared_upload,
            "upload" => &mut self.upload,
            "compute" => &mut self.compute,
            "download" => &mut self.download,
            "residual_stream" => &mut self.residual_stream,
            "session" => &mut self.session,
            _ => &mut self.unmodelled,
        }
    }

    /// Record one executed stage's predicted and actual seconds.
    pub fn record(&mut self, stage: &str, predicted_seconds: f64, actual_seconds: f64) {
        self.slot_mut(stage)
            .record(predicted_seconds, actual_seconds);
    }

    /// The stage's multiplicative correction (1.0 with no evidence).
    #[must_use]
    pub fn correction(&self, stage: &str) -> f64 {
        self.slot(stage).correction()
    }

    /// Apply the stage's correction to a raw model prediction.
    #[must_use]
    pub fn corrected(&self, stage: &str, predicted_seconds: f64) -> f64 {
        self.slot(stage).corrected(predicted_seconds)
    }

    /// Samples recorded for the stage so far.
    #[must_use]
    pub fn samples(&self, stage: &str) -> usize {
        self.slot(stage).samples()
    }

    /// The whole-session corrector — the figure the single-factor admission
    /// path (and its committed artifacts) keeps pricing with.
    #[must_use]
    pub fn session(&self) -> &DriftCorrector {
        &self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_serving_stage_names_a_model_term() {
        for stage in [
            "shared_upload",
            "upload",
            "compute",
            "download",
            "residual_stream",
            "session",
        ] {
            assert_ne!(suspect_term(stage), "unmodelled stage", "stage {stage}");
        }
    }

    #[test]
    fn unknown_stages_degrade_gracefully() {
        assert_eq!(suspect_term("teleport"), "unmodelled stage");
    }

    #[test]
    fn corrector_converges_on_the_measured_ratio() {
        let mut c = DriftCorrector::new();
        assert_eq!(c.correction(), 1.0, "no evidence means no correction");
        // The model consistently predicts half the measured cost (the
        // admission-time applications hint undershooting the real
        // iteration count).
        c.record(1.0, 2.0);
        c.record(3.0, 6.0);
        assert!((c.correction() - 2.0).abs() < 1e-12);
        assert!((c.corrected(5.0) - 10.0).abs() < 1e-12);
        assert_eq!(c.samples(), 2);
    }

    #[test]
    fn corrector_is_clamped_and_ignores_junk() {
        let mut c = DriftCorrector::new();
        c.record(1.0, 1000.0);
        assert_eq!(c.correction(), 8.0, "upper clamp");
        let mut d = DriftCorrector::new();
        d.record(1000.0, 1.0);
        assert_eq!(d.correction(), 0.125, "lower clamp");
        let mut e = DriftCorrector::new();
        e.record(f64::NAN, 1.0);
        e.record(0.0, 1.0);
        e.record(1.0, f64::INFINITY);
        assert_eq!(e.samples(), 0);
        assert_eq!(e.correction(), 1.0);
    }

    #[test]
    fn stage_corrections_are_independent() {
        let mut c = StageDriftCorrector::new();
        // Only the compute term drifts (a down-clocked device)...
        c.record("compute", 1.0, 3.0);
        c.record("upload", 2.0, 2.0);
        assert!((c.correction("compute") - 3.0).abs() < 1e-12);
        // ...and the other stages keep their own evidence, not compute's.
        assert_eq!(c.correction("upload"), 1.0);
        assert_eq!(c.correction("download"), 1.0);
        assert!((c.corrected("compute", 2.0) - 6.0).abs() < 1e-12);
        assert_eq!(c.corrected("download", 2.0), 2.0);
        assert_eq!(c.samples("compute"), 1);
        assert_eq!(c.samples("session"), 0);
    }

    #[test]
    fn unknown_stages_share_the_fallback_corrector() {
        let mut c = StageDriftCorrector::new();
        c.record("teleport", 1.0, 2.0);
        assert!((c.correction("warp") - 2.0).abs() < 1e-12);
        assert_eq!(c.correction("compute"), 1.0);
    }

    #[test]
    fn session_slot_matches_the_single_factor_corrector() {
        // The live admission path prices sessions through the session slot;
        // it must reproduce the legacy single corrector bit for bit so
        // committed live-serving artifacts stay stable.
        let mut single = DriftCorrector::new();
        let mut staged = StageDriftCorrector::new();
        for (p, a) in [(1.0, 2.0), (3.0, 2.5), (0.5, 0.5)] {
            single.record(p, a);
            staged.record("session", p, a);
        }
        assert_eq!(single.correction(), staged.correction("session"));
        assert_eq!(single.corrected(1.7), staged.corrected("session", 1.7));
        assert_eq!(&single, staged.session());
    }
}
