//! Calibration: mapping observed model drift back to the model term that
//! produced the prediction.
//!
//! The serving layer records one `sem_obs::DriftSample` per stage per
//! admitted request — predicted seconds (the figure admission and placement
//! compared) against the seconds the executed timeline actually charged.
//! Aggregating those residuals answers *whether* the model is lying;
//! [`suspect_term`] answers *where*: it names the `perf_model` /
//! accelerator-model term each stage's prediction flows from, so a
//! calibration report reads as a worklist of model constants to revisit
//! rather than a pile of anonymous numbers.

/// The model term a drifting stage implicates.
///
/// Stage names follow the serving layer's drift samples: `upload`,
/// `compute`, `download`, `residual_stream` (per-request stage costs) and
/// `session` (the whole-job makespan prediction).  Unknown stages map to
/// `"unmodelled stage"` rather than panicking, so new stages degrade
/// gracefully in reports.
#[must_use]
pub fn suspect_term(stage: &str) -> &'static str {
    match stage {
        "shared_upload" => "OffloadPlan::shared_upload_seconds (table bytes / link_gbs)",
        "upload" => "OffloadPlan::operand_upload_seconds (operand bytes / link_gbs)",
        "compute" => "AxBackend::simulated_seconds_per_batch (cycle model + applications hint)",
        "download" => "OffloadPlan::result_download_seconds (result bytes / link_gbs)",
        "residual_stream" => "RESIDUAL_BYTES_PER_ITERATION x applications hint / link_gbs",
        "session" => "PipelineTimeline::predict (overlap recurrence over the stage terms)",
        _ => "unmodelled stage",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_serving_stage_names_a_model_term() {
        for stage in [
            "shared_upload",
            "upload",
            "compute",
            "download",
            "residual_stream",
            "session",
        ] {
            assert_ne!(suspect_term(stage), "unmodelled stage", "stage {stage}");
        }
    }

    #[test]
    fn unknown_stages_degrade_gracefully() {
        assert_eq!(suspect_term("teleport"), "unmodelled stage");
    }
}
