//! The classical roofline bound.
//!
//! `P = min(peak, B · I)` — used both for the FPGA (Fig. 3's "Roofline"
//! curve) and for every CPU/GPU in the evaluation (the green roofline markers
//! of Fig. 2).

use crate::cost::operational_intensity;

/// Roofline performance in GFLOP/s for a machine with `peak_gflops` compute
/// and `bandwidth_gbs` memory bandwidth at operational intensity
/// `intensity_flop_per_byte`.
#[must_use]
pub fn roofline_gflops(peak_gflops: f64, bandwidth_gbs: f64, intensity_flop_per_byte: f64) -> f64 {
    peak_gflops.min(bandwidth_gbs * intensity_flop_per_byte)
}

/// Roofline bound of the SEM kernel at polynomial degree `degree`.
#[must_use]
pub fn kernel_roofline_gflops(peak_gflops: f64, bandwidth_gbs: f64, degree: usize) -> f64 {
    roofline_gflops(peak_gflops, bandwidth_gbs, operational_intensity(degree))
}

/// The intensity (FLOP/byte) at which a machine transitions from memory- to
/// compute-bound (the "ridge point").
#[must_use]
pub fn ridge_point(peak_gflops: f64, bandwidth_gbs: f64) -> f64 {
    if bandwidth_gbs <= 0.0 {
        return f64::INFINITY;
    }
    peak_gflops / bandwidth_gbs
}

/// Whether the kernel is memory-bound on the given machine at `degree`.
#[must_use]
pub fn is_memory_bound(peak_gflops: f64, bandwidth_gbs: f64, degree: usize) -> bool {
    operational_intensity(degree) < ridge_point(peak_gflops, bandwidth_gbs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_the_minimum_of_the_two_ceilings() {
        assert_eq!(roofline_gflops(100.0, 10.0, 2.0), 20.0);
        assert_eq!(roofline_gflops(100.0, 100.0, 2.0), 100.0);
    }

    #[test]
    fn sem_kernel_is_memory_bound_on_every_evaluated_gpu() {
        // Table II: peak vs bandwidth of the Tesla cards; with I(15) ≈ 3.23
        // FLOP/B they all stay bandwidth bound, which is the paper's premise.
        for (peak, bw) in [(5304.0, 732.2), (7066.0, 897.0), (9746.0, 1555.0)] {
            assert!(is_memory_bound(peak, bw, 15));
            assert!(is_memory_bound(peak, bw, 7));
        }
    }

    #[test]
    fn kernel_roofline_for_the_a100_matches_the_paper() {
        // The paper quotes ~3.97 TFLOP/s as the A100 roofline at N = 15
        // (1555 GB/s · 207/64 FLOP/B ≈ 5.0 TF is the pure roofline; the
        // quoted 3.97 TF also accounts for the achieved-bandwidth fraction).
        let pure = kernel_roofline_gflops(9746.0, 1555.0, 15);
        assert!(pure > 4_000.0 && pure < 5_200.0, "pure roofline {pure}");
    }

    #[test]
    fn ridge_point_behaviour() {
        assert_eq!(ridge_point(100.0, 50.0), 2.0);
        assert_eq!(ridge_point(100.0, 0.0), f64::INFINITY);
    }
}
