//! Analytical performance model of the SEM FPGA accelerator.
//!
//! This crate is a self-contained implementation of Section IV of the paper:
//!
//! * [`cost`] — the per-DOF cost `C(N)`, traffic `Q(N)` and operational
//!   intensity `I(N)`;
//! * [`roofline`] — the classical roofline bound used for every architecture
//!   in the evaluation;
//! * [`resources`] — the FPGA resource vector, the per-FPU resource costs
//!   (`R_add`, `R_mul`) and the compute resource requirement `R_comp(N, T)`;
//! * [`device`] — FPGA device descriptions, including the evaluated
//!   Stratix 10 GX2800 and the three projected devices of Section V-D
//!   (Agilex 027, Stratix 10M and the hypothetical "ideal" FPGA);
//! * [`measured`] — the paper's Table I measurements for the eight
//!   synthesised accelerators, used both as the calibration source for the
//!   empirical base utilisation `R_base(N)` and as the reference data the
//!   reproduction is compared against;
//! * [`throughput`] — the bandwidth bound `T_B`, the resource bound, the
//!   power-of-two arbitration constraint and the resulting peak performance
//!   `P_max(N)`;
//! * [`padding`] — the padding penalty analysis of Section III-E / IV;
//! * [`projection`] — performance projection for arbitrary devices and the
//!   inverse question ("what FPGA would beat an A100?");
//! * [`serving`] — the three-stage offload-pipeline closed form and the
//!   host roofline cost model scheduling policies price backends with;
//! * [`calibration`] — the drift-report helper naming which model term a
//!   drifting serving stage implicates, and the [`calibration::DriftCorrector`]
//!   that turns measured residuals into a multiplicative prediction fix;
//! * [`workload`] — seeded open-loop arrival-time generators (Poisson,
//!   bursty, diurnal) for the live serving bench.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod cost;
pub mod device;
pub mod measured;
pub mod padding;
pub mod projection;
pub mod resources;
pub mod roofline;
pub mod sensitivity;
pub mod serving;
pub mod throughput;
pub mod workload;

pub use calibration::{suspect_term, DriftCorrector, StageDriftCorrector};
pub use cost::{bytes_per_dof, flops_per_dof, operational_intensity, KernelCost, KernelTraffic};
pub use device::FpgaDevice;
pub use measured::{measured_table1, Table1Row};
pub use projection::{project_device, DegreeProjection, ProjectionOutcome};
pub use resources::{FpuCost, ResourceVector};
pub use roofline::roofline_gflops;
pub use serving::{
    nearest_rank_percentile, AdmissionVerdict, DeadlineModel, HostCostModel, PipelineCost,
};
pub use throughput::{PerformanceBound, ThroughputPrediction};
pub use workload::{arrival_times, WorkloadKind};
