//! Dirichlet boundary masks.
//!
//! The homogeneous Poisson problem of the paper (Section II) imposes `u = 0`
//! on the domain boundary.  In the local/matrix-free formulation this is done
//! by zeroing the boundary degrees of freedom of residuals and search
//! directions — the "mask" of Nekbone.

use crate::field::ElementField;
use crate::mesh::BoxMesh;
use serde::{Deserialize, Serialize};

/// A 0/1 mask over the local degrees of freedom (0 on the Dirichlet boundary).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirichletMask {
    degree: usize,
    num_elements: usize,
    mask: Vec<f64>,
}

impl DirichletMask {
    /// Build the mask for the whole boundary of a box mesh.
    #[must_use]
    pub fn from_mesh(mesh: &BoxMesh) -> Self {
        let nx = mesh.points_per_direction();
        let mut mask = Vec::with_capacity(mesh.num_local_dofs());
        for e in 0..mesh.num_elements() {
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        mask.push(if mesh.is_boundary_node(e, i, j, k) {
                            0.0
                        } else {
                            1.0
                        });
                    }
                }
            }
        }
        Self {
            degree: mesh.degree(),
            num_elements: mesh.num_elements(),
            mask,
        }
    }

    /// A mask that keeps every degree of freedom (no Dirichlet boundary), for
    /// pure-Neumann or periodic experiments.
    #[must_use]
    pub fn none(degree: usize, num_elements: usize) -> Self {
        Self {
            degree,
            num_elements,
            mask: vec![1.0; sem_basis::dofs_per_element(degree) * num_elements],
        }
    }

    /// Apply the mask in place: boundary values are zeroed.
    pub fn apply(&self, field: &mut ElementField) {
        assert_eq!(field.len(), self.mask.len(), "field size mismatch");
        for (v, &m) in field.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
    }

    /// The raw mask values (1 = free, 0 = constrained).
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.mask
    }

    /// The mask as an [`ElementField`].
    #[must_use]
    pub fn as_field(&self) -> ElementField {
        ElementField::from_vec(self.degree, self.num_elements, self.mask.clone())
    }

    /// Number of constrained (boundary) local degrees of freedom.
    #[must_use]
    pub fn num_constrained(&self) -> usize {
        self.mask.iter().filter(|&&m| m == 0.0).count()
    }

    /// Number of free local degrees of freedom.
    #[must_use]
    pub fn num_free(&self) -> usize {
        self.mask.len() - self.num_constrained()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element_mask_keeps_only_interior() {
        let mesh = BoxMesh::unit_cube(4, 1);
        let mask = DirichletMask::from_mesh(&mesh);
        // Interior points per direction: N - 1 = 3, so 27 free nodes.
        assert_eq!(mask.num_free(), 27);
        assert_eq!(mask.num_constrained(), 125 - 27);
    }

    #[test]
    fn apply_zeroes_the_boundary() {
        let mesh = BoxMesh::unit_cube(3, 2);
        let mask = DirichletMask::from_mesh(&mesh);
        let mut f = ElementField::constant(3, 8, 2.5);
        mask.apply(&mut f);
        let nx = 4;
        for e in 0..8 {
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        let expect = if mesh.is_boundary_node(e, i, j, k) {
                            0.0
                        } else {
                            2.5
                        };
                        assert_eq!(f.at(e, i, j, k), expect);
                    }
                }
            }
        }
    }

    #[test]
    fn none_mask_is_identity() {
        let mut f = ElementField::constant(2, 4, 3.0);
        let mask = DirichletMask::none(2, 4);
        mask.apply(&mut f);
        assert!(f.as_slice().iter().all(|&v| v == 3.0));
        assert_eq!(mask.num_constrained(), 0);
    }

    #[test]
    fn free_count_matches_interior_global_nodes_for_unit_multiplicity() {
        // For one element the free local nodes equal the interior global nodes.
        let mesh = BoxMesh::unit_cube(5, 1);
        let mask = DirichletMask::from_mesh(&mesh);
        assert_eq!(mask.num_free(), (5 - 1) * (5 - 1) * (5 - 1));
    }
}
