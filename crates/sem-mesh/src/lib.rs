//! Hexahedral spectral element meshes.
//!
//! This crate provides the mesh-level substrate the paper's kernel operates
//! on: element-major nodal fields, structured box meshes with (optionally
//! deformed) hexahedral elements, the six packed geometric factors `G` of the
//! local Poisson operator, the gather–scatter (direct stiffness summation)
//! operator that glues elements together, and Dirichlet boundary masks.
//!
//! The data layouts intentionally mirror Nekbone / the paper's Listing 1:
//!
//! * nodal fields are stored element-major (`ele * (N+1)^3 + ijk`),
//! * geometric factors are stored either interleaved
//!   (`gxyz[c + 6*ijk + 6*(N+1)^3*ele]`, the layout of the baseline kernel)
//!   or split into six separate planes (the layout of the optimised
//!   accelerator, Section III-B of the paper).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod field;
pub mod gather_scatter;
pub mod geometry;
pub mod mask;
pub mod mesh;

pub use field::ElementField;
pub use gather_scatter::GatherScatter;
pub use geometry::{GeometricFactors, GeometryLayout};
pub use mask::DirichletMask;
pub use mesh::{BoxMesh, MeshDeformation};
