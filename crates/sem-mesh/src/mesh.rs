//! Structured hexahedral box meshes.
//!
//! Nekbone — the proxy application the paper builds its accelerator for —
//! operates on a structured box of hexahedral spectral elements.  [`BoxMesh`]
//! reproduces that: `ex × ey × ez` elements spanning a rectangular domain,
//! each carrying `(N+1)^3` GLL nodes.  An optional smooth deformation bends
//! the elements so the general (non-diagonal) geometric factors are exercised.

use crate::field::ElementField;
use sem_basis::gauss_lobatto_legendre;
use serde::{Deserialize, Serialize};

/// Optional smooth deformation applied to the node coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MeshDeformation {
    /// Undeformed box: every element is an axis-aligned brick and the
    /// geometric factors are diagonal.
    None,
    /// A smooth sinusoidal bump that vanishes on the domain boundary.  The
    /// map stays a bijection for amplitudes well below the element size; it
    /// produces fully populated (six-component) geometric factors.
    Sinusoidal {
        /// Bump amplitude as a fraction of the shortest domain edge.
        amplitude: f64,
    },
}

/// A structured box mesh of hexahedral spectral elements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoxMesh {
    degree: usize,
    elements: [usize; 3],
    lengths: [f64; 3],
    deformation: MeshDeformation,
    /// Physical coordinates of every local GLL node, element-major.
    coords: [ElementField; 3],
}

impl BoxMesh {
    /// Build a mesh of `elements = [ex, ey, ez]` spectral elements of degree
    /// `degree` covering the box `[0, lengths[0]] × [0, lengths[1]] × [0, lengths[2]]`.
    ///
    /// # Panics
    /// Panics if any element count is zero, any length is non-positive or the
    /// degree is zero.
    #[must_use]
    pub fn new(
        degree: usize,
        elements: [usize; 3],
        lengths: [f64; 3],
        deformation: MeshDeformation,
    ) -> Self {
        assert!(degree >= 1, "polynomial degree must be at least 1");
        assert!(
            elements.iter().all(|&e| e > 0),
            "element counts must be positive"
        );
        assert!(
            lengths.iter().all(|&l| l > 0.0),
            "domain lengths must be positive"
        );
        let num_elements = elements[0] * elements[1] * elements[2];
        let gll = gauss_lobatto_legendre(degree + 1);
        let nx = degree + 1;

        let mut xs = ElementField::zeros(degree, num_elements);
        let mut ys = ElementField::zeros(degree, num_elements);
        let mut zs = ElementField::zeros(degree, num_elements);

        let h = [
            lengths[0] / elements[0] as f64,
            lengths[1] / elements[1] as f64,
            lengths[2] / elements[2] as f64,
        ];
        let min_len = lengths.iter().copied().fold(f64::INFINITY, f64::min);

        for ek in 0..elements[2] {
            for ej in 0..elements[1] {
                for ei in 0..elements[0] {
                    let e = ei + elements[0] * (ej + elements[1] * ek);
                    for k in 0..nx {
                        for j in 0..nx {
                            for i in 0..nx {
                                let x = h[0] * (ei as f64 + 0.5 * (gll.nodes[i] + 1.0));
                                let y = h[1] * (ej as f64 + 0.5 * (gll.nodes[j] + 1.0));
                                let z = h[2] * (ek as f64 + 0.5 * (gll.nodes[k] + 1.0));
                                let (x, y, z) = match deformation {
                                    MeshDeformation::None => (x, y, z),
                                    MeshDeformation::Sinusoidal { amplitude } => {
                                        let a = amplitude * min_len;
                                        let sx = (std::f64::consts::PI * x / lengths[0]).sin();
                                        let sy = (std::f64::consts::PI * y / lengths[1]).sin();
                                        let sz = (std::f64::consts::PI * z / lengths[2]).sin();
                                        (
                                            x + a * sx * sy * sz,
                                            y + a * sx * sy * sz,
                                            z - a * sx * sy * sz,
                                        )
                                    }
                                };
                                xs.set(e, i, j, k, x);
                                ys.set(e, i, j, k, y);
                                zs.set(e, i, j, k, z);
                            }
                        }
                    }
                }
            }
        }

        Self {
            degree,
            elements,
            lengths,
            deformation,
            coords: [xs, ys, zs],
        }
    }

    /// Convenience constructor: a unit cube split into `e × e × e` undeformed
    /// elements.
    #[must_use]
    pub fn unit_cube(degree: usize, elements_per_side: usize) -> Self {
        Self::new(
            degree,
            [elements_per_side; 3],
            [1.0; 3],
            MeshDeformation::None,
        )
    }

    /// Polynomial degree `N`.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of GLL points per direction, `N + 1`.
    #[must_use]
    pub fn points_per_direction(&self) -> usize {
        self.degree + 1
    }

    /// Element counts per direction.
    #[must_use]
    pub fn element_counts(&self) -> [usize; 3] {
        self.elements
    }

    /// Total number of elements.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.elements[0] * self.elements[1] * self.elements[2]
    }

    /// Total number of *local* degrees of freedom (`E (N+1)^3`), i.e. counting
    /// shared interface nodes once per adjacent element.
    #[must_use]
    pub fn num_local_dofs(&self) -> usize {
        self.num_elements() * sem_basis::dofs_per_element(self.degree)
    }

    /// Total number of *unique* (global) grid points.
    #[must_use]
    pub fn num_global_dofs(&self) -> usize {
        let n = self.degree;
        (self.elements[0] * n + 1) * (self.elements[1] * n + 1) * (self.elements[2] * n + 1)
    }

    /// Domain edge lengths.
    #[must_use]
    pub fn lengths(&self) -> [f64; 3] {
        self.lengths
    }

    /// The deformation applied to this mesh.
    #[must_use]
    pub fn deformation(&self) -> MeshDeformation {
        self.deformation
    }

    /// Physical coordinates of every local node as three element-major fields
    /// `(x, y, z)`.
    #[must_use]
    pub fn coordinates(&self) -> &[ElementField; 3] {
        &self.coords
    }

    /// Global (unique grid point) index of local node `(e, i, j, k)`.
    ///
    /// Adjacent elements share the nodes on their common face, which is what
    /// makes direct stiffness summation meaningful.
    #[must_use]
    pub fn global_node_id(&self, e: usize, i: usize, j: usize, k: usize) -> usize {
        let n = self.degree;
        let [ex, ey, _ez] = self.elements;
        let ei = e % ex;
        let ej = (e / ex) % ey;
        let ek = e / (ex * ey);
        let gi = ei * n + i;
        let gj = ej * n + j;
        let gk = ek * n + k;
        let npx = ex * n + 1;
        let npy = ey * n + 1;
        gi + npx * (gj + npy * gk)
    }

    /// Build the local-to-global index map in element-major node order.
    #[must_use]
    pub fn local_to_global(&self) -> Vec<usize> {
        let nx = self.degree + 1;
        let mut map = Vec::with_capacity(self.num_local_dofs());
        for e in 0..self.num_elements() {
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        map.push(self.global_node_id(e, i, j, k));
                    }
                }
            }
        }
        map
    }

    /// Whether local node `(e, i, j, k)` lies on the domain boundary.
    #[must_use]
    pub fn is_boundary_node(&self, e: usize, i: usize, j: usize, k: usize) -> bool {
        let n = self.degree;
        let [ex, ey, ez] = self.elements;
        let ei = e % ex;
        let ej = (e / ex) % ey;
        let ek = e / (ex * ey);
        let gi = ei * n + i;
        let gj = ej * n + j;
        let gk = ek * n + k;
        gi == 0 || gi == ex * n || gj == 0 || gj == ey * n || gk == 0 || gk == ez * n
    }

    /// Evaluate a function of physical coordinates at every local node.
    #[must_use]
    pub fn evaluate<F: Fn(f64, f64, f64) -> f64>(&self, f: F) -> ElementField {
        let mut out = ElementField::zeros(self.degree, self.num_elements());
        let nx = self.degree + 1;
        for e in 0..self.num_elements() {
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        let x = self.coords[0].at(e, i, j, k);
                        let y = self.coords[1].at(e, i, j, k);
                        let z = self.coords[2].at(e, i, j, k);
                        out.set(e, i, j, k, f(x, y, z));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_consistent() {
        let mesh = BoxMesh::new(3, [2, 3, 4], [1.0, 2.0, 3.0], MeshDeformation::None);
        assert_eq!(mesh.num_elements(), 24);
        assert_eq!(mesh.num_local_dofs(), 24 * 64);
        assert_eq!(mesh.num_global_dofs(), 7 * 10 * 13);
    }

    #[test]
    fn coordinates_span_the_box() {
        let mesh = BoxMesh::new(4, [2, 2, 2], [1.0, 2.0, 0.5], MeshDeformation::None);
        let [xs, ys, zs] = mesh.coordinates();
        let max_x = xs.as_slice().iter().copied().fold(f64::MIN, f64::max);
        let max_y = ys.as_slice().iter().copied().fold(f64::MIN, f64::max);
        let max_z = zs.as_slice().iter().copied().fold(f64::MIN, f64::max);
        assert!((max_x - 1.0).abs() < 1e-12);
        assert!((max_y - 2.0).abs() < 1e-12);
        assert!((max_z - 0.5).abs() < 1e-12);
        let min_x = xs.as_slice().iter().copied().fold(f64::MAX, f64::min);
        assert!(min_x.abs() < 1e-12);
    }

    #[test]
    fn shared_face_nodes_have_identical_coordinates_and_ids() {
        let mesh = BoxMesh::unit_cube(3, 2);
        let nx = mesh.points_per_direction();
        let [xs, ys, zs] = mesh.coordinates();
        // Element 0 and element 1 are adjacent in x; the i = N face of
        // element 0 coincides with the i = 0 face of element 1.
        for k in 0..nx {
            for j in 0..nx {
                assert_eq!(
                    mesh.global_node_id(0, nx - 1, j, k),
                    mesh.global_node_id(1, 0, j, k)
                );
                for (c, f) in [xs, ys, zs].iter().enumerate() {
                    let a = f.at(0, nx - 1, j, k);
                    let b = f.at(1, 0, j, k);
                    assert!((a - b).abs() < 1e-12, "coord {c} mismatch: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn global_ids_cover_range_exactly() {
        let mesh = BoxMesh::unit_cube(2, 3);
        let map = mesh.local_to_global();
        let max = *map.iter().max().unwrap();
        assert_eq!(max + 1, mesh.num_global_dofs());
        let mut seen = vec![false; mesh.num_global_dofs()];
        for &g in &map {
            seen[g] = true;
        }
        assert!(seen.iter().all(|&s| s), "every global id must be touched");
    }

    #[test]
    fn boundary_detection_matches_coordinates() {
        let mesh = BoxMesh::unit_cube(3, 2);
        let [xs, ys, zs] = mesh.coordinates();
        let nx = mesh.points_per_direction();
        for e in 0..mesh.num_elements() {
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        let on_boundary = mesh.is_boundary_node(e, i, j, k);
                        let x = xs.at(e, i, j, k);
                        let y = ys.at(e, i, j, k);
                        let z = zs.at(e, i, j, k);
                        let coord_boundary = x.abs() < 1e-12
                            || (x - 1.0).abs() < 1e-12
                            || y.abs() < 1e-12
                            || (y - 1.0).abs() < 1e-12
                            || z.abs() < 1e-12
                            || (z - 1.0).abs() < 1e-12;
                        assert_eq!(on_boundary, coord_boundary);
                    }
                }
            }
        }
    }

    #[test]
    fn deformation_keeps_boundary_fixed() {
        let plain = BoxMesh::new(4, [2, 2, 2], [1.0; 3], MeshDeformation::None);
        let bent = BoxMesh::new(
            4,
            [2, 2, 2],
            [1.0; 3],
            MeshDeformation::Sinusoidal { amplitude: 0.05 },
        );
        let nx = plain.points_per_direction();
        let mut interior_moved = false;
        for e in 0..plain.num_elements() {
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        let dx = (plain.coordinates()[0].at(e, i, j, k)
                            - bent.coordinates()[0].at(e, i, j, k))
                        .abs();
                        if plain.is_boundary_node(e, i, j, k) {
                            // The sinusoidal bump vanishes on the boundary
                            // planes in at least one factor.
                            let x = plain.coordinates()[0].at(e, i, j, k);
                            let y = plain.coordinates()[1].at(e, i, j, k);
                            let z = plain.coordinates()[2].at(e, i, j, k);
                            let sx = (std::f64::consts::PI * x).sin();
                            let sy = (std::f64::consts::PI * y).sin();
                            let sz = (std::f64::consts::PI * z).sin();
                            assert!(dx <= 0.05 * (sx * sy * sz).abs() + 1e-12);
                        } else if dx > 1e-6 {
                            interior_moved = true;
                        }
                    }
                }
            }
        }
        assert!(
            interior_moved,
            "deformation must actually move the interior"
        );
    }

    #[test]
    fn evaluate_samples_physical_coordinates() {
        let mesh = BoxMesh::unit_cube(2, 2);
        let f = mesh.evaluate(|x, y, z| x + 2.0 * y - z);
        let [xs, ys, zs] = mesh.coordinates();
        for idx in 0..f.len() {
            let expect = xs.as_slice()[idx] + 2.0 * ys.as_slice()[idx] - zs.as_slice()[idx];
            assert!((f.as_slice()[idx] - expect).abs() < 1e-13);
        }
    }

    #[test]
    #[should_panic(expected = "element counts")]
    fn zero_elements_rejected() {
        let _ = BoxMesh::new(2, [0, 1, 1], [1.0; 3], MeshDeformation::None);
    }
}
