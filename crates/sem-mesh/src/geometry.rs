//! Geometric factors of the local Poisson operator.
//!
//! For every GLL node of every element the operator needs the six independent
//! entries of the symmetric 3×3 tensor
//!
//! \[G = J \; w_i w_j w_k \; (\nabla_x r)(\nabla_x r)^T\]
//!
//! where `J` is the Jacobian determinant of the reference-to-physical map,
//! `w` are the GLL quadrature weights and `∇_x r` is the inverse Jacobian.
//! These are the `gxyz` values of the paper's Listing 1, stored in the order
//! `[G_rr, G_rs, G_rt, G_ss, G_st, G_tt]` so that
//!
//! ```text
//! shur = g0*ur + g1*us + g2*ut
//! shus = g1*ur + g3*us + g4*ut
//! shut = g2*ur + g4*us + g5*ut
//! ```
//!
//! Two memory layouts are provided, matching the two accelerator variants the
//! paper discusses: the *interleaved* layout (`g[c + 6*node + 6*npts*e]`,
//! used by the baseline kernel) and the *split* layout (six separate planes,
//! the Section III-B optimisation that removes BRAM arbitration).

use crate::field::ElementField;
use crate::mesh::BoxMesh;
use sem_basis::{gauss_lobatto_legendre, DerivativeMatrix};
use serde::{Deserialize, Serialize};

/// Number of independent entries of the symmetric geometric-factor tensor.
pub const NUM_GEOMETRIC_FACTORS: usize = 6;

/// Memory layout of the geometric factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeometryLayout {
    /// `g[c + 6*node + 6*npts*element]` — the layout of Listing 1.
    Interleaved,
    /// Six separate element-major planes — the layout of the optimised
    /// accelerator (one BRAM per component, no arbitration).
    Split,
}

/// Geometric factors plus the diagonal mass matrix for a mesh.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeometricFactors {
    degree: usize,
    num_elements: usize,
    /// Interleaved storage, the canonical copy.
    interleaved: Vec<f64>,
    /// Diagonal of the mass matrix, `B = J w_i w_j w_k` per node.
    mass: ElementField,
    /// Smallest Jacobian determinant encountered (mesh validity indicator).
    min_jacobian: f64,
}

impl GeometricFactors {
    /// Compute the geometric factors of every element of `mesh`.
    ///
    /// # Panics
    /// Panics if the mesh mapping is degenerate (non-positive Jacobian), which
    /// indicates an invalid or overly deformed mesh.
    #[must_use]
    pub fn from_mesh(mesh: &BoxMesh) -> Self {
        let degree = mesh.degree();
        let nx = degree + 1;
        let npts = nx * nx * nx;
        let num_elements = mesh.num_elements();
        let gll = gauss_lobatto_legendre(nx);
        let dm = DerivativeMatrix::new(degree);
        let d = dm.d();

        let [xs, ys, zs] = mesh.coordinates();
        let mut interleaved = vec![0.0_f64; NUM_GEOMETRIC_FACTORS * npts * num_elements];
        let mut mass = ElementField::zeros(degree, num_elements);
        let mut min_jacobian = f64::INFINITY;

        // Scratch: derivatives of the three coordinates w.r.t. the three
        // reference directions at one node.
        for e in 0..num_elements {
            let xe = xs.element(e);
            let ye = ys.element(e);
            let ze = zs.element(e);
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        let node = i + nx * (j + nx * k);
                        // dX/dr, dX/ds, dX/dt for X in {x, y, z}.
                        let mut jac = [[0.0_f64; 3]; 3]; // jac[a][b] = d x_a / d r_b
                        for l in 0..nx {
                            let dr = d[(i, l)];
                            let ds = d[(j, l)];
                            let dt = d[(k, l)];
                            let idx_r = l + nx * (j + nx * k);
                            let idx_s = i + nx * (l + nx * k);
                            let idx_t = i + nx * (j + nx * l);
                            jac[0][0] += dr * xe[idx_r];
                            jac[1][0] += dr * ye[idx_r];
                            jac[2][0] += dr * ze[idx_r];
                            jac[0][1] += ds * xe[idx_s];
                            jac[1][1] += ds * ye[idx_s];
                            jac[2][1] += ds * ze[idx_s];
                            jac[0][2] += dt * xe[idx_t];
                            jac[1][2] += dt * ye[idx_t];
                            jac[2][2] += dt * ze[idx_t];
                        }
                        let det = det3(&jac);
                        assert!(
                            det > 0.0,
                            "degenerate element {e}: non-positive Jacobian {det}"
                        );
                        min_jacobian = min_jacobian.min(det);
                        let inv = inv3(&jac, det); // inv[b][a] = d r_b / d x_a
                        let w = gll.weights[i] * gll.weights[j] * gll.weights[k];
                        let scale = det * w;
                        // G_ab = scale * sum_c dr_a/dx_c * dr_b/dx_c
                        let mut g = [0.0_f64; NUM_GEOMETRIC_FACTORS];
                        let pairs = [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)];
                        for (slot, &(a, b)) in pairs.iter().enumerate() {
                            let acc: f64 = inv[a].iter().zip(&inv[b]).map(|(x, y)| x * y).sum();
                            g[slot] = scale * acc;
                        }
                        let base = NUM_GEOMETRIC_FACTORS * (node + npts * e);
                        interleaved[base..base + NUM_GEOMETRIC_FACTORS].copy_from_slice(&g);
                        mass.element_mut(e)[node] = scale;
                    }
                }
            }
        }

        Self {
            degree,
            num_elements,
            interleaved,
            mass,
            min_jacobian,
        }
    }

    /// Polynomial degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of elements.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Nodes per element.
    #[must_use]
    pub fn nodes_per_element(&self) -> usize {
        sem_basis::dofs_per_element(self.degree)
    }

    /// Smallest Jacobian determinant over the mesh.
    #[must_use]
    pub fn min_jacobian(&self) -> f64 {
        self.min_jacobian
    }

    /// The interleaved (`Listing 1`) storage: `g[c + 6*node + 6*npts*e]`.
    #[must_use]
    pub fn interleaved(&self) -> &[f64] {
        &self.interleaved
    }

    /// Factor `c ∈ 0..6` at element `e`, node index `node`.
    #[must_use]
    pub fn at(&self, e: usize, node: usize, c: usize) -> f64 {
        let npts = self.nodes_per_element();
        self.interleaved[c + NUM_GEOMETRIC_FACTORS * (node + npts * e)]
    }

    /// Convert to the split layout: six element-major planes, each of length
    /// `E * (N+1)^3` (the Section III-B optimisation).
    #[must_use]
    pub fn split(&self) -> [Vec<f64>; NUM_GEOMETRIC_FACTORS] {
        let npts = self.nodes_per_element();
        let total = npts * self.num_elements;
        let mut planes: [Vec<f64>; NUM_GEOMETRIC_FACTORS] = Default::default();
        for plane in &mut planes {
            plane.resize(total, 0.0);
        }
        for e in 0..self.num_elements {
            for node in 0..npts {
                for (c, plane) in planes.iter_mut().enumerate() {
                    plane[node + npts * e] = self.at(e, node, c);
                }
            }
        }
        planes
    }

    /// The diagonal mass matrix `B = J w` as an element-major field.
    #[must_use]
    pub fn mass(&self) -> &ElementField {
        &self.mass
    }

    /// Total bytes of geometric-factor data (what the accelerator must stream
    /// from external memory for `gxyz`).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.interleaved.len() * std::mem::size_of::<f64>()
    }
}

#[inline]
fn det3(m: &[[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

/// Inverse of a 3×3 matrix given its determinant; returns `inv[b][a] = (M^{-1})_{ba}`.
#[inline]
fn inv3(m: &[[f64; 3]; 3], det: f64) -> [[f64; 3]; 3] {
    let inv_det = 1.0 / det;
    let mut out = [[0.0_f64; 3]; 3];
    out[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
    out[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
    out[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
    out[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
    out[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
    out[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
    out[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
    out[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
    out[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshDeformation;

    #[test]
    fn unit_cube_affine_factors_are_diagonal() {
        // For an axis-aligned brick of size h^3, dr/dx = 2/h, J = h^3/8 and
        // G_rr = G_ss = G_tt = (2/h)^2 * h^3/8 * w = h/2 * w, off-diagonals 0.
        let degree = 4;
        let mesh = BoxMesh::unit_cube(degree, 2); // h = 0.5
        let geo = GeometricFactors::from_mesh(&mesh);
        let gll = gauss_lobatto_legendre(degree + 1);
        let nx = degree + 1;
        let h = 0.5_f64;
        for e in 0..mesh.num_elements() {
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        let node = i + nx * (j + nx * k);
                        let w = gll.weights[i] * gll.weights[j] * gll.weights[k];
                        let expect = h / 2.0 * w;
                        assert!((geo.at(e, node, 0) - expect).abs() < 1e-12);
                        assert!((geo.at(e, node, 3) - expect).abs() < 1e-12);
                        assert!((geo.at(e, node, 5) - expect).abs() < 1e-12);
                        assert!(geo.at(e, node, 1).abs() < 1e-12);
                        assert!(geo.at(e, node, 2).abs() < 1e-12);
                        assert!(geo.at(e, node, 4).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn mass_sums_to_domain_volume() {
        // Sum of B over all local nodes equals the domain volume because the
        // quadrature weights of each element integrate 1 over the element.
        for deformation in [
            MeshDeformation::None,
            MeshDeformation::Sinusoidal { amplitude: 0.03 },
        ] {
            let mesh = BoxMesh::new(5, [2, 2, 2], [1.0, 2.0, 0.5], deformation);
            let geo = GeometricFactors::from_mesh(&mesh);
            let vol: f64 = geo.mass().as_slice().iter().sum();
            assert!(
                (vol - 1.0 * 2.0 * 0.5).abs() < 1e-9,
                "volume {vol} for {deformation:?}"
            );
        }
    }

    #[test]
    fn split_layout_matches_interleaved() {
        let mesh = BoxMesh::new(
            3,
            [2, 1, 1],
            [1.0; 3],
            MeshDeformation::Sinusoidal { amplitude: 0.02 },
        );
        let geo = GeometricFactors::from_mesh(&mesh);
        let planes = geo.split();
        let npts = geo.nodes_per_element();
        for e in 0..geo.num_elements() {
            for node in 0..npts {
                for (c, plane) in planes.iter().enumerate() {
                    assert_eq!(plane[node + npts * e], geo.at(e, node, c));
                }
            }
        }
    }

    #[test]
    fn deformed_mesh_has_nonzero_cross_terms_and_positive_jacobian() {
        let mesh = BoxMesh::new(
            4,
            [2, 2, 2],
            [1.0; 3],
            MeshDeformation::Sinusoidal { amplitude: 0.05 },
        );
        let geo = GeometricFactors::from_mesh(&mesh);
        assert!(geo.min_jacobian() > 0.0);
        let max_cross = (0..geo.num_elements())
            .flat_map(|e| (0..geo.nodes_per_element()).map(move |n| (e, n)))
            .map(|(e, n)| geo.at(e, n, 1).abs().max(geo.at(e, n, 2).abs()))
            .fold(0.0_f64, f64::max);
        assert!(max_cross > 1e-6, "deformation must create cross terms");
    }

    #[test]
    fn diagonal_factors_are_positive() {
        let mesh = BoxMesh::new(
            3,
            [2, 2, 1],
            [1.0, 1.0, 2.0],
            MeshDeformation::Sinusoidal { amplitude: 0.04 },
        );
        let geo = GeometricFactors::from_mesh(&mesh);
        for e in 0..geo.num_elements() {
            for node in 0..geo.nodes_per_element() {
                assert!(geo.at(e, node, 0) > 0.0);
                assert!(geo.at(e, node, 3) > 0.0);
                assert!(geo.at(e, node, 5) > 0.0);
            }
        }
    }

    #[test]
    fn size_accounting() {
        let mesh = BoxMesh::unit_cube(7, 2);
        let geo = GeometricFactors::from_mesh(&mesh);
        assert_eq!(geo.size_bytes(), 8 * 6 * 512 * 8);
    }
}
