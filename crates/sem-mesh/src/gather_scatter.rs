//! Gather–scatter (direct stiffness summation).
//!
//! SEM solvers keep fields in element-local storage and enforce continuity by
//! summing the values of shared interface nodes after each operator
//! application — the `QQᵀ` ("dssum") operation.  The paper lists this
//! gather–scatter phase as one of the candidate phases around the core kernel;
//! here it is needed so the conjugate-gradient proxy (Nekbone) is complete.

use crate::field::ElementField;
use crate::mesh::BoxMesh;
use serde::{Deserialize, Serialize};

/// The gather–scatter operator of a mesh.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatherScatter {
    degree: usize,
    num_elements: usize,
    /// Local (element-major) index → global unique grid point.
    local_to_global: Vec<usize>,
    num_global: usize,
    /// How many local copies each *local* node has (its global multiplicity).
    multiplicity: Vec<f64>,
    /// CSR offsets into [`GatherScatter::csr_locals`]: the local copies of
    /// global node `g` are `csr_locals[csr_offsets[g]..csr_offsets[g + 1]]`,
    /// in ascending local order.
    csr_offsets: Vec<usize>,
    /// Local indices grouped by their global node (the inverse of
    /// `local_to_global`, in CSR form).
    csr_locals: Vec<usize>,
}

impl GatherScatter {
    /// Build the operator for a box mesh.
    #[must_use]
    pub fn from_mesh(mesh: &BoxMesh) -> Self {
        let local_to_global = mesh.local_to_global();
        let num_global = mesh.num_global_dofs();
        let mut counts = vec![0_usize; num_global];
        for &g in &local_to_global {
            counts[g] += 1;
        }
        let multiplicity = local_to_global.iter().map(|&g| counts[g] as f64).collect();

        // Invert local→global into a CSR global→locals map so dssum can run
        // as one gather-accumulate-scatter sweep without a global work vector.
        let mut csr_offsets = vec![0_usize; num_global + 1];
        for g in 0..num_global {
            csr_offsets[g + 1] = csr_offsets[g] + counts[g];
        }
        let mut next = csr_offsets[..num_global].to_vec();
        let mut csr_locals = vec![0_usize; local_to_global.len()];
        // Filling in ascending local order keeps each global node's copies
        // sorted, so the CSR sweep accumulates in the same order as the
        // legacy scatter/gather path (bitwise-identical sums).
        for (l, &g) in local_to_global.iter().enumerate() {
            csr_locals[next[g]] = l;
            next[g] += 1;
        }

        Self {
            degree: mesh.degree(),
            num_elements: mesh.num_elements(),
            local_to_global,
            num_global,
            multiplicity,
            csr_offsets,
            csr_locals,
        }
    }

    /// Number of unique global grid points.
    #[must_use]
    pub fn num_global_dofs(&self) -> usize {
        self.num_global
    }

    /// Number of local degrees of freedom.
    #[must_use]
    pub fn num_local_dofs(&self) -> usize {
        self.local_to_global.len()
    }

    /// The local-to-global map.
    #[must_use]
    pub fn local_to_global(&self) -> &[usize] {
        &self.local_to_global
    }

    /// Scatter-add local values into a global vector (`Qᵀ`):
    /// `global[g] = Σ_{local l : map(l) = g} local[l]`.
    #[must_use]
    pub fn scatter_add(&self, local: &ElementField) -> Vec<f64> {
        assert_eq!(local.len(), self.num_local_dofs(), "field size mismatch");
        let mut global = vec![0.0_f64; self.num_global];
        for (l, &g) in self.local_to_global.iter().enumerate() {
            global[g] += local.as_slice()[l];
        }
        global
    }

    /// Gather global values back to local storage (`Q`).
    #[must_use]
    pub fn gather(&self, global: &[f64]) -> ElementField {
        assert_eq!(global.len(), self.num_global, "global size mismatch");
        let mut local = ElementField::zeros(self.degree, self.num_elements);
        for (l, &g) in self.local_to_global.iter().enumerate() {
            local.as_mut_slice()[l] = global[g];
        }
        local
    }

    /// Direct stiffness summation `QQᵀ`: sum shared nodes and write the sum
    /// back to every copy.  This is the "dssum" of Nek5000/Nekbone.
    ///
    /// Runs as a single sweep over the precomputed CSR global→locals map —
    /// gather each global node's copies, accumulate, scatter the sum back —
    /// with no intermediate global vector, so a CG iteration performs no
    /// heap allocation here.  Bitwise identical to
    /// [`GatherScatter::direct_stiffness_sum_via_global`].
    pub fn direct_stiffness_sum(&self, field: &mut ElementField) {
        assert_eq!(field.len(), self.num_local_dofs(), "field size mismatch");
        let data = field.as_mut_slice();
        for g in 0..self.num_global {
            let locals = &self.csr_locals[self.csr_offsets[g]..self.csr_offsets[g + 1]];
            // Nodes with a single copy (element interiors, the vast majority)
            // are already "summed".
            if locals.len() == 1 {
                continue;
            }
            let mut sum = 0.0;
            for &l in locals {
                sum += data[l];
            }
            for &l in locals {
                data[l] = sum;
            }
        }
    }

    /// The legacy two-pass dssum: scatter-add into a freshly allocated global
    /// vector, then gather back.  Retained as the reference the CSR sweep is
    /// parity-tested against (and for callers that want the global vector).
    pub fn direct_stiffness_sum_via_global(&self, field: &mut ElementField) {
        let global = self.scatter_add(field);
        for (l, &g) in self.local_to_global.iter().enumerate() {
            field.as_mut_slice()[l] = global[g];
        }
    }

    /// The multiplicity of every local node (how many elements share it).
    #[must_use]
    pub fn multiplicity(&self) -> &[f64] {
        &self.multiplicity
    }

    /// A field of `1 / multiplicity`, used to weight local dot products so
    /// that every unique grid point is counted exactly once (the `vmult` of
    /// Nekbone).
    #[must_use]
    pub fn inverse_multiplicity(&self) -> ElementField {
        let data = self.multiplicity.iter().map(|&m| 1.0 / m).collect();
        ElementField::from_vec(self.degree, self.num_elements, data)
    }

    /// Whether a local field is continuous (all copies of each global node
    /// agree within `tol`).
    #[must_use]
    pub fn is_continuous(&self, field: &ElementField, tol: f64) -> bool {
        let mut seen: Vec<Option<f64>> = vec![None; self.num_global];
        for (l, &g) in self.local_to_global.iter().enumerate() {
            let v = field.as_slice()[l];
            match seen[g] {
                None => seen[g] = Some(v),
                Some(prev) => {
                    if (prev - v).abs() > tol * (1.0 + prev.abs()) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshDeformation;

    fn setup(degree: usize, e: usize) -> (BoxMesh, GatherScatter) {
        let mesh = BoxMesh::unit_cube(degree, e);
        let gs = GatherScatter::from_mesh(&mesh);
        (mesh, gs)
    }

    #[test]
    fn multiplicity_partition_of_unity() {
        // Summing 1/multiplicity over local nodes counts each global node once.
        let (mesh, gs) = setup(3, 3);
        let inv = gs.inverse_multiplicity();
        let total: f64 = inv.as_slice().iter().sum();
        assert!((total - mesh.num_global_dofs() as f64).abs() < 1e-9);
    }

    #[test]
    fn dssum_of_ones_gives_multiplicity() {
        let (_, gs) = setup(2, 2);
        let mut ones = ElementField::constant(2, 8, 1.0);
        gs.direct_stiffness_sum(&mut ones);
        for (l, &v) in ones.as_slice().iter().enumerate() {
            assert!((v - gs.multiplicity()[l]).abs() < 1e-13);
        }
    }

    #[test]
    fn dssum_is_idempotent_on_continuous_fields() {
        // Applying QQ^T to Q(global) multiplies by multiplicity; but applying
        // gather(scatter_add) twice after averaging is stable.  Check the
        // stronger, correct property: gather of a global vector is continuous
        // and dssum preserves continuity.
        let (mesh, gs) = setup(3, 2);
        let global: Vec<f64> = (0..gs.num_global_dofs())
            .map(|i| (i as f64).sin())
            .collect();
        let local = gs.gather(&global);
        assert!(gs.is_continuous(&local, 1e-14));
        let mut summed = local.clone();
        gs.direct_stiffness_sum(&mut summed);
        assert!(gs.is_continuous(&summed, 1e-14));
        assert_eq!(mesh.num_local_dofs(), local.len());
    }

    #[test]
    fn scatter_then_gather_scales_by_multiplicity_on_shared_nodes() {
        let (_, gs) = setup(2, 2);
        let local = ElementField::constant(2, 8, 1.0);
        let global = gs.scatter_add(&local);
        let back = gs.gather(&global);
        for (l, &v) in back.as_slice().iter().enumerate() {
            assert!((v - gs.multiplicity()[l]).abs() < 1e-13);
        }
    }

    #[test]
    fn csr_dssum_matches_the_legacy_global_vector_path_bitwise() {
        for (degree, elems) in [(2, 2), (3, 3), (5, 2)] {
            let (mesh, gs) = setup(degree, elems);
            let mut field = ElementField::zeros(degree, mesh.num_elements());
            let mut state = 0x9e37_79b9_u64;
            field.fill_with(|_, _, _, _| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                (state >> 11) as f64 / (1_u64 << 53) as f64 - 0.5
            });
            let mut csr = field.clone();
            let mut legacy = field;
            gs.direct_stiffness_sum(&mut csr);
            gs.direct_stiffness_sum_via_global(&mut legacy);
            assert_eq!(
                csr.as_slice(),
                legacy.as_slice(),
                "CSR sweep must be bitwise identical at degree {degree}, {elems}^3 elements"
            );
        }
    }

    #[test]
    fn continuity_detects_discontinuous_fields() {
        let (_, gs) = setup(2, 2);
        let mut field = ElementField::constant(2, 8, 1.0);
        // Perturb a single copy of a shared node (corner of element 0).
        let nx = 3;
        field.set(0, nx - 1, nx - 1, nx - 1, 5.0);
        assert!(!gs.is_continuous(&field, 1e-12));
    }

    #[test]
    fn interior_nodes_have_multiplicity_one() {
        let (mesh, gs) = setup(4, 2);
        let nx = mesh.points_per_direction();
        // A strictly interior node of element 0 (offset zero) is not shared.
        let l = 2 + nx * (2 + nx * 2);
        assert_eq!(gs.multiplicity()[l], 1.0);
    }

    #[test]
    fn corner_shared_by_eight_elements() {
        let (mesh, gs) = setup(2, 2);
        let nx = mesh.points_per_direction();
        // The last corner of element 0 is the centre of the 2x2x2 element
        // grid, shared by all 8 elements.
        let l = (nx - 1) + nx * ((nx - 1) + nx * (nx - 1));
        assert_eq!(gs.multiplicity()[l], 8.0);
    }

    #[test]
    fn works_on_deformed_meshes_too() {
        let mesh = BoxMesh::new(
            3,
            [2, 2, 2],
            [1.0; 3],
            MeshDeformation::Sinusoidal { amplitude: 0.05 },
        );
        let gs = GatherScatter::from_mesh(&mesh);
        // Node coordinates of shared nodes agree, so gathering the x
        // coordinate from a global vector reproduces the local x coordinates.
        let xs = &mesh.coordinates()[0];
        let global = gs.scatter_add(xs);
        let inv_mult = gs.inverse_multiplicity();
        let mut averaged = gs.gather(&global);
        // averaged currently holds the sum; divide by multiplicity to recover x.
        averaged.pointwise_mul(&inv_mult);
        for (a, b) in averaged.as_slice().iter().zip(xs.as_slice()) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
