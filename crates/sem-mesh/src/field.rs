//! Element-major nodal fields.
//!
//! A field holds `(N+1)^3` double-precision values per element, stored
//! contiguously element by element — the exact layout the paper's kernel
//! (Listing 1) and Nekbone use for `u` and `w`.

use serde::{Deserialize, Serialize};

/// A scalar nodal field over a collection of spectral elements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementField {
    degree: usize,
    num_elements: usize,
    data: Vec<f64>,
}

impl ElementField {
    /// Create a zero field for `num_elements` elements of polynomial degree
    /// `degree`.
    #[must_use]
    pub fn zeros(degree: usize, num_elements: usize) -> Self {
        let n = sem_basis::dofs_per_element(degree) * num_elements;
        Self {
            degree,
            num_elements,
            data: vec![0.0; n],
        }
    }

    /// Create a field filled with a constant.
    #[must_use]
    pub fn constant(degree: usize, num_elements: usize, value: f64) -> Self {
        let mut f = Self::zeros(degree, num_elements);
        f.data.iter_mut().for_each(|v| *v = value);
        f
    }

    /// Wrap an existing element-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != num_elements * (degree + 1)^3`.
    #[must_use]
    pub fn from_vec(degree: usize, num_elements: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            sem_basis::dofs_per_element(degree) * num_elements,
            "buffer length must match mesh size"
        );
        Self {
            degree,
            num_elements,
            data,
        }
    }

    /// Polynomial degree `N`.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of elements.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Degrees of freedom per element, `(N+1)^3`.
    #[must_use]
    pub fn dofs_per_element(&self) -> usize {
        sem_basis::dofs_per_element(self.degree)
    }

    /// Total number of local degrees of freedom (`E * (N+1)^3`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the field has no degrees of freedom.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw element-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the raw element-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The slice of one element's nodal values.
    #[must_use]
    pub fn element(&self, e: usize) -> &[f64] {
        let n = self.dofs_per_element();
        &self.data[e * n..(e + 1) * n]
    }

    /// Mutable slice of one element's nodal values.
    pub fn element_mut(&mut self, e: usize) -> &mut [f64] {
        let n = self.dofs_per_element();
        &mut self.data[e * n..(e + 1) * n]
    }

    /// Value at element `e`, tensor indices `(i, j, k)`.
    #[must_use]
    pub fn at(&self, e: usize, i: usize, j: usize, k: usize) -> f64 {
        let nx = self.degree + 1;
        self.element(e)[i + nx * (j + nx * k)]
    }

    /// Set the value at element `e`, tensor indices `(i, j, k)`.
    pub fn set(&mut self, e: usize, i: usize, j: usize, k: usize, value: f64) {
        let nx = self.degree + 1;
        let idx = i + nx * (j + nx * k);
        self.element_mut(e)[idx] = value;
    }

    /// Copy every value from `other` (BLAS `copy`); no allocation.
    ///
    /// # Panics
    /// Panics if the fields have different sizes.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "field size mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// `self <- self + alpha * other` (BLAS `axpy`).
    ///
    /// # Panics
    /// Panics if the fields have different sizes.
    pub fn axpy(&mut self, alpha: f64, other: &Self) {
        assert_eq!(self.len(), other.len(), "field size mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `self <- alpha * self + other`.
    pub fn scale_add(&mut self, alpha: f64, other: &Self) {
        assert_eq!(self.len(), other.len(), "field size mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = alpha * *a + b;
        }
    }

    /// Plain (unweighted) dot product of two local fields.
    ///
    /// Note that on a multi-element mesh shared interface nodes are counted
    /// once per element; use a multiplicity-weighted dot product (see
    /// [`crate::gather_scatter::GatherScatter::inverse_multiplicity`]) for a
    /// true global inner product.
    #[must_use]
    pub fn dot(&self, other: &Self) -> f64 {
        assert_eq!(self.len(), other.len(), "field size mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Dot product weighted by a third field (`sum_i self_i * other_i * w_i`),
    /// the `glsc3` of Nekbone.
    #[must_use]
    pub fn dot_weighted(&self, other: &Self, weight: &Self) -> f64 {
        assert_eq!(self.len(), other.len(), "field size mismatch");
        assert_eq!(self.len(), weight.len(), "weight size mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .zip(&weight.data)
            .map(|((a, b), w)| a * b * w)
            .sum()
    }

    /// Euclidean norm of the local data.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Maximum absolute nodal value.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Fill the field by evaluating `f(element, i, j, k)`.
    pub fn fill_with<F: FnMut(usize, usize, usize, usize) -> f64>(&mut self, mut f: F) {
        let nx = self.degree + 1;
        for e in 0..self.num_elements {
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        self.set(e, i, j, k, f(e, i, j, k));
                    }
                }
            }
        }
    }

    /// Pointwise multiplication: `self <- self .* other`.
    pub fn pointwise_mul(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "field size mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Set every value to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut f = ElementField::zeros(3, 2);
        assert_eq!(f.len(), 2 * 64);
        assert_eq!(f.dofs_per_element(), 64);
        f.set(1, 2, 3, 1, 7.5);
        assert_eq!(f.at(1, 2, 3, 1), 7.5);
        assert_eq!(f.at(0, 2, 3, 1), 0.0);
        // linear index check: i + nx*(j + nx*k) with nx = 4
        assert_eq!(f.element(1)[2 + 4 * (3 + 4)], 7.5);
    }

    #[test]
    fn axpy_and_dot() {
        let mut a = ElementField::constant(2, 3, 1.0);
        let b = ElementField::constant(2, 3, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-15));
        let n = a.len() as f64;
        assert!((a.dot(&b) - 4.0 * n).abs() < 1e-12);
        assert!((a.norm() - (4.0 * n).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn weighted_dot() {
        let a = ElementField::constant(1, 2, 3.0);
        let b = ElementField::constant(1, 2, 2.0);
        let mut w = ElementField::constant(1, 2, 0.0);
        w.set(0, 0, 0, 0, 1.0);
        assert!((a.dot_weighted(&b, &w) - 6.0).abs() < 1e-15);
    }

    #[test]
    fn fill_with_visits_every_node_once() {
        let mut f = ElementField::zeros(2, 2);
        let mut count = 0;
        f.fill_with(|_, _, _, _| {
            count += 1;
            1.0
        });
        assert_eq!(count, f.len());
        assert!((f.dot(&f) - f.len() as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_wrong_length() {
        let _ = ElementField::from_vec(2, 2, vec![0.0; 10]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn axpy_rejects_mismatched_fields() {
        let mut a = ElementField::zeros(2, 2);
        let b = ElementField::zeros(2, 3);
        a.axpy(1.0, &b);
    }
}
