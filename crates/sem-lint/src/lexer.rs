//! A dependency-free Rust token lexer, sufficient for lint passes.
//!
//! This is not a full Rust lexer: it distinguishes the token classes the
//! passes care about — identifiers, numbers, string/char literals,
//! lifetimes, punctuation, and (crucially, unlike a compiler lexer)
//! **comments**, which are preserved as tokens so passes can read
//! `// lint: ...` markers.  Nested block comments, raw strings with hash
//! fences, byte strings, and the char-vs-lifetime ambiguity are handled so
//! that no real workspace source confuses it.

/// The class of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal.
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`{`, `.`, `<`, …).
    Punct,
    /// `// …` comment (including doc comments), text without the newline.
    LineComment,
    /// `/* … */` comment (nesting folded into one token).
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// The token's text, owned (workspace sources are small).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this is punctuation matching `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }

    /// Whether this is an identifier equal to `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this is a comment (line or block).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lex `source` into tokens, comments included.  Unterminated constructs
/// are tolerated (the remainder becomes one token) — lint passes must not
/// crash on malformed input, they run before the compiler does.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start_line = line;
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            match chars[i + 1] {
                '/' => {
                    let begin = i;
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                    tokens.push(token(TokKind::LineComment, &chars[begin..i], start_line));
                    continue;
                }
                '*' => {
                    let begin = i;
                    i += 2;
                    let mut depth = 1;
                    while i < chars.len() && depth > 0 {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                            depth += 1;
                            i += 2;
                        } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    tokens.push(token(TokKind::BlockComment, &chars[begin..i], start_line));
                    continue;
                }
                _ => {}
            }
        }
        // Raw strings / byte strings / raw identifiers: r"…", r#"…"#,
        // br#"…"#, b"…", and r#ident.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && j < chars.len() && chars[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0;
            while j < chars.len() && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            let is_raw = j > i + 1 || (j < chars.len() && chars[j] == '"' && c == 'r');
            if j < chars.len() && chars[j] == '"' && (is_raw || c == 'b') {
                let begin = i;
                i = j + 1;
                // Scan to the closing quote followed by `hashes` hashes.
                // Raw strings have no escapes; plain b"…" does.
                let escapes = hashes == 0 && c == 'b' && begin + 1 == j;
                loop {
                    if i >= chars.len() {
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    if escapes && chars[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && i + 1 + k < chars.len() && chars[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break;
                        }
                    }
                    i += 1;
                }
                tokens.push(token(
                    TokKind::Str,
                    &chars[begin..i.min(chars.len())],
                    start_line,
                ));
                continue;
            }
            if c == 'r' && hashes == 1 && j < chars.len() && is_ident_start(chars[j]) {
                // Raw identifier r#type.
                let begin = i;
                i = j;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(token(TokKind::Ident, &chars[begin..i], start_line));
                continue;
            }
        }
        // Plain strings.
        if c == '"' {
            let begin = i;
            i += 1;
            while i < chars.len() {
                if chars[i] == '\n' {
                    line += 1;
                }
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            tokens.push(token(
                TokKind::Str,
                &chars[begin..i.min(chars.len())],
                start_line,
            ));
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime = match (next, after) {
                (Some(n), Some(a)) => (is_ident_start(n)) && a != '\'',
                (Some(n), None) => is_ident_start(n),
                _ => false,
            };
            if is_lifetime {
                let begin = i;
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(token(TokKind::Lifetime, &chars[begin..i], start_line));
                continue;
            }
            let begin = i;
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '\'' {
                    i += 1;
                    break;
                }
                if chars[i] == '\n' {
                    // Unterminated; bail on the line break.
                    break;
                }
                i += 1;
            }
            tokens.push(token(
                TokKind::Char,
                &chars[begin..i.min(chars.len())],
                start_line,
            ));
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let begin = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            tokens.push(token(TokKind::Ident, &chars[begin..i], start_line));
            continue;
        }
        // Numbers: consume alphanumerics and underscores (covers suffixes
        // and hex), plus a dot only when a digit follows (so `0..n` stays
        // three tokens).
        if c.is_ascii_digit() {
            let begin = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric()
                    || chars[i] == '_'
                    || (chars[i] == '.'
                        && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                        && !chars[begin..i].contains(&'.')))
            {
                i += 1;
            }
            tokens.push(token(TokKind::Number, &chars[begin..i], start_line));
            continue;
        }
        // Everything else: single-char punctuation.
        tokens.push(token(TokKind::Punct, &chars[i..=i], start_line));
        i += 1;
    }
    tokens
}

fn token(kind: TokKind, chars: &[char], line: usize) -> Token {
    Token {
        kind,
        text: chars.iter().collect(),
        line,
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Given the token index of a `{`, return the index of its matching `}`
/// (or the last token when unbalanced).  Comments inside count as tokens
/// but not as braces.
#[must_use]
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    debug_assert!(tokens[open].is_punct('{'));
    let mut depth = 0usize;
    for (offset, tok) in tokens[open..].iter().enumerate() {
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return open + offset;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_preserved_with_lines() {
        let toks = lex("let x = 1; // trailing\n/* block\nspan */ fn");
        let comment = toks
            .iter()
            .find(|t| t.kind == TokKind::LineComment)
            .unwrap();
        assert_eq!(comment.text, "// trailing");
        assert_eq!(comment.line, 1);
        let block = toks
            .iter()
            .find(|t| t.kind == TokKind::BlockComment)
            .unwrap();
        assert_eq!(block.line, 2);
        assert_eq!(toks.last().unwrap().line, 3, "lines advance inside blocks");
    }

    #[test]
    fn nested_block_comments_fold_into_one_token() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "x".to_string()));
    }

    #[test]
    fn strings_hide_their_contents_from_token_matching() {
        let toks = kinds(r#"let s = "clone // not a comment";"#);
        assert!(toks.iter().all(|(k, _)| *k != TokKind::LineComment));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("clone")));
    }

    #[test]
    fn raw_strings_with_fences_and_byte_strings_lex_whole() {
        let toks = kinds(r##"r#"embedded "quote" here"# b"bytes\"esc" r"plain""##);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 3, "{toks:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn ranges_do_not_glue_to_numbers() {
        let toks = kinds("for i in 0..10 { a[i] = 2.5; }");
        assert!(toks.contains(&(TokKind::Number, "0".to_string())));
        assert!(toks.contains(&(TokKind::Number, "10".to_string())));
        assert!(toks.contains(&(TokKind::Number, "2.5".to_string())));
    }

    #[test]
    fn matching_brace_skips_nested_blocks() {
        let toks = lex("{ a { b } c } d");
        let close = matching_brace(&toks, 0);
        assert!(toks[close].is_punct('}'));
        assert_eq!(toks[close + 1].text, "d");
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokKind::Ident, "r#type".to_string())));
    }
}
