//! Hot-path allocation hygiene.
//!
//! Regions marked `// lint: alloc-free` (the CG iteration loop, the
//! operator/preconditioner `apply_into` paths) must not allocate per
//! application: scratch is preallocated once and reused, which is what
//! makes the solver's inner loop cheap enough to price against modelled
//! hardware.  Inside a marked region this pass forbids:
//!
//! * allocating method calls: `.clone()`, `.to_vec()`, `.to_owned()`,
//!   `.to_string()`, `.collect()`;
//! * allocating constructors: `Vec::…`, `Box::…`, `String::…`,
//!   `VecDeque::…`, `BTreeMap::…`, `HashMap::…`;
//! * allocating macros: `vec![…]`, `format!(…)`.
//!
//! A justified `// lint: alloc-ok (reason)` waives one line — e.g. a
//! one-time lazy init the region can prove runs once.

use crate::lexer::TokKind;
use crate::markers::Directive;
use crate::passes::{next_code_token, prev_code_token};
use crate::{Finding, SourceFile};

const PASS: &str = "alloc-free";

const METHODS: [&str; 5] = ["clone", "to_vec", "to_owned", "to_string", "collect"];
const CTORS: [&str; 6] = ["Vec", "Box", "String", "VecDeque", "BTreeMap", "HashMap"];
const MACROS: [&str; 2] = ["vec", "format"];

/// Run the pass (see module docs).
#[must_use]
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let regions = file.regions(Directive::AllocFree);
        if regions.is_empty() {
            continue;
        }
        let waived = file.waived_lines(Directive::AllocOk);
        for (open, close) in regions {
            for index in open..=close {
                let tok = &file.tokens[index];
                if tok.kind != TokKind::Ident || waived.contains(&tok.line) {
                    continue;
                }
                let name = tok.text.as_str();
                if METHODS.contains(&name)
                    && prev_code_token(&file.tokens, index).is_some_and(|p| p.is_punct('.'))
                {
                    findings.push(file.finding(
                        PASS,
                        tok.line,
                        format!("`.{name}()` allocates inside an alloc-free region"),
                    ));
                    continue;
                }
                if CTORS.contains(&name)
                    && next_code_token(&file.tokens, index).is_some_and(|n| n.is_punct(':'))
                {
                    findings.push(file.finding(
                        PASS,
                        tok.line,
                        format!("`{name}::…` constructor inside an alloc-free region"),
                    ));
                    continue;
                }
                if MACROS.contains(&name)
                    && next_code_token(&file.tokens, index).is_some_and(|n| n.is_punct('!'))
                {
                    findings.push(file.finding(
                        PASS,
                        tok.line,
                        format!("`{name}!` allocates inside an alloc-free region"),
                    ));
                }
            }
        }
    }
    findings
}
