//! Wall-clock discipline.
//!
//! This workspace models hardware it cannot run: most "seconds" are
//! *modelled* (analytic FPGA timing), and only a few measurement modules
//! read the host clock.  Two rules keep those worlds apart:
//!
//! 1. `Instant` / `SystemTime` may appear only in files carrying a
//!    `// lint: wall-clock (reason)` pragma — the whitelisted measurement
//!    modules.  Everywhere else, touching the host clock is a category
//!    error (a modelled solver must stay deterministic).
//! 2. No line may mix measured-time identifiers (`elapsed`,
//!    `*wall_seconds*`, `*wall_clock*`) with modelled-time identifiers
//!    (`*simulated*`, `*modelled*`/`*modeled*`) — comparing host seconds
//!    against model seconds is the classic apples-to-oranges bug this repo
//!    has to guard against.  Lines that genuinely need both (e.g. a
//!    measured-vs-predicted report) carry
//!    `// lint: wall-clock-compare-ok (reason)`.
//! 3. A pragma'd workspace file must implement `ObsClock`: since sem-obs,
//!    the observability clock is the *single* sanctioned `Instant` site —
//!    every other module reads host time through `sem_obs::WallTimer` (no
//!    pragma needed), so a new pragma elsewhere is a policy regression.

use crate::lexer::TokKind;
use crate::markers::Directive;
use crate::{Finding, SourceFile};
use std::collections::BTreeMap;

const PASS: &str = "wall-clock";

fn is_clock_type(name: &str) -> bool {
    name == "Instant" || name == "SystemTime"
}

fn is_measured(name: &str) -> bool {
    name == "elapsed" || name.contains("wall_seconds") || name.contains("wall_clock")
}

fn is_modelled(name: &str) -> bool {
    name.contains("simulated") || name.contains("modelled") || name.contains("modeled")
}

/// Run the pass (see module docs).
#[must_use]
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.is_support() {
            continue;
        }
        let whitelisted = file.has_pragma(Directive::WallClockFile);
        if whitelisted && !file.tokens.iter().any(|t| t.is_ident("ObsClock")) {
            let line = file
                .markers
                .iter()
                .find(|m| m.directive == Directive::WallClockFile)
                .map_or(1, |m| m.line);
            findings.push(
                file.finding(
                    PASS,
                    line,
                    "`// lint: wall-clock` pragma on a file that does not implement `ObsClock`; \
                 the sem-obs clock is the single sanctioned `Instant` site — measure through \
                 `sem_obs::WallTimer` instead of adding a new pragma"
                        .to_string(),
                ),
            );
        }
        if !whitelisted {
            let mut seen_lines = std::collections::BTreeSet::new();
            for tok in &file.tokens {
                if tok.kind == TokKind::Ident
                    && is_clock_type(&tok.text)
                    && seen_lines.insert(tok.line)
                {
                    findings.push(file.finding(
                        PASS,
                        tok.line,
                        format!(
                            "`{}` outside a whitelisted measurement module; add \
                             `// lint: wall-clock (reason)` if this file is one",
                            tok.text
                        ),
                    ));
                }
            }
        }
        // Mixing rule applies everywhere, pragma or not.
        let waived = file.waived_lines(Directive::WallClockCompareOk);
        let mut lines: BTreeMap<usize, (bool, bool)> = BTreeMap::new();
        for tok in &file.tokens {
            if tok.kind != TokKind::Ident {
                continue;
            }
            let entry = lines.entry(tok.line).or_default();
            entry.0 |= is_measured(&tok.text);
            entry.1 |= is_modelled(&tok.text);
        }
        for (line, (measured, modelled)) in lines {
            if measured && modelled && !waived.contains(&line) {
                findings.push(
                    file.finding(
                        PASS,
                        line,
                        "measured wall-clock seconds mixed with modelled/simulated seconds \
                     on one line; if intentional, waive with \
                     `// lint: wall-clock-compare-ok (reason)`"
                            .to_string(),
                    ),
                );
            }
        }
    }
    findings
}
