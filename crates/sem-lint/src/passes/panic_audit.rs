//! Unsafe/panic audit.
//!
//! Two rules:
//!
//! 1. Every non-support crate root (`src/lib.rs`) must carry
//!    `#![forbid(unsafe_code)]`.  `#![deny(unsafe_code)]` is accepted only
//!    when a comment directly above the attribute justifies why forbid is
//!    not possible (support crates — vendored dependency stand-ins — are
//!    exempt from the rule entirely).
//! 2. Regions marked `// lint: no-panic` (the serving host's worker
//!    threads, where one panic strands sibling deques) must not contain
//!    panicking calls: `.unwrap()`, `.expect(…)`, `panic!`,
//!    `unreachable!`, `todo!`, `unimplemented!`, or the `assert*!`
//!    family.  `// lint: panic-ok (reason)` waives one line.

use crate::lexer::TokKind;
use crate::markers::Directive;
use crate::passes::{next_code_token, prev_code_token};
use crate::{Finding, SourceFile};

const PASS: &str = "panic-audit";

const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Whether `rel` is a crate root the forbid-unsafe rule governs.
fn is_policed_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    rel.starts_with("crates/")
        && !rel.starts_with("crates/support/")
        && rel.ends_with("/src/lib.rs")
}

/// How a crate root declares its unsafe-code stance.
#[derive(Debug, PartialEq, Eq)]
enum UnsafeStance {
    Forbid,
    /// `deny` plus whether a comment sits directly above the attribute.
    Deny {
        justified: bool,
    },
    Absent,
}

fn unsafe_stance(file: &SourceFile) -> UnsafeStance {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        // Match `# ! [ <level> ( unsafe_code ) ]` token by token.
        if !toks[i].is_punct('#') {
            continue;
        }
        let code: Vec<&crate::lexer::Token> = toks[i..]
            .iter()
            .filter(|t| !t.is_comment())
            .take(7)
            .collect();
        if code.len() == 7
            && code[1].is_punct('!')
            && code[2].is_punct('[')
            && code[3].kind == TokKind::Ident
            && code[4].is_punct('(')
            && code[5].is_ident("unsafe_code")
            && code[6].is_punct(')')
        {
            match code[3].text.as_str() {
                "forbid" => return UnsafeStance::Forbid,
                "deny" => {
                    // Justified only by a *plain* comment directly above —
                    // doc comments (`//!`, `///`) are prose every file has,
                    // not a decision record.
                    let justified = toks[..i].last().is_some_and(|t| {
                        t.kind == TokKind::LineComment
                            && !t.text.starts_with("///")
                            && !t.text.starts_with("//!")
                    });
                    return UnsafeStance::Deny { justified };
                }
                _ => {}
            }
        }
    }
    UnsafeStance::Absent
}

/// Run the pass (see module docs).
#[must_use]
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if is_policed_crate_root(&file.rel) {
            match unsafe_stance(file) {
                UnsafeStance::Forbid | UnsafeStance::Deny { justified: true } => {}
                UnsafeStance::Deny { justified: false } => findings.push(
                    file.finding(
                        PASS,
                        1,
                        "crate uses `#![deny(unsafe_code)]`; upgrade to `forbid` or justify \
                     the deny with a comment directly above the attribute"
                            .to_string(),
                    ),
                ),
                UnsafeStance::Absent => findings.push(file.finding(
                    PASS,
                    1,
                    "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
                )),
            }
        }
        let regions = file.regions(Directive::NoPanic);
        if regions.is_empty() {
            continue;
        }
        let waived = file.waived_lines(Directive::PanicOk);
        for (open, close) in regions {
            for index in open..=close {
                let tok = &file.tokens[index];
                if tok.kind != TokKind::Ident || waived.contains(&tok.line) {
                    continue;
                }
                let name = tok.text.as_str();
                if PANIC_METHODS.contains(&name)
                    && prev_code_token(&file.tokens, index).is_some_and(|p| p.is_punct('.'))
                {
                    findings.push(file.finding(
                        PASS,
                        tok.line,
                        format!("`.{name}()` can panic inside a no-panic region"),
                    ));
                    continue;
                }
                if PANIC_MACROS.contains(&name)
                    && next_code_token(&file.tokens, index).is_some_and(|n| n.is_punct('!'))
                {
                    findings.push(file.finding(
                        PASS,
                        tok.line,
                        format!("`{name}!` panics inside a no-panic region"),
                    ));
                }
            }
        }
    }
    findings
}
