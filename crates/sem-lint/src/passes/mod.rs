//! The lint passes.  Each exposes `run(&[SourceFile]) -> Vec<Finding>`;
//! per-file rules and workspace-level rules both fit that shape.

pub mod alloc_free;
pub mod backend_contract;
pub mod bench_schema;
pub mod obs_naming;
pub mod obs_schema;
pub mod panic_audit;
pub mod wall_clock;

use crate::lexer::Token;

/// The previous non-comment token before `index`, if any.
#[must_use]
pub(crate) fn prev_code_token(tokens: &[Token], index: usize) -> Option<&Token> {
    tokens[..index].iter().rev().find(|t| !t.is_comment())
}

/// The next non-comment token after `index`, if any.
#[must_use]
pub(crate) fn next_code_token(tokens: &[Token], index: usize) -> Option<&Token> {
    tokens[index + 1..].iter().find(|t| !t.is_comment())
}

/// Find `fn <name>`'s body as a token range `(open, close)`, scanning the
/// whole stream.  Returns the first match.
#[must_use]
pub(crate) fn fn_body(tokens: &[Token], name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("fn") && tokens[i + 1].is_ident(name) {
            let open = tokens[i + 2..]
                .iter()
                .position(|t| t.is_punct('{'))
                .map(|off| i + 2 + off)?;
            return Some((open, crate::lexer::matching_brace(tokens, open)));
        }
        i += 1;
    }
    None
}

/// Whether a token range contains an identifier equal to `name`.
#[must_use]
pub(crate) fn range_has_ident(tokens: &[Token], range: (usize, usize), name: &str) -> bool {
    tokens[range.0..=range.1].iter().any(|t| t.is_ident(name))
}
