//! Bench-schema drift lint.
//!
//! The committed `BENCH_*.json` reports at the workspace root are written by
//! the bench bins in `crates/bench/src/bin/` through serde.  Nothing ties
//! the two together at compile time: renaming a report field silently
//! orphans the committed JSON, and adding a field silently leaves the
//! committed report stale until someone remembers to re-run the bench.
//! This pass pins them to each other:
//!
//! 1. **Stale-code drift** — every key in a committed `BENCH_<name>.json`
//!    must be a field of some `#[derive(Serialize)]` struct in the
//!    workspace (support crates excluded).  A key nothing can produce means
//!    the producing code was renamed or removed.
//! 2. **Stale-report drift** — every field of every `Serialize` struct
//!    defined in `crates/bench/src/bin/<name>.rs` must appear as a key in
//!    its committed `BENCH_<name>.json` (when one is committed).  A missing
//!    key means the bench was not re-run after the schema grew.  Fields
//!    carrying a `#[serde(...)]` attribute (renames, conditional skips) are
//!    exempt — the lexer does not evaluate serde's runtime behaviour.
//! 3. Every committed `BENCH_<name>.json` must have a producing bin.

use crate::lexer::{matching_brace, TokKind};
use crate::passes::{next_code_token, prev_code_token};
use crate::{Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

const PASS: &str = "bench-schema";

/// One field of a `Serialize` struct: name, definition line, and whether a
/// `#[serde(...)]` attribute sits on it (which exempts it from rule 2).
struct FieldInfo {
    name: String,
    line: usize,
    has_serde_attr: bool,
}

/// One `Serialize` struct found in a source file.
struct StructInfo {
    name: String,
    fields: Vec<FieldInfo>,
}

/// Whether the token at `index` starts a `derive(...)` attribute argument
/// list containing `Serialize`; returns the index just past the closing
/// `)` when it does.
fn serialize_derive_end(file: &SourceFile, index: usize) -> Option<usize> {
    let toks = &file.tokens;
    if !toks[index].is_ident("derive") {
        return None;
    }
    let mut i = index + 1;
    while i < toks.len() && toks[i].is_comment() {
        i += 1;
    }
    if i >= toks.len() || !toks[i].is_punct('(') {
        return None;
    }
    let mut depth = 1_usize;
    let mut has_serialize = false;
    i += 1;
    while i < toks.len() && depth > 0 {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
        } else if toks[i].is_ident("Serialize") {
            has_serialize = true;
        }
        i += 1;
    }
    if has_serialize {
        Some(i)
    } else {
        None
    }
}

/// Skip attributes (`#[...]`) and comments starting at `i`; returns the
/// first index of real code.
fn skip_attrs_and_comments(file: &SourceFile, mut i: usize) -> usize {
    let toks = &file.tokens;
    loop {
        while i < toks.len() && toks[i].is_comment() {
            i += 1;
        }
        if i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
            let mut depth = 0_usize;
            i += 1;
            while i < toks.len() {
                if toks[i].is_punct('[') {
                    depth += 1;
                } else if toks[i].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        } else {
            return i;
        }
    }
}

/// All `#[derive(...Serialize...)]` structs with named fields in `file`.
fn serialize_structs(file: &SourceFile) -> Vec<StructInfo> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let Some(after_derive) = serialize_derive_end(file, i) else {
            i += 1;
            continue;
        };
        // Expect (after further attributes): `pub? struct Name ... {`.
        let mut j = skip_attrs_and_comments(file, after_derive);
        // The derive's closing `]` is consumed by skip only if we land on
        // `#`; step over a stray `]` from the enclosing attribute.
        while j < toks.len() && toks[j].is_punct(']') {
            j = skip_attrs_and_comments(file, j + 1);
        }
        if j < toks.len() && toks[j].is_ident("pub") {
            j += 1;
            // `pub(crate)` and friends.
            if j < toks.len() && toks[j].is_punct('(') {
                while j < toks.len() && !toks[j].is_punct(')') {
                    j += 1;
                }
                j += 1;
            }
        }
        if j >= toks.len() || !toks[j].is_ident("struct") {
            i = after_derive;
            continue;
        }
        let Some(name_tok) = toks.get(j + 1) else {
            break;
        };
        let name = name_tok.text.clone();
        // Find the opening brace (skipping generics); tuple/unit structs
        // hit `(`/`;` first and are skipped.
        let mut k = j + 2;
        let mut body_open = None;
        while k < toks.len() {
            if toks[k].is_punct('{') {
                body_open = Some(k);
                break;
            }
            if toks[k].is_punct('(') || toks[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        let Some(open) = body_open else {
            i = after_derive;
            continue;
        };
        let close = matching_brace(toks, open);
        let mut fields = Vec::new();
        let mut depth = 0_usize;
        let mut t = open + 1;
        while t < close {
            let tok = &toks[t];
            if tok.is_punct('{') || tok.is_punct('(') || tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct('}') || tok.is_punct(')') || tok.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && tok.kind == TokKind::Ident {
                // A field name: `ident :` not part of a `::` path.
                let next_is_colon = next_code_token(toks, t).is_some_and(|n| n.is_punct(':'));
                let prev_is_colon = prev_code_token(toks, t).is_some_and(|p| p.is_punct(':'));
                let colon_index = (t + 1..close).find(|&c| !toks[c].is_comment());
                let double_colon = colon_index
                    .and_then(|c| (c + 1..close).find(|&c2| !toks[c2].is_comment()))
                    .is_some_and(|c2| toks[c2].is_punct(':'));
                if next_is_colon && !prev_is_colon && !double_colon {
                    // Any `#[serde(...)]` attribute between the previous
                    // comma (or the body start) and the field exempts it.
                    let has_serde_attr = field_has_serde_attr(file, open, t);
                    fields.push(FieldInfo {
                        name: tok.text.clone(),
                        line: tok.line,
                        has_serde_attr,
                    });
                }
            }
            t += 1;
        }
        out.push(StructInfo { name, fields });
        i = close + 1;
    }
    out
}

/// Whether a `serde` attribute sits between the previous field separator
/// and the field name at `field_index`.
fn field_has_serde_attr(file: &SourceFile, body_open: usize, field_index: usize) -> bool {
    let toks = &file.tokens;
    let mut i = field_index;
    // Walk back to the previous `,` or the body's `{`, looking for `serde`
    // inside an attribute.
    while i > body_open {
        i -= 1;
        let tok = &toks[i];
        if tok.is_punct(',') || i == body_open {
            break;
        }
        if tok.is_ident("serde") {
            return true;
        }
    }
    false
}

/// Keys of a JSON document: every quoted string directly followed by `:`.
/// Shared with the obs-schema pass, which pins the OBS artifacts the same
/// way this pass pins the BENCH reports.
pub(crate) fn json_keys(text: &str) -> BTreeSet<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut keys = BTreeSet::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '"' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut key = String::new();
        while j < chars.len() && chars[j] != '"' {
            if chars[j] == '\\' && j + 1 < chars.len() {
                j += 1;
            }
            key.push(chars[j]);
            j += 1;
        }
        let mut k = j + 1;
        while k < chars.len() && chars[k].is_whitespace() {
            k += 1;
        }
        if k < chars.len() && chars[k] == ':' {
            keys.insert(key);
        }
        i = j + 1;
    }
    keys
}

/// The core check, separated from filesystem discovery for testability:
/// `reports` maps a report name (`batched` for `BENCH_batched.json`) to its
/// JSON text.
fn check(files: &[SourceFile], reports: &BTreeMap<String, String>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Rule 1 needs the union of Serialize-struct fields across the repo.
    let mut workspace_fields: BTreeSet<String> = BTreeSet::new();
    for file in files {
        if file.is_support() {
            continue;
        }
        for s in serialize_structs(file) {
            workspace_fields.extend(s.fields.into_iter().map(|f| f.name));
        }
    }

    for (name, text) in reports {
        let json_rel = format!("BENCH_{name}.json");
        let bin_rel = format!("crates/bench/src/bin/{name}.rs");
        let keys = json_keys(text);
        let Some(bin) = files.iter().find(|f| f.rel == bin_rel) else {
            findings.push(Finding {
                pass: PASS,
                file: json_rel,
                line: 1,
                message: format!("no producing bench bin at {bin_rel}"),
            });
            continue;
        };

        // Rule 1: every JSON key must be producible by some struct.
        for key in &keys {
            if !workspace_fields.contains(key) {
                findings.push(Finding {
                    pass: PASS,
                    file: json_rel.clone(),
                    line: 1,
                    message: format!(
                        "key `{key}` matches no field of any Serialize struct in the \
                         workspace (stale report or renamed field — re-run the bench)"
                    ),
                });
            }
        }

        // Rule 2: every field the bin's own report structs declare must be
        // in the committed JSON.
        for s in serialize_structs(bin) {
            for field in &s.fields {
                if field.has_serde_attr {
                    continue;
                }
                if !keys.contains(&field.name) {
                    findings.push(bin.finding(
                        PASS,
                        field.line,
                        format!(
                            "field `{}` of Serialize struct `{}` is missing from {json_rel} \
                             (stale committed report — re-run the bench)",
                            field.name, s.name
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// Run the pass: discover committed `BENCH_*.json` reports at `root` and
/// check them against the workspace sources (see module docs).
#[must_use]
pub fn run(files: &[SourceFile], root: &Path) -> Vec<Finding> {
    let mut reports = BTreeMap::new();
    if let Ok(entries) = std::fs::read_dir(root) {
        for entry in entries.flatten() {
            let file_name = entry.file_name();
            let Some(name) = file_name.to_str() else {
                continue;
            };
            if let Some(stem) = name
                .strip_prefix("BENCH_")
                .and_then(|s| s.strip_suffix(".json"))
            {
                if let Ok(text) = std::fs::read_to_string(entry.path()) {
                    reports.insert(stem.to_string(), text);
                }
            }
        }
    }
    check(files, &reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(rel: &str, text: &str) -> SourceFile {
        let (file, errors) = SourceFile::parse(rel.to_string(), text);
        assert!(errors.is_empty(), "{errors:?}");
        file
    }

    const BIN: &str = r#"
        use serde::Serialize;
        #[derive(Debug, Clone, Serialize)]
        struct Report {
            degree: usize,
            rows: Vec<Row>,
        }
        #[derive(Serialize)]
        pub struct Row {
            backend: String,
            seconds: f64,
            #[serde(skip_serializing_if = "Option::is_none")]
            optional_note: Option<String>,
        }
        struct NotSerialized {
            internal: usize,
        }
    "#;

    #[test]
    fn extracts_serialize_struct_fields_only() {
        let file = source("crates/bench/src/bin/demo.rs", BIN);
        let structs = serialize_structs(&file);
        let names: Vec<&str> = structs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["Report", "Row"]);
        let row = &structs[1];
        let fields: Vec<&str> = row.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fields, vec!["backend", "seconds", "optional_note"]);
        assert!(row.fields[2].has_serde_attr);
        assert!(!row.fields[0].has_serde_attr);
    }

    #[test]
    fn json_keys_ignore_values_with_colons() {
        let keys = json_keys(r#"{"backend":"cpu:optimized","rows":[{"seconds":1.5}]}"#);
        assert_eq!(
            keys.into_iter().collect::<Vec<_>>(),
            vec!["backend", "rows", "seconds"]
        );
    }

    #[test]
    fn consistent_report_is_clean() {
        let file = source("crates/bench/src/bin/demo.rs", BIN);
        let mut reports = BTreeMap::new();
        reports.insert(
            "demo".to_string(),
            r#"{"degree":7,"rows":[{"backend":"cpu:optimized","seconds":0.5}]}"#.to_string(),
        );
        let findings = check(std::slice::from_ref(&file), &reports);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn stale_report_key_and_missing_field_are_flagged() {
        let file = source("crates/bench/src/bin/demo.rs", BIN);
        let mut reports = BTreeMap::new();
        // `old_name` no longer exists in any struct; `seconds` is missing
        // from the committed report.
        reports.insert(
            "demo".to_string(),
            r#"{"degree":7,"old_name":1,"rows":[{"backend":"x"}]}"#.to_string(),
        );
        let findings = check(std::slice::from_ref(&file), &reports);
        let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(messages[0].contains("`old_name`"));
        assert!(messages[1].contains("`seconds`"));
    }

    #[test]
    fn orphan_report_without_a_bin_is_flagged() {
        let mut reports = BTreeMap::new();
        reports.insert("ghost".to_string(), "{}".to_string());
        let findings = check(&[], &reports);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no producing bench bin"));
    }
}
