//! Metric-name convention lint.
//!
//! Every metric registered through the sem-obs recorder sinks
//! (`counter_add`, `gauge_set`, `observe`) must be named
//! `sem_<crate>_<noun>_<unit>` — lowercase snake-case, a crate token from
//! `sem_obs::metrics::METRIC_CRATES`, at least one noun segment, and a
//! unit suffix from `sem_obs::metrics::METRIC_UNITS`.  The registry
//! asserts the same predicate at runtime; this pass moves the failure to
//! lint time and catches call sites tests never execute.
//!
//! Only string-*literal* first arguments are checkable statically; names
//! built at runtime are left to the registry's assert.  A line that must
//! carry an off-convention literal (e.g. a test proving the registry
//! rejects one) waives with `// lint: obs-naming-ok (reason)`.

use crate::lexer::{TokKind, Token};
use crate::markers::Directive;
use crate::{Finding, SourceFile};
use sem_obs::name_matches_convention;

const PASS: &str = "obs-naming";

/// Recorder/registry methods whose first argument is a metric name.
const SINKS: &[&str] = &["counter_add", "gauge_set", "observe"];

/// Index of the next non-comment token after `i`, if any.
fn next_code_idx(tokens: &[Token], i: usize) -> Option<usize> {
    (i + 1..tokens.len()).find(|&j| !tokens[j].is_comment())
}

/// The literal text of a plain `"…"` string token, quotes stripped;
/// `None` for raw/byte strings (no metric name needs those).
fn plain_str_contents(tok: &Token) -> Option<&str> {
    tok.text.strip_prefix('"')?.strip_suffix('"')
}

/// Run the pass (see module docs).
#[must_use]
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.is_support() {
            continue;
        }
        let waived = file.waived_lines(Directive::ObsNamingOk);
        let toks = &file.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if tok.kind != TokKind::Ident || !SINKS.contains(&tok.text.as_str()) {
                continue;
            }
            // A call site: `sink ( "name" , …`.  Method *definitions* hit
            // `(` too, but their first token is `&`/`self`, not a string
            // literal, so they fall through the Str check below.
            let Some(open) = next_code_idx(toks, i) else {
                continue;
            };
            if !toks[open].is_punct('(') {
                continue;
            }
            let Some(arg) = next_code_idx(toks, open) else {
                continue;
            };
            if toks[arg].kind != TokKind::Str {
                continue;
            }
            let Some(name) = plain_str_contents(&toks[arg]) else {
                continue;
            };
            if !name_matches_convention(name) && !waived.contains(&toks[arg].line) {
                findings.push(file.finding(
                    PASS,
                    toks[arg].line,
                    format!(
                        "metric `{name}` violates the `sem_<crate>_<noun>_<unit>` naming \
                         convention (crate from sem-obs METRIC_CRATES, unit from METRIC_UNITS)"
                    ),
                ));
            }
        }
    }
    findings
}
