//! OBS artifact schema lint.
//!
//! The CI smoke step runs `bench serve --trace` and exports three
//! observability artifacts at the workspace root; committed samples live
//! there too.  Like the bench-schema pass pins `BENCH_*.json` to the
//! serde structs that write them, this pass pins the OBS artifacts to the
//! exporters:
//!
//! 1. `OBS_trace.json` — Chrome trace-event JSON: a `traceEvents` array
//!    whose every event carries `name`/`ph`/`pid`/`tid`, with `ts` and
//!    `dur` on every `ph:"X"` complete event.
//! 2. `OBS_metrics.prom` — Prometheus text: every series line's metric
//!    name must satisfy the `sem_<crate>_<noun>_<unit>` convention
//!    (histogram `_bucket`/`_sum`/`_count` series resolve to their family
//!    name) and carry a numeric value.
//! 3. `OBS_drift.json` — the calibration report: `total_samples` plus
//!    rows pinned to `DriftReport::to_json`'s key set (incl. the
//!    `suspect_term` naming the implicated `perf_model` term).
//! 4. `OBS_races.json` — the race-detector battery: one object per case,
//!    pinned to `CaseReport::to_json`'s key set.
//!
//! Artifacts are validated when present; presence itself is enforced by
//! the CI smoke step that generates them.

use crate::passes::bench_schema::json_keys;
use crate::Finding;
use sem_obs::name_matches_convention;
use std::path::Path;

const PASS: &str = "obs-schema";

fn finding(file: &str, message: String) -> Finding {
    Finding {
        pass: PASS,
        file: file.to_string(),
        line: 1,
        message,
    }
}

/// Split the objects of the first JSON array after `marker` (depth-1
/// objects, string-aware).  `None` when the marker is absent.
fn array_objects<'a>(text: &'a str, marker: &str) -> Option<Vec<&'a str>> {
    let start = text.find(marker)? + marker.len();
    let bytes = text.as_bytes();
    let mut objects = Vec::new();
    let mut depth = 0_usize;
    let mut in_string = false;
    let mut object_start = None;
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i];
        if in_string {
            if c == b'\\' {
                i += 2;
                continue;
            }
            if c == b'"' {
                in_string = false;
            }
        } else {
            match c {
                b'"' => in_string = true,
                b'{' => {
                    if depth == 0 {
                        object_start = Some(i);
                    }
                    depth += 1;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        if let Some(begin) = object_start.take() {
                            objects.push(&text[begin..=i]);
                        }
                    }
                }
                b']' if depth == 0 => return Some(objects),
                _ => {}
            }
        }
        i += 1;
    }
    Some(objects)
}

/// Validate Chrome trace-event JSON (rule 1).
fn check_trace(rel: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(events) = array_objects(text, "\"traceEvents\":[") else {
        findings.push(finding(
            rel,
            "not a Chrome trace: no `traceEvents` array".to_string(),
        ));
        return findings;
    };
    if events.is_empty() {
        findings.push(finding(rel, "empty `traceEvents` array".to_string()));
    }
    for (index, event) in events.iter().enumerate() {
        let keys = json_keys(event);
        for required in ["name", "ph", "pid", "tid"] {
            if !keys.contains(required) {
                findings.push(finding(
                    rel,
                    format!("trace event #{index} is missing required key `{required}`"),
                ));
            }
        }
        if event.contains("\"ph\":\"X\"") {
            for required in ["ts", "dur"] {
                if !keys.contains(required) {
                    findings.push(finding(
                        rel,
                        format!("complete event #{index} is missing `{required}`"),
                    ));
                }
            }
        }
    }
    findings
}

/// Validate the Prometheus text snapshot (rule 2).
fn check_prom(rel: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut series = 0_usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        series += 1;
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        let family_ok = name_matches_convention(name)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                name.strip_suffix(suffix)
                    .is_some_and(name_matches_convention)
            });
        if !family_ok {
            findings.push(Finding {
                pass: PASS,
                file: rel.to_string(),
                line: lineno + 1,
                message: format!(
                    "series `{name}` does not resolve to a `sem_<crate>_<noun>_<unit>` family"
                ),
            });
        }
        let value_ok = line
            .rsplit(' ')
            .next()
            .is_some_and(|v| v.parse::<f64>().is_ok());
        if !value_ok {
            findings.push(Finding {
                pass: PASS,
                file: rel.to_string(),
                line: lineno + 1,
                message: "series line does not end in a numeric value".to_string(),
            });
        }
    }
    if series == 0 {
        findings.push(finding(rel, "no metric series in snapshot".to_string()));
    }
    findings
}

/// Keys `DriftReport::to_json` writes per row (rule 3).
const DRIFT_ROW_KEYS: &[&str] = &[
    "stage",
    "backend",
    "samples",
    "mean_residual_seconds",
    "mean_abs_residual_seconds",
    "max_abs_residual_seconds",
    "mean_relative_error",
    "suspect_term",
];

/// Validate the drift calibration report (rule 3).
fn check_drift(rel: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let keys = json_keys(text);
    if !keys.contains("total_samples") || !keys.contains("rows") {
        findings.push(finding(
            rel,
            "not a drift report: missing `total_samples`/`rows`".to_string(),
        ));
        return findings;
    }
    let rows = array_objects(text, "\"rows\":[").unwrap_or_default();
    if rows.is_empty() {
        findings.push(finding(
            rel,
            "drift report has no rows (no admitted request was sampled)".to_string(),
        ));
    }
    for (index, row) in rows.iter().enumerate() {
        let row_keys = json_keys(row);
        for required in DRIFT_ROW_KEYS {
            if !row_keys.contains(*required) {
                findings.push(finding(
                    rel,
                    format!("drift row #{index} is missing key `{required}`"),
                ));
            }
        }
    }
    findings
}

/// Keys `CaseReport::to_json` writes per case (rule 4).
const RACE_CASE_KEYS: &[&str] = &[
    "name",
    "workers",
    "jobs",
    "schedules",
    "exhausted",
    "longest_trace",
    "transitions",
    "violations",
];

/// Validate the race-detector battery export (rule 4).
fn check_races(rel: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let trimmed = text.trim();
    if !trimmed.starts_with('[') {
        findings.push(finding(rel, "not a JSON array of case reports".to_string()));
        return findings;
    }
    let cases = array_objects(trimmed, "[").unwrap_or_default();
    if cases.is_empty() {
        findings.push(finding(rel, "empty race-detector battery".to_string()));
    }
    for (index, case) in cases.iter().enumerate() {
        let keys = json_keys(case);
        for required in RACE_CASE_KEYS {
            if !keys.contains(*required) {
                findings.push(finding(
                    rel,
                    format!("case report #{index} is missing key `{required}`"),
                ));
            }
        }
    }
    findings
}

/// An artifact validator: (relative path, finding list for its text).
type ArtifactCheck = fn(&str, &str) -> Vec<Finding>;

/// Run the pass: validate whichever OBS artifacts are committed or were
/// just generated at `root` (see module docs).
#[must_use]
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let artifacts: [(&str, ArtifactCheck); 4] = [
        ("OBS_trace.json", check_trace),
        ("OBS_metrics.prom", check_prom),
        ("OBS_drift.json", check_drift),
        ("OBS_races.json", check_races),
    ];
    for (rel, check) in artifacts {
        if let Ok(text) = std::fs::read_to_string(root.join(rel)) {
            findings.extend(check(rel, &text));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_trace_passes_and_broken_events_are_flagged() {
        let good = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"thread_name","ph":"M","pid":0,"tid":3,"args":{"name":"solve"}},
            {"name":"solve","cat":"deterministic","ph":"X","pid":0,"tid":3,"ts":0,"dur":5,"args":{"label":"fpga{x}"}}]}"#;
        assert!(check_trace("OBS_trace.json", good).is_empty());
        let missing_dur = r#"{"traceEvents":[{"name":"solve","ph":"X","pid":0,"tid":3,"ts":0}]}"#;
        let findings = check_trace("OBS_trace.json", missing_dur);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`dur`"));
        let not_a_trace = r#"{"rows":[]}"#;
        assert!(!check_trace("OBS_trace.json", not_a_trace).is_empty());
    }

    #[test]
    fn prom_lines_must_resolve_to_convention_families() {
        let good = "# TYPE sem_serve_requests_total counter\n\
                    sem_serve_requests_total{backend=\"cpu\"} 5\n\
                    sem_serve_request_latency_seconds_bucket{le=\"+Inf\"} 4\n\
                    sem_serve_request_latency_seconds_sum 2.5\n\
                    sem_serve_request_latency_seconds_count 4\n";
        assert!(check_prom("OBS_metrics.prom", good).is_empty());
        let bad = "queue_depth 3\nsem_serve_requests_total five\n";
        let findings = check_prom("OBS_metrics.prom", bad);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].line, 1);
        assert!(findings[1].message.contains("numeric value"));
    }

    #[test]
    fn drift_rows_are_pinned_to_the_report_key_set() {
        let good = r#"{"total_samples":2,"rows":[{"stage":"upload","backend":"fpga",
            "samples":2,"mean_residual_seconds":0.1,"mean_abs_residual_seconds":0.1,
            "max_abs_residual_seconds":0.2,"mean_relative_error":0.05,
            "suspect_term":"link_gbs"}]}"#;
        assert!(check_drift("OBS_drift.json", good).is_empty());
        let stale = r#"{"total_samples":1,"rows":[{"stage":"upload","backend":"fpga"}]}"#;
        let findings = check_drift("OBS_drift.json", stale);
        assert_eq!(findings.len(), DRIFT_ROW_KEYS.len() - 2, "{findings:?}");
        assert!(!check_drift("OBS_drift.json", r#"{"total_samples":0,"rows":[]}"#).is_empty());
    }

    #[test]
    fn race_battery_cases_are_pinned_to_the_case_key_set() {
        let good = r#"[{"name":"steal-storm","workers":2,"jobs":3,"schedules":10,
            "exhausted":true,"longest_trace":9,"transitions":["wo>ws"],"violations":[]}]"#;
        assert!(check_races("OBS_races.json", good).is_empty());
        let findings = check_races("OBS_races.json", r#"[{"name":"x"}]"#);
        assert_eq!(findings.len(), RACE_CASE_KEYS.len() - 1);
        assert!(!check_races("OBS_races.json", "{}").is_empty());
    }
}
