//! Backend-contract coherence.
//!
//! The `AxBackend` trait ships permissive defaults (`fuses_dssum` →
//! `false`, `precond_on_device` → `false`, pricing hooks → `None`/`0`), so
//! a backend that *claims* a capability without overriding the hooks that
//! price it silently gets nonsense numbers instead of a compile error.
//! This pass closes that hole structurally:
//!
//! * an `impl AxBackend for X` whose `fuses_dssum` can return `true` must
//!   override `simulated_seconds_per_batch` (the fused pass is priced per
//!   batch, not per round trip);
//! * an impl whose `precond_on_device` can return `true` must override
//!   both `simulated_seconds_per_precond` and `precond_table_bytes`;
//! * the preconditioner registry must stay closed under naming: every
//!   `PrecondSpec` variant appears in `all()` and in `from_name_suffix`,
//!   every suffix literal `name_suffix` can produce parses back through
//!   `from_name_suffix`, and `extended_registry_names` crosses the base
//!   registry with `PrecondSpec::all` (so new variants surface in the
//!   registry automatically).

use crate::lexer::{matching_brace, TokKind, Token};
use crate::passes::{fn_body, range_has_ident};
use crate::{Finding, SourceFile};

const PASS: &str = "backend-contract";

/// Methods defined at depth 1 of a brace-delimited block, with whether
/// each body contains a literal `true`.
fn block_methods(tokens: &[Token], open: usize, close: usize) -> Vec<(String, bool)> {
    let mut methods = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i <= close {
        let tok = &tokens[i];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 1 && tok.is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    let body_open = tokens[i + 2..=close]
                        .iter()
                        .position(|t| t.is_punct('{'))
                        .map(|off| i + 2 + off);
                    if let Some(body_open) = body_open {
                        let body_close = matching_brace(tokens, body_open);
                        let returns_true = range_has_ident(tokens, (body_open, body_close), "true");
                        methods.push((name_tok.text.clone(), returns_true));
                        // Skip the whole body (both braces): depth stays at
                        // the impl-block level.
                        i = body_close + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    methods
}

/// String literal contents (quotes stripped) in a token range.
fn string_literals(tokens: &[Token], range: (usize, usize)) -> Vec<String> {
    tokens[range.0..=range.1]
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .filter_map(|t| {
            let first = t.text.find('"')?;
            let last = t.text.rfind('"')?;
            (last > first).then(|| t.text[first + 1..last].to_string())
        })
        .collect()
}

/// Variant identifiers of `enum <name>` (idents at brace depth 1 outside
/// attribute brackets).
fn enum_variants(tokens: &[Token], name: &str) -> Option<Vec<String>> {
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("enum") && tokens[i + 1].is_ident(name) {
            let open = tokens[i + 2..]
                .iter()
                .position(|t| t.is_punct('{'))
                .map(|off| i + 2 + off)?;
            let close = matching_brace(tokens, open);
            let mut variants = Vec::new();
            let mut brace_depth = 0usize;
            let mut bracket_depth = 0usize;
            let mut paren_depth = 0usize;
            for tok in &tokens[open..=close] {
                if tok.is_punct('{') {
                    brace_depth += 1;
                } else if tok.is_punct('}') {
                    brace_depth = brace_depth.saturating_sub(1);
                } else if tok.is_punct('[') {
                    bracket_depth += 1;
                } else if tok.is_punct(']') {
                    bracket_depth = bracket_depth.saturating_sub(1);
                } else if tok.is_punct('(') {
                    paren_depth += 1;
                } else if tok.is_punct(')') {
                    paren_depth = paren_depth.saturating_sub(1);
                } else if tok.kind == TokKind::Ident
                    && brace_depth == 1
                    && bracket_depth == 0
                    && paren_depth == 0
                {
                    variants.push(tok.text.clone());
                }
            }
            return Some(variants);
        }
        i += 1;
    }
    None
}

fn check_ax_impls(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut i = 0;
    while i + 3 < toks.len() {
        if !(toks[i].is_ident("impl")
            && toks[i + 1].is_ident("AxBackend")
            && toks[i + 2].is_ident("for"))
        {
            i += 1;
            continue;
        }
        let backend = toks[i + 3].text.clone();
        let Some(open) = toks[i + 4..]
            .iter()
            .position(|t| t.is_punct('{'))
            .map(|off| i + 4 + off)
        else {
            break;
        };
        let close = matching_brace(toks, open);
        let methods = block_methods(toks, open, close);
        let defines = |name: &str| methods.iter().any(|(n, _)| n == name);
        let claims = |name: &str| methods.iter().any(|(n, t)| n == name && *t);
        if claims("fuses_dssum") && !defines("simulated_seconds_per_batch") {
            findings.push(file.finding(
                PASS,
                toks[i].line,
                format!(
                    "`{backend}` claims `fuses_dssum` but inherits the default \
                     `simulated_seconds_per_batch`; the fused pass must be priced"
                ),
            ));
        }
        if claims("precond_on_device") {
            for hook in ["simulated_seconds_per_precond", "precond_table_bytes"] {
                if !defines(hook) {
                    findings.push(file.finding(
                        PASS,
                        toks[i].line,
                        format!(
                            "`{backend}` claims `precond_on_device` but inherits the \
                             default `{hook}`"
                        ),
                    ));
                }
            }
        }
        i = close;
    }
}

fn check_precond_registry(files: &[SourceFile], findings: &mut Vec<Finding>) {
    // The enum and its naming functions live in one file (sem-solver's
    // precond module); find that file.
    let Some(file) = files
        .iter()
        .find(|f| !f.is_support() && enum_variants(&f.tokens, "PrecondSpec").is_some())
    else {
        return;
    };
    let variants = enum_variants(&file.tokens, "PrecondSpec").unwrap_or_default();
    let all = fn_body(&file.tokens, "all");
    let name_suffix = fn_body(&file.tokens, "name_suffix");
    let from_suffix = fn_body(&file.tokens, "from_name_suffix");
    match all {
        Some(range) => {
            for variant in &variants {
                if !range_has_ident(&file.tokens, range, variant) {
                    findings.push(file.finding(
                        PASS,
                        file.tokens[range.0].line,
                        format!("`PrecondSpec::all` omits variant `{variant}`"),
                    ));
                }
            }
        }
        None => findings.push(file.finding(
            PASS,
            1,
            "`PrecondSpec` lacks an `all()` enumeration".to_string(),
        )),
    }
    if let Some(range) = from_suffix {
        for variant in &variants {
            if !range_has_ident(&file.tokens, range, variant) {
                findings.push(file.finding(
                    PASS,
                    file.tokens[range.0].line,
                    format!("`PrecondSpec::from_name_suffix` cannot parse variant `{variant}`"),
                ));
            }
        }
        // Round trip: every suffix name_suffix can emit must parse back.
        if let Some(emit) = name_suffix {
            let emitted = string_literals(&file.tokens, emit);
            let accepted = string_literals(&file.tokens, from_suffix.unwrap_or(emit));
            for suffix in emitted {
                if !accepted.contains(&suffix) {
                    findings.push(file.finding(
                        PASS,
                        file.tokens[emit.0].line,
                        format!(
                            "registry suffix `+{suffix}` is emitted by `name_suffix` but \
                             not accepted by `from_name_suffix`"
                        ),
                    ));
                }
            }
        }
    }
    // The extended registry must cross with the full spec set.
    if let Some(reg_file) = files
        .iter()
        .find(|f| !f.is_support() && fn_body(&f.tokens, "extended_registry_names").is_some())
    {
        let range =
            fn_body(&reg_file.tokens, "extended_registry_names").expect("just located by fn_body");
        if !(range_has_ident(&reg_file.tokens, range, "PrecondSpec")
            && range_has_ident(&reg_file.tokens, range, "all"))
        {
            findings.push(
                reg_file.finding(
                    PASS,
                    reg_file.tokens[range.0].line,
                    "`extended_registry_names` must cross the base registry with \
                 `PrecondSpec::all()` so every suffix stays listed"
                        .to_string(),
                ),
            );
        }
    }
}

/// Run the pass (see module docs).
#[must_use]
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.is_support() {
            continue;
        }
        check_ax_impls(file, &mut findings);
    }
    check_precond_registry(files, &mut findings);
    findings
}
