//! The `sem-lint` binary: lint the workspace, then explore schedules.
//!
//! ```text
//! cargo run --release -p sem-lint            # both engines
//! cargo run --release -p sem-lint -- --lint-only
//! cargo run --release -p sem-lint -- --race-only
//! cargo run --release -p sem-lint -- --races-json OBS_races.json
//! SEM_SCHED_ITERS=200 cargo run -p sem-lint  # bounded race budget
//! ```
//!
//! Exits non-zero on any lint finding or schedule-contract violation —
//! CI runs it as a hard gate.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

/// Default schedule budget: comfortably past the thousand-distinct-schedule
/// bar while staying a sub-second step on a laptop.
const DEFAULT_SCHED_ITERS: usize = 2000;

fn workspace_root() -> Option<PathBuf> {
    let start = std::env::current_dir().ok()?;
    sem_lint::workspace::find_root(&start).or_else(|| {
        sem_lint::workspace::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
    })
}

fn run_lints() -> bool {
    let Some(root) = workspace_root() else {
        eprintln!("sem-lint: cannot locate a cargo workspace root");
        return false;
    };
    let findings = sem_lint::lint_workspace(&root);
    if findings.is_empty() {
        println!("sem-lint: lints clean ({})", root.display());
        return true;
    }
    for finding in &findings {
        println!("{finding}");
    }
    println!("sem-lint: {} finding(s)", findings.len());
    false
}

fn run_races(json_path: Option<&str>) -> bool {
    let budget = std::env::var("SEM_SCHED_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SCHED_ITERS);
    let reports = sem_serve::standard_battery(budget);
    let mut ok = true;
    let mut total = 0;
    for report in &reports {
        total += report.schedules;
        let status = if report.violations.is_empty() {
            "ok"
        } else {
            ok = false;
            "VIOLATED"
        };
        println!(
            "race: {:24} {} workers, {} jobs: {:5} schedules{} (longest trace {}, {} op-pair classes) {status}",
            report.name,
            report.workers,
            report.jobs,
            report.schedules,
            if report.exhausted { " [exhausted]" } else { "" },
            report.longest_trace,
            report.transitions.len(),
        );
        println!("race:   coverage: {}", report.transition_map());
        for violation in &report.violations {
            println!("race:   {violation}");
        }
    }
    println!(
        "race: {total} distinct schedules across {} cases (budget {budget})",
        reports.len()
    );
    if let Some(path) = json_path {
        let mut json = String::from("[");
        for (i, report) in reports.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&report.to_json());
        }
        json.push_str("]\n");
        match std::fs::write(path, json) {
            Ok(()) => println!("race: wrote machine-readable battery to {path}"),
            Err(err) => {
                eprintln!("sem-lint: cannot write {path}: {err}");
                ok = false;
            }
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let lint_only = args.iter().any(|a| a == "--lint-only");
    let race_only = args.iter().any(|a| a == "--race-only");
    let mut races_json: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--lint-only" | "--race-only" => {}
            "--races-json" => match iter.next() {
                Some(path) => races_json = Some(path.clone()),
                None => {
                    eprintln!("sem-lint: --races-json requires a path argument");
                    return ExitCode::FAILURE;
                }
            },
            unknown => {
                eprintln!(
                    "sem-lint: unknown argument `{unknown}` \
                     (accepted: --lint-only, --race-only, --races-json <path>)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let mut ok = true;
    if !race_only {
        ok &= run_lints();
    }
    if !lint_only {
        ok &= run_races(races_json.as_deref());
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
