//! The `// lint: …` marker grammar the passes understand.
//!
//! Markers are plain line comments (doc comments are prose, not policy):
//!
//! * `// lint: alloc-free` — the next braced block is a hot path: no
//!   allocating calls inside (see the alloc-free pass).
//! * `// lint: no-panic` — the next braced block must not contain panicking
//!   calls (see the panic-audit pass).
//! * `// lint: wall-clock (reason)` — file pragma: this module is a
//!   whitelisted measurement module and may use `Instant`.
//! * `// lint: alloc-ok (reason)` / `// lint: panic-ok (reason)` /
//!   `// lint: wall-clock-compare-ok (reason)` /
//!   `// lint: obs-naming-ok (reason)` — waive one finding on the
//!   marker's own line (trailing comment) or, for a standalone comment
//!   line, on the next line carrying code.
//!
//! Region markers accept an optional parenthesized note; **waivers and the
//! wall-clock pragma require a non-empty justification** — an unjustified
//! waiver is itself a finding, so the workspace cannot silently grow
//! unexplained exemptions.

use crate::lexer::{TokKind, Token};

/// The directive a marker comment carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Region: no allocation in the next braced block.
    AllocFree,
    /// Region: no panicking calls in the next braced block.
    NoPanic,
    /// File pragma: whitelisted wall-clock measurement module.
    WallClockFile,
    /// Line waiver for the alloc-free pass.
    AllocOk,
    /// Line waiver for the panic-audit pass.
    PanicOk,
    /// Line waiver for the measured-vs-modelled comparison rule.
    WallClockCompareOk,
    /// Line waiver for the metric-name convention rule.
    ObsNamingOk,
}

impl Directive {
    fn parse(word: &str) -> Option<Self> {
        match word {
            "alloc-free" => Some(Self::AllocFree),
            "no-panic" => Some(Self::NoPanic),
            "wall-clock" => Some(Self::WallClockFile),
            "alloc-ok" => Some(Self::AllocOk),
            "panic-ok" => Some(Self::PanicOk),
            "wall-clock-compare-ok" => Some(Self::WallClockCompareOk),
            "obs-naming-ok" => Some(Self::ObsNamingOk),
            _ => None,
        }
    }

    /// Whether this directive demands a non-empty `(reason)`.
    #[must_use]
    pub fn requires_reason(self) -> bool {
        matches!(
            self,
            Self::WallClockFile
                | Self::AllocOk
                | Self::PanicOk
                | Self::WallClockCompareOk
                | Self::ObsNamingOk
        )
    }
}

/// One parsed marker.
#[derive(Debug, Clone)]
pub struct Marker {
    /// What the marker directs.
    pub directive: Directive,
    /// The parenthesized justification, when present.
    pub reason: Option<String>,
    /// 1-based line of the marker comment.
    pub line: usize,
    /// Index of the comment token in the file's token stream.
    pub token_index: usize,
}

/// A malformed marker (unknown directive, missing justification).  The
/// framework reports these as findings of the `lint-marker` pass.
#[derive(Debug, Clone)]
pub struct MarkerError {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

/// Extract every marker from a token stream; unknown or unjustified
/// `lint:` comments come back as errors.
#[must_use]
pub fn parse_markers(tokens: &[Token]) -> (Vec<Marker>, Vec<MarkerError>) {
    let mut markers = Vec::new();
    let mut errors = Vec::new();
    for (token_index, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        // Strip `//`; reject doc comments (`///`, `//!`) as marker hosts.
        let body = &tok.text[2..];
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let body = body.trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (word, tail) = match rest.find(['(', ' ']) {
            Some(cut) => rest.split_at(cut),
            None => (rest, ""),
        };
        let Some(directive) = Directive::parse(word.trim()) else {
            errors.push(MarkerError {
                line: tok.line,
                message: format!("unknown lint marker directive `{}`", word.trim()),
            });
            continue;
        };
        let tail = tail.trim();
        let reason = tail
            .strip_prefix('(')
            .and_then(|inner| inner.strip_suffix(')'))
            .map(str::trim)
            .filter(|inner| !inner.is_empty())
            .map(str::to_owned);
        if directive.requires_reason() && reason.is_none() {
            errors.push(MarkerError {
                line: tok.line,
                message: format!(
                    "`lint: {}` requires a non-empty parenthesized justification",
                    word.trim()
                ),
            });
            continue;
        }
        markers.push(Marker {
            directive,
            reason,
            line: tok.line,
            token_index,
        });
    }
    (markers, errors)
}

/// The source line a waiver marker covers: its own line when code shares
/// it (trailing comment), otherwise the next line carrying a non-comment
/// token.
#[must_use]
pub fn waived_line(tokens: &[Token], marker: &Marker) -> usize {
    let trailing = tokens
        .iter()
        .take(marker.token_index)
        .rev()
        .take_while(|t| t.line == marker.line)
        .any(|t| !t.is_comment());
    if trailing {
        return marker.line;
    }
    tokens[marker.token_index + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map_or(marker.line, |t| t.line)
}

/// The token range `(open, close)` of the braced region a region marker
/// governs: the first `{` after the marker through its matching `}`.
/// `None` when no block follows.
#[must_use]
pub fn region_range(tokens: &[Token], marker: &Marker) -> Option<(usize, usize)> {
    let open = tokens[marker.token_index + 1..]
        .iter()
        .position(|t| t.is_punct('{'))
        .map(|offset| marker.token_index + 1 + offset)?;
    Some((open, crate::lexer::matching_brace(tokens, open)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn markers_parse_with_and_without_reasons() {
        let tokens = lex("// lint: alloc-free\nfn f() {}\n// lint: wall-clock (timing module)\n");
        let (markers, errors) = parse_markers(&tokens);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(markers.len(), 2);
        assert_eq!(markers[0].directive, Directive::AllocFree);
        assert_eq!(markers[0].reason, None);
        assert_eq!(markers[1].directive, Directive::WallClockFile);
        assert_eq!(markers[1].reason.as_deref(), Some("timing module"));
    }

    #[test]
    fn waivers_without_justification_are_errors() {
        let tokens = lex("// lint: alloc-ok\nlet v = x.clone();\n// lint: panic-ok ()\n");
        let (markers, errors) = parse_markers(&tokens);
        assert!(markers.is_empty());
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].message.contains("justification"));
    }

    #[test]
    fn unknown_directives_are_errors() {
        let tokens = lex("// lint: allocfree\n");
        let (markers, errors) = parse_markers(&tokens);
        assert!(markers.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("allocfree"));
    }

    #[test]
    fn doc_comments_and_prose_are_not_markers() {
        let tokens = lex("/// lint: alloc-free\n//! lint: no-panic\n// mentions lint rules\n");
        let (markers, errors) = parse_markers(&tokens);
        assert!(markers.is_empty());
        assert!(errors.is_empty());
    }

    #[test]
    fn waived_line_is_trailing_or_next_code_line() {
        let src =
            "let a = 1; // lint: alloc-ok (scratch)\n// lint: panic-ok (startup)\nlet b = 2;\n";
        let tokens = lex(src);
        let (markers, _) = parse_markers(&tokens);
        assert_eq!(waived_line(&tokens, &markers[0]), 1, "trailing waiver");
        assert_eq!(waived_line(&tokens, &markers[1]), 3, "standalone waiver");
    }

    #[test]
    fn region_range_finds_the_next_block() {
        let src = "// lint: alloc-free\nfn hot(x: &mut [f64]) { x[0] = 1.0; }\nfn cold() {}\n";
        let tokens = lex(src);
        let (markers, _) = parse_markers(&tokens);
        let (open, close) = region_range(&tokens, &markers[0]).unwrap();
        assert!(tokens[open].is_punct('{'));
        assert!(tokens[close].is_punct('}'));
        assert!(
            tokens[close + 1].is_ident("fn"),
            "region ends before cold()"
        );
    }
}
