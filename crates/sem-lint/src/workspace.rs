//! Workspace discovery: find the cargo workspace root and enumerate every
//! Rust source file the lints should see.

use std::fs;
use std::path::{Path, PathBuf};

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(candidate) = dir {
        let manifest = candidate.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(candidate.to_path_buf());
            }
        }
        dir = candidate.parent();
    }
    None
}

/// Directories the walk never descends into: build output, VCS metadata,
/// and the lint fixtures themselves (deliberately lint-dirty snippets).
fn skip_dir(name: &str) -> bool {
    name == "target" || name.starts_with('.') || name == "fixtures"
}

/// Every `.rs` file under `root`, workspace-relative and sorted for
/// deterministic reports.
#[must_use]
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if path.is_dir() {
                if !skip_dir(name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    found.push(rel.to_path_buf());
                }
            }
        }
    }
    found.sort();
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("sem-lint lives inside the workspace");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn collects_workspace_sources_but_not_fixtures_or_target() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).unwrap();
        let sources = collect_sources(&root);
        assert!(sources.iter().any(|p| p.ends_with("src/lib.rs")));
        assert!(
            sources.iter().all(|p| {
                p.components().all(|c| {
                    let name = c.as_os_str().to_string_lossy();
                    name != "target" && name != "fixtures"
                })
            }),
            "skipped directories leaked into the source list"
        );
        let sorted: Vec<_> = {
            let mut copy = sources.clone();
            copy.sort();
            copy
        };
        assert_eq!(sources, sorted, "deterministic ordering");
    }
}
