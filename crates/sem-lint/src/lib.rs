//! `sem-lint`: workspace invariant checker for the semfpga repo.
//!
//! Two engines live here:
//!
//! 1. **Lint passes** — a dependency-free Rust token [`lexer`] plus a small
//!    pass framework runs repo-specific lints over every workspace source
//!    file: wall-clock discipline ([`passes::wall_clock`]), hot-path
//!    allocation hygiene ([`passes::alloc_free`]), backend-contract
//!    coherence ([`passes::backend_contract`]), an unsafe/panic audit
//!    ([`passes::panic_audit`]), metric-name conventions
//!    ([`passes::obs_naming`]), bench-report schema pinning
//!    ([`passes::bench_schema`]), and observability-artifact schema
//!    pinning ([`passes::obs_schema`]).  Policy is declared in-source with
//!    [`markers`] (`// lint: …` comments); waivers require justifications
//!    the linter parses, so exemptions are never silent.
//! 2. **Race detection** — the `sem-lint` binary drives
//!    `sem_serve::explore`, the schedule-exploring race detector for the
//!    work-stealing serving host, and fails on any contract violation.
//!
//! The binary (`cargo run -p sem-lint`) runs both engines and exits
//! non-zero on any finding; CI uses it as a hard gate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod markers;
pub mod passes;
pub mod workspace;

use markers::{Directive, Marker};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced it (`wall-clock`, `alloc-free`, …).
    pub pass: &'static str,
    /// Workspace-relative file path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

/// One lexed workspace source file, with its lint markers parsed.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Lexed tokens, comments included.
    pub tokens: Vec<lexer::Token>,
    /// Parsed `// lint:` markers.
    pub markers: Vec<Marker>,
}

impl SourceFile {
    /// Lex and parse one file; malformed markers come back as findings of
    /// the `lint-marker` pass.
    #[must_use]
    pub fn parse(rel: String, text: &str) -> (Self, Vec<Finding>) {
        let tokens = lexer::lex(text);
        let (markers, errors) = markers::parse_markers(&tokens);
        let findings = errors
            .into_iter()
            .map(|e| Finding {
                pass: "lint-marker",
                file: rel.clone(),
                line: e.line,
                message: e.message,
            })
            .collect();
        (
            Self {
                rel,
                tokens,
                markers,
            },
            findings,
        )
    }

    /// Whether this file belongs to a vendored support crate (exempt from
    /// repo policy: support code stands in for external dependencies).
    #[must_use]
    pub fn is_support(&self) -> bool {
        self.rel.starts_with("crates/support/")
    }

    /// Whether the file carries a given file-scope pragma.
    #[must_use]
    pub fn has_pragma(&self, directive: Directive) -> bool {
        self.markers.iter().any(|m| m.directive == directive)
    }

    /// The lines waived for a given waiver directive.
    #[must_use]
    pub fn waived_lines(&self, directive: Directive) -> BTreeSet<usize> {
        self.markers
            .iter()
            .filter(|m| m.directive == directive)
            .map(|m| markers::waived_line(&self.tokens, m))
            .collect()
    }

    /// Token ranges of the regions a region directive governs.
    #[must_use]
    pub fn regions(&self, directive: Directive) -> Vec<(usize, usize)> {
        self.markers
            .iter()
            .filter(|m| m.directive == directive)
            .filter_map(|m| markers::region_range(&self.tokens, m))
            .collect()
    }

    /// Helper for passes: emit a finding against this file.
    #[must_use]
    pub fn finding(&self, pass: &'static str, line: usize, message: String) -> Finding {
        Finding {
            pass,
            file: self.rel.clone(),
            line,
            message,
        }
    }
}

/// Load every workspace source under `root`; unreadable files are skipped
/// (the compiler will complain about them, not the linter).
#[must_use]
pub fn load_workspace(root: &Path) -> (Vec<SourceFile>, Vec<Finding>) {
    let mut files = Vec::new();
    let mut findings = Vec::new();
    for rel in workspace::collect_sources(root) {
        let Ok(text) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let rel = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let (file, marker_findings) = SourceFile::parse(rel, &text);
        findings.extend(marker_findings);
        files.push(file);
    }
    (files, findings)
}

/// Run every lint pass over the loaded files and return the combined,
/// deterministically ordered findings.
#[must_use]
pub fn run_passes(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(passes::wall_clock::run(files));
    findings.extend(passes::alloc_free::run(files));
    findings.extend(passes::backend_contract::run(files));
    findings.extend(passes::panic_audit::run(files));
    findings.extend(passes::obs_naming::run(files));
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.pass, &a.message).cmp(&(&b.file, b.line, b.pass, &b.message))
    });
    findings
}

/// Lint the whole workspace rooted at `root`: load, parse markers, run all
/// passes (including the root-aware bench-schema and obs-schema passes,
/// which need the committed `BENCH_*.json` reports and `OBS_*` artifacts
/// next to the sources).
#[must_use]
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let (files, mut findings) = load_workspace(root);
    findings.extend(run_passes(&files));
    findings.extend(passes::bench_schema::run(&files, root));
    findings.extend(passes::obs_schema::run(root));
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.pass, &a.message).cmp(&(&b.file, b.line, b.pass, &b.message))
    });
    findings
}
