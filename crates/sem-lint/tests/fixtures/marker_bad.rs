// Fixture: malformed markers. Not compiled; lexed by tests/lints.rs.

// lint: alloc-okay
fn typo() {}

fn unjustified(x: Option<u32>) -> u32 {
    // lint: panic-ok
    x.unwrap()
}

// lint: wall-clock ()
fn empty_reason() {}
