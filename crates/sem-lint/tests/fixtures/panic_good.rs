// Fixture: clean no-panic region with a justified waiver and a forbid
// attribute. Not compiled; lexed by tests/lints.rs.
#![forbid(unsafe_code)]

// lint: no-panic
fn worker(jobs: &[usize]) -> usize {
    let Some(first) = jobs.first() else {
        return 0;
    };
    // lint: panic-ok (pool construction guarantees nonempty; violated only by a harness bug)
    let top = jobs.iter().copied().max().expect("nonempty");
    first + top
}
