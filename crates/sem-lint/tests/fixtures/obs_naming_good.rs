// Fixture: clean metric names at recorder sinks. Lexed by tests/lints.rs.
impl Recorder {
    pub fn counter_add(&self, name: &'static str, labels: &[(&str, &str)], delta: u64) {
        self.registry.counter_add(name, labels, delta);
    }
}

fn instrument(obs: &Recorder) {
    obs.counter_add("sem_solver_cg_iterations_total", &[], 1);
    obs.gauge_set("sem_serve_makespan_seconds", &[], 2.0);
    obs.observe("sem_accel_solve_seconds", &[("backend", "fpga")], 0.1);
}
