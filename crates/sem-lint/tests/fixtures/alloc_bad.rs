// Fixture: allocation in a hot region. Not compiled; lexed by tests/lints.rs.

// lint: alloc-free
fn hot(input: &[f64], out: &mut Vec<f64>) {
    let copy = input.to_vec();
    let doubled: Vec<f64> = copy.iter().map(|x| x * 2.0).collect();
    let mut extra = Vec::new();
    extra.push(format!("{doubled:?}"));
    out.clone_from(&doubled);
    let boxed = vec![1.0; 8];
    out.extend_from_slice(&boxed);
}

fn cold(input: &[f64]) -> Vec<f64> {
    input.to_vec() // outside the region: fine
}
