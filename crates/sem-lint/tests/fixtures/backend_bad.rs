// Fixture: AxBackend impls claiming capabilities without pricing them.
// Not compiled; lexed by tests/lints.rs.

struct FusedNoPricing;

impl AxBackend for FusedNoPricing {
    fn fuses_dssum(&self) -> bool {
        true
    }
}

struct DevicePrecondNoHooks;

impl AxBackend for DevicePrecondNoHooks {
    fn precond_on_device(&self, precond: PrecondSpec) -> bool {
        !matches!(precond, PrecondSpec::Identity) && true
    }

    fn simulated_seconds_per_precond(&self, precond: PrecondSpec) -> Option<f64> {
        let _ = precond;
        Some(1.0e-6)
    }
}

struct HonestDefaults;

impl AxBackend for HonestDefaults {
    fn fuses_dssum(&self) -> bool {
        false
    }
}
