// Fixture: panicking calls in a no-panic region, and a crate root without
// forbid(unsafe_code). Not compiled; lexed by tests/lints.rs with the rel
// path of a crate root.
#![deny(missing_docs)]

// lint: no-panic
fn worker(jobs: &[usize]) -> usize {
    let first = jobs.first().unwrap();
    if *first > 10 {
        panic!("too big");
    }
    jobs.iter().copied().max().expect("nonempty")
}
