// Fixture: clean hot region. Not compiled; lexed by tests/lints.rs.

// lint: alloc-free
fn hot(input: &[f64], out: &mut [f64], scratch: &mut [f64]) {
    for ((o, &i), s) in out.iter_mut().zip(input).zip(scratch.iter_mut()) {
        *s = i * 2.0;
        *o = *s + 1.0;
    }
    let label = name().to_string(); // lint: alloc-ok (one-time lazy label, not per-apply)
    drop(label);
}

fn name() -> &'static str {
    "hot"
}
