// Fixture: clean wall-clock usage. Not compiled; lexed by tests/lints.rs.
// lint: wall-clock (this fixture plays the sanctioned ObsClock module)
use std::time::Instant;

pub enum ObsClock {
    Wall,
    Modeled,
}

fn measure() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

fn report(measured: f64, predicted: f64) -> f64 {
    let wall_seconds = measured;
    let simulated_seconds = predicted;
    // lint: wall-clock-compare-ok (speedup report, not a scheduling decision)
    wall_seconds / simulated_seconds
}
