// Fixture: pragma'd file that is not the ObsClock site. Lexed by tests/lints.rs.
// lint: wall-clock (measurement module predating the sem-obs clock)
use std::time::Instant;

fn measure() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}
