// Fixture: an AxBackend impl whose claims are fully priced.
// Not compiled; lexed by tests/lints.rs.

struct PricedBoard;

impl AxBackend for PricedBoard {
    fn fuses_dssum(&self) -> bool {
        true
    }

    fn simulated_seconds_per_batch(&self, batch: usize) -> Option<f64> {
        Some(1.0e-6 * batch as f64)
    }

    fn precond_on_device(&self, precond: PrecondSpec) -> bool {
        !matches!(precond, PrecondSpec::Identity) && true
    }

    fn simulated_seconds_per_precond(&self, precond: PrecondSpec) -> Option<f64> {
        let _ = precond;
        Some(2.0e-6)
    }

    fn precond_table_bytes(&self, precond: PrecondSpec) -> u64 {
        let _ = precond;
        4096
    }
}
