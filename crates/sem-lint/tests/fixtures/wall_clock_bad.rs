// Fixture: wall-clock violations. Not compiled; lexed by tests/lints.rs.
use std::time::Instant;

fn measure() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

fn compare(measured_wall_seconds: f64, simulated_seconds: f64) -> bool {
    measured_wall_seconds < simulated_seconds
}
