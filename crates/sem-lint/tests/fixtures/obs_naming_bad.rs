// Fixture: bad metric names at recorder sinks. Lexed by tests/lints.rs.
fn instrument(obs: &Recorder) {
    obs.counter_add("cg_iterations_total", &[], 1);
    obs.gauge_set("sem_solver_backlog", &[], 2.0);
    obs.observe("sem_unknown_latency_seconds", &[], 0.1);
    obs.counter_add(dynamic_name, &[], 1);
    obs.counter_add("sem_serve_requests_total", &[], 1);
    // lint: obs-naming-ok (fixture: justified waiver silences the finding)
    obs.counter_add("waived_bad_name", &[], 1);
}
