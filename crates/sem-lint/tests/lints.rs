//! Fixture tests: each lint pass is pinned to exact findings on known-bad
//! snippets, proven silent on known-good ones, and the real workspace tree
//! must come back completely clean.

use sem_lint::passes::{alloc_free, backend_contract, obs_naming, panic_audit, wall_clock};
use sem_lint::{Finding, SourceFile};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Parse a fixture under an arbitrary workspace-relative path.
fn parse(rel: &str, name: &str) -> (SourceFile, Vec<Finding>) {
    SourceFile::parse(rel.to_string(), &fixture(name))
}

fn lines_of(findings: &[Finding], pass: &str) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.pass == pass)
        .map(|f| f.line)
        .collect()
}

#[test]
fn wall_clock_flags_instant_and_mixed_lines_exactly() {
    let (file, marker_findings) = parse("crates/foo/src/timing.rs", "wall_clock_bad.rs");
    assert!(marker_findings.is_empty());
    let findings = wall_clock::run(std::slice::from_ref(&file));
    // Lines 2 and 5 use `Instant` without a pragma; lines 9 and 10 mix
    // measured and modelled identifiers.
    assert_eq!(lines_of(&findings, "wall-clock"), vec![2, 5, 9, 10]);
}

#[test]
fn wall_clock_accepts_pragma_and_justified_comparison() {
    let (file, marker_findings) = parse("crates/foo/src/timing.rs", "wall_clock_good.rs");
    assert!(marker_findings.is_empty());
    let findings = wall_clock::run(std::slice::from_ref(&file));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wall_clock_rejects_pragmas_outside_the_obs_clock() {
    let (file, marker_findings) = parse("crates/foo/src/timing.rs", "wall_clock_pragma_bad.rs");
    assert!(marker_findings.is_empty());
    let findings = wall_clock::run(std::slice::from_ref(&file));
    // The pragma (line 2) is flagged because the file does not implement
    // `ObsClock`; the pragma still whitelists the `Instant` uses below it.
    assert_eq!(lines_of(&findings, "wall-clock"), vec![2]);
    assert!(findings[0].message.contains("ObsClock"), "{findings:?}");
}

#[test]
fn obs_naming_flags_literal_names_off_convention() {
    let (file, marker_findings) = parse("crates/foo/src/instrument.rs", "obs_naming_bad.rs");
    assert!(marker_findings.is_empty());
    let findings = obs_naming::run(std::slice::from_ref(&file));
    // Lines 3-5: missing sem_ prefix, missing unit, unknown crate token.
    // The dynamic name (line 6) and the conforming name (line 7) pass.
    assert_eq!(lines_of(&findings, "obs-naming"), vec![3, 4, 5]);
}

#[test]
fn obs_naming_accepts_convention_names_and_method_definitions() {
    let (file, marker_findings) = parse("crates/foo/src/instrument.rs", "obs_naming_good.rs");
    assert!(marker_findings.is_empty());
    let findings = obs_naming::run(std::slice::from_ref(&file));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn obs_naming_exempts_support_crates() {
    let (file, _) = parse("crates/support/fake/src/lib.rs", "obs_naming_bad.rs");
    let findings = obs_naming::run(std::slice::from_ref(&file));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wall_clock_exempts_support_crates() {
    let (file, _) = parse("crates/support/fake/src/lib.rs", "wall_clock_bad.rs");
    let findings = wall_clock::run(std::slice::from_ref(&file));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn alloc_free_flags_every_allocation_in_the_region() {
    let (file, marker_findings) = parse("crates/foo/src/hot.rs", "alloc_bad.rs");
    assert!(marker_findings.is_empty());
    let findings = alloc_free::run(std::slice::from_ref(&file));
    // to_vec, collect, Vec::new, format!, vec! — and nothing outside the
    // region (the trailing `cold()` allocates legally).
    assert_eq!(lines_of(&findings, "alloc-free"), vec![5, 6, 7, 8, 10]);
}

#[test]
fn alloc_free_accepts_scratch_reuse_and_justified_waivers() {
    let (file, marker_findings) = parse("crates/foo/src/hot.rs", "alloc_good.rs");
    assert!(marker_findings.is_empty());
    let findings = alloc_free::run(std::slice::from_ref(&file));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_audit_flags_region_panics_and_missing_forbid() {
    let (file, marker_findings) = parse("crates/foo/src/lib.rs", "panic_bad.rs");
    assert!(marker_findings.is_empty());
    let findings = panic_audit::run(std::slice::from_ref(&file));
    // Line 1: crate root lacks forbid(unsafe_code); lines 8/10/12:
    // unwrap, panic!, expect inside the no-panic region.
    assert_eq!(lines_of(&findings, "panic-audit"), vec![1, 8, 10, 12]);
}

#[test]
fn panic_audit_accepts_forbid_and_justified_waiver() {
    let (file, marker_findings) = parse("crates/foo/src/lib.rs", "panic_good.rs");
    assert!(marker_findings.is_empty());
    let findings = panic_audit::run(std::slice::from_ref(&file));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_audit_ignores_non_crate_roots_for_the_attribute_rule() {
    let (file, _) = parse("crates/foo/src/worker.rs", "panic_bad.rs");
    let findings = panic_audit::run(std::slice::from_ref(&file));
    assert_eq!(
        lines_of(&findings, "panic-audit"),
        vec![8, 10, 12],
        "no attribute finding outside src/lib.rs"
    );
}

#[test]
fn backend_contract_flags_unpriced_claims_exactly() {
    let (file, marker_findings) = parse("crates/foo/src/exec.rs", "backend_bad.rs");
    assert!(marker_findings.is_empty());
    let findings = backend_contract::run(std::slice::from_ref(&file));
    let lines = lines_of(&findings, "backend-contract");
    // FusedNoPricing (impl at line 6) lacks simulated_seconds_per_batch;
    // DevicePrecondNoHooks (impl at line 14) lacks precond_table_bytes.
    assert_eq!(lines, vec![6, 14], "{findings:?}");
    assert!(findings[0].message.contains("simulated_seconds_per_batch"));
    assert!(findings[1].message.contains("precond_table_bytes"));
}

#[test]
fn backend_contract_accepts_fully_priced_claims() {
    let (file, marker_findings) = parse("crates/foo/src/exec.rs", "backend_good.rs");
    assert!(marker_findings.is_empty());
    let findings = backend_contract::run(std::slice::from_ref(&file));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn malformed_markers_are_findings_with_exact_lines() {
    let (_, marker_findings) = parse("crates/foo/src/mod.rs", "marker_bad.rs");
    assert_eq!(lines_of(&marker_findings, "lint-marker"), vec![3, 7, 11]);
}

#[test]
fn the_real_workspace_tree_is_clean() {
    let root = sem_lint::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("sem-lint lives in the workspace");
    let findings = sem_lint::lint_workspace(&root);
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
