//! Element-parallel CPU implementation of the `Ax` kernel.
//!
//! The evaluation of the operator is embarrassingly parallel over elements —
//! exactly the property the CPU baselines of the paper exploit with one MPI
//! rank per core.  Here we use Rayon's work-stealing pool instead: elements
//! are chunked and each chunk applies the optimised split-layout kernel with
//! its own scratch buffers.

use crate::optimized::{ax_element_split, AxScratch};
use rayon::prelude::*;
use sem_basis::DerivativeMatrix;

/// Apply the operator to every element in parallel.
///
/// Semantics are identical to [`crate::optimized::ax_optimized`]; only the
/// scheduling differs, so results are bitwise identical (each element's
/// arithmetic is unchanged and elements are independent).
pub fn ax_parallel(
    u: &[f64],
    w: &mut [f64],
    g_planes: &[Vec<f64>; 6],
    derivative: &DerivativeMatrix,
) {
    let nx = derivative.num_points();
    let npts = nx * nx * nx;
    assert_eq!(u.len(), w.len());
    assert_eq!(u.len() % npts, 0);
    for plane in g_planes {
        assert_eq!(plane.len(), u.len(), "geometric plane length mismatch");
    }
    // Borrow the row-major matrix data in place (flattening copies would be
    // two heap allocations per application).
    let d = derivative.d().as_slice();
    let dt = derivative.dt().as_slice();

    w.par_chunks_mut(npts).enumerate().for_each_init(
        || AxScratch::new(nx),
        |scratch, (e, w_elem)| {
            let range = e * npts..(e + 1) * npts;
            let g = [
                &g_planes[0][range.clone()],
                &g_planes[1][range.clone()],
                &g_planes[2][range.clone()],
                &g_planes[3][range.clone()],
                &g_planes[4][range.clone()],
                &g_planes[5][range.clone()],
            ];
            ax_element_split(&u[range.clone()], w_elem, g, d, dt, nx, scratch);
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimized::ax_optimized;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use sem_mesh::{BoxMesh, GeometricFactors, MeshDeformation};

    #[test]
    fn parallel_matches_sequential_bitwise() {
        for degree in [2, 4, 7] {
            let mesh = BoxMesh::new(
                degree,
                [3, 2, 2],
                [1.0; 3],
                MeshDeformation::Sinusoidal { amplitude: 0.03 },
            );
            let geo = GeometricFactors::from_mesh(&mesh);
            let planes = geo.split();
            let dm = DerivativeMatrix::new(degree);
            let mut rng = StdRng::seed_from_u64(degree as u64);
            let u: Vec<f64> = (0..mesh.num_local_dofs())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let mut w_seq = vec![0.0; u.len()];
            let mut w_par = vec![0.0; u.len()];
            ax_optimized(&u, &mut w_seq, &planes, &dm);
            ax_parallel(&u, &mut w_par, &planes, &dm);
            assert_eq!(
                w_seq, w_par,
                "degree {degree}: parallel must be bitwise equal"
            );
        }
    }

    #[test]
    fn handles_single_element() {
        let mesh = BoxMesh::unit_cube(3, 1);
        let geo = GeometricFactors::from_mesh(&mesh);
        let dm = DerivativeMatrix::new(3);
        let u = vec![1.0; mesh.num_local_dofs()];
        let mut w = vec![0.0; u.len()];
        ax_parallel(&u, &mut w, &geo.split(), &dm);
        assert!(w.iter().all(|&v| v.abs() < 1e-10));
    }
}
