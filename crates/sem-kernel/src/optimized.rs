//! Optimised CPU implementation of the `Ax` kernel.
//!
//! This mirrors — on a CPU — the data-layout transformations Section III-B of
//! the paper applies to the accelerator:
//!
//! * the geometric factors are consumed in the *split* layout (six separate
//!   planes) instead of the interleaved `gxyz` array, removing the strided
//!   gather that defeats vectorisation (and, on the FPGA, causes BRAM
//!   arbitration);
//! * the three directional derivative sums are evaluated as small
//!   matrix–matrix products with unit-stride inner loops so the compiler can
//!   vectorise them;
//! * one element's scratch (`shur`/`shus`/`shut`) is kept hot in cache and
//!   reused across the two loop nests, exactly like the on-chip BRAM copy.

use sem_basis::DerivativeMatrix;

/// Scratch buffers reused across elements to avoid per-element allocation.
#[derive(Debug, Default, Clone)]
pub struct AxScratch {
    shur: Vec<f64>,
    shus: Vec<f64>,
    shut: Vec<f64>,
    ur: Vec<f64>,
    us: Vec<f64>,
    ut: Vec<f64>,
}

impl AxScratch {
    /// Create scratch sized for `nx = N + 1` points per direction.
    #[must_use]
    pub fn new(nx: usize) -> Self {
        let npts = nx * nx * nx;
        Self {
            shur: vec![0.0; npts],
            shus: vec![0.0; npts],
            shut: vec![0.0; npts],
            ur: vec![0.0; npts],
            us: vec![0.0; npts],
            ut: vec![0.0; npts],
        }
    }

    /// Grow-only resize: shrinking to a smaller degree reuses the existing
    /// allocations (the kernel only touches the first `nx³` entries), so
    /// mixed-degree batches stay allocation-free after the first element of
    /// the largest size.
    fn ensure(&mut self, nx: usize) {
        let npts = nx * nx * nx;
        if self.shur.len() < npts {
            for buf in [
                &mut self.shur,
                &mut self.shus,
                &mut self.shut,
                &mut self.ur,
                &mut self.us,
                &mut self.ut,
            ] {
                buf.resize(npts, 0.0);
            }
        }
    }
}

/// Apply the operator to a single element using the split geometric-factor
/// layout.
///
/// * `u`, `w` — one element's nodal values (`(N+1)^3` each).
/// * `g` — six slices, each one element's worth of a geometric-factor plane.
/// * `d`, `dt` — the differentiation matrix and its transpose, row-major.
#[allow(clippy::too_many_arguments)]
// Index-based loops deliberately mirror the paper's Listing 1 structure and
// keep the stride arithmetic explicit for the strength-reduced inner loops.
#[allow(clippy::needless_range_loop)]
pub fn ax_element_split(
    u: &[f64],
    w: &mut [f64],
    g: [&[f64]; 6],
    d: &[f64],
    dt: &[f64],
    nx: usize,
    scratch: &mut AxScratch,
) {
    let npts = nx * nx * nx;
    debug_assert_eq!(u.len(), npts);
    debug_assert_eq!(w.len(), npts);
    scratch.ensure(nx);

    let nxy = nx * nx;

    // ur(i,j,k) = sum_l D[i][l] u(l,j,k)   -- contraction over the fastest index
    // us(i,j,k) = sum_l D[j][l] u(i,l,k)
    // ut(i,j,k) = sum_l D[k][l] u(i,j,l)
    {
        // Slice to the active element size: the scratch may be larger when a
        // previous element had a higher degree (grow-only `ensure`).
        let ur = &mut scratch.ur[..npts];
        let us = &mut scratch.us[..npts];
        let ut = &mut scratch.ut[..npts];
        ur.iter_mut().for_each(|v| *v = 0.0);
        us.iter_mut().for_each(|v| *v = 0.0);
        ut.iter_mut().for_each(|v| *v = 0.0);

        // r-direction: for each (j,k) row, small dense mat-vec.
        for k in 0..nx {
            for j in 0..nx {
                let row = j * nx + k * nxy;
                for i in 0..nx {
                    let mut acc = 0.0;
                    let drow = &d[i * nx..(i + 1) * nx];
                    let urow = &u[row..row + nx];
                    for l in 0..nx {
                        acc += drow[l] * urow[l];
                    }
                    ur[i + row] = acc;
                }
            }
        }
        // s-direction.
        for k in 0..nx {
            for j in 0..nx {
                let drow = &d[j * nx..(j + 1) * nx];
                for l in 0..nx {
                    let dv = drow[l];
                    let src = l * nx + k * nxy;
                    let dst = j * nx + k * nxy;
                    for i in 0..nx {
                        us[i + dst] += dv * u[i + src];
                    }
                }
            }
        }
        // t-direction.
        for k in 0..nx {
            let drow = &d[k * nx..(k + 1) * nx];
            for l in 0..nx {
                let dv = drow[l];
                let src = l * nxy;
                let dst = k * nxy;
                for ij in 0..nxy {
                    ut[ij + dst] += dv * u[ij + src];
                }
            }
        }
    }

    // Multiply by the geometric factors pointwise.
    for p in 0..npts {
        let (ur, us, ut) = (scratch.ur[p], scratch.us[p], scratch.ut[p]);
        scratch.shur[p] = g[0][p] * ur + g[1][p] * us + g[2][p] * ut;
        scratch.shus[p] = g[1][p] * ur + g[3][p] * us + g[4][p] * ut;
        scratch.shut[p] = g[2][p] * ur + g[4][p] * us + g[5][p] * ut;
    }

    // w = D^T_r shur + D^T_s shus + D^T_t shut.
    w.iter_mut().for_each(|v| *v = 0.0);
    for k in 0..nx {
        for j in 0..nx {
            let row = j * nx + k * nxy;
            for i in 0..nx {
                let mut acc = 0.0;
                let dtrow = &dt[i * nx..(i + 1) * nx];
                let srow = &scratch.shur[row..row + nx];
                for l in 0..nx {
                    acc += dtrow[l] * srow[l];
                }
                w[i + row] = acc;
            }
        }
    }
    for k in 0..nx {
        for j in 0..nx {
            let dtrow = &dt[j * nx..(j + 1) * nx];
            for l in 0..nx {
                let dv = dtrow[l];
                let src = l * nx + k * nxy;
                let dst = j * nx + k * nxy;
                for i in 0..nx {
                    w[i + dst] += dv * scratch.shus[i + src];
                }
            }
        }
    }
    for k in 0..nx {
        let dtrow = &dt[k * nx..(k + 1) * nx];
        for l in 0..nx {
            let dv = dtrow[l];
            let src = l * nxy;
            let dst = k * nxy;
            for ij in 0..nxy {
                w[ij + dst] += dv * scratch.shut[ij + src];
            }
        }
    }
}

/// Apply the operator to every element using the split layout, sequentially.
///
/// `g_planes` holds the six geometric-factor planes, each of length
/// `E (N+1)^3` (see `sem_mesh::GeometricFactors::split`).
pub fn ax_optimized(
    u: &[f64],
    w: &mut [f64],
    g_planes: &[Vec<f64>; 6],
    derivative: &DerivativeMatrix,
) {
    for plane in g_planes {
        assert_eq!(plane.len(), u.len(), "geometric plane length mismatch");
    }
    ax_optimized_slices(
        u,
        w,
        [
            &g_planes[0][..],
            &g_planes[1][..],
            &g_planes[2][..],
            &g_planes[3][..],
            &g_planes[4][..],
            &g_planes[5][..],
        ],
        derivative,
    );
}

thread_local! {
    /// Per-thread element scratch reused across applications, so repeated
    /// operator applications (every CG iteration) perform no heap allocation
    /// after the first call on a thread.
    static ELEMENT_SCRATCH: std::cell::RefCell<AxScratch> =
        std::cell::RefCell::new(AxScratch::default());
}

/// [`ax_optimized`] on borrowed geometric-factor plane slices.
///
/// This is the shared element loop behind every split-layout execution path:
/// the sequential CPU kernel, the simulated accelerator, and per-board
/// partitions (which pass sub-slices of the full planes).  The element
/// scratch comes from a thread-local buffer sized on first use, so repeated
/// applications are allocation-free; callers that manage their own scratch
/// (e.g. the parallel kernel's worker threads) use
/// [`ax_optimized_slices_with`] instead.
///
/// # Panics
/// Panics if `u` and `w` differ in length, the length is not a multiple of
/// `(N+1)^3`, or any plane slice does not match `u`.
pub fn ax_optimized_slices(
    u: &[f64],
    w: &mut [f64],
    g_planes: [&[f64]; 6],
    derivative: &DerivativeMatrix,
) {
    ELEMENT_SCRATCH.with(|scratch| {
        ax_optimized_slices_with(u, w, g_planes, derivative, &mut scratch.borrow_mut());
    });
}

/// [`ax_optimized_slices`] with a caller-provided element scratch (resized on
/// demand), the fully allocation-free entry point.
///
/// # Panics
/// Panics if `u` and `w` differ in length, the length is not a multiple of
/// `(N+1)^3`, or any plane slice does not match `u`.
pub fn ax_optimized_slices_with(
    u: &[f64],
    w: &mut [f64],
    g_planes: [&[f64]; 6],
    derivative: &DerivativeMatrix,
    scratch: &mut AxScratch,
) {
    let nx = derivative.num_points();
    let npts = nx * nx * nx;
    assert_eq!(u.len(), w.len());
    assert_eq!(u.len() % npts, 0);
    for plane in g_planes {
        assert_eq!(plane.len(), u.len(), "geometric plane length mismatch");
    }
    // Borrow the row-major matrix data in place: flattening copies would be
    // two heap allocations on every application.
    let d = derivative.d().as_slice();
    let dt = derivative.dt().as_slice();
    let num_elements = u.len() / npts;
    for e in 0..num_elements {
        let range = e * npts..(e + 1) * npts;
        let g = [
            &g_planes[0][range.clone()],
            &g_planes[1][range.clone()],
            &g_planes[2][range.clone()],
            &g_planes[3][range.clone()],
            &g_planes[4][range.clone()],
            &g_planes[5][range.clone()],
        ];
        ax_element_split(
            &u[range.clone()],
            &mut w[range.clone()],
            g,
            d,
            dt,
            nx,
            scratch,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ax_reference;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use sem_mesh::{BoxMesh, GeometricFactors, MeshDeformation};

    fn random_field(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn ensure_reuses_the_allocation_when_shrinking() {
        let mut scratch = AxScratch::new(8);
        let cap = scratch.shur.capacity();
        let ptr = scratch.shur.as_ptr();
        scratch.ensure(4);
        assert_eq!(scratch.shur.as_ptr(), ptr, "shrinking must not reallocate");
        assert_eq!(scratch.shur.capacity(), cap);
        scratch.ensure(8);
        assert_eq!(
            scratch.shur.as_ptr(),
            ptr,
            "growing back within capacity must not reallocate"
        );
        scratch.ensure(10);
        assert!(scratch.shur.len() >= 10 * 10 * 10);
    }

    #[test]
    fn matches_reference_on_undeformed_mesh() {
        for degree in [1, 2, 3, 5, 7] {
            let mesh = BoxMesh::unit_cube(degree, 2);
            let geo = GeometricFactors::from_mesh(&mesh);
            let dm = sem_basis::DerivativeMatrix::new(degree);
            let u = random_field(mesh.num_local_dofs(), degree as u64);
            let mut w_ref = vec![0.0; u.len()];
            let mut w_opt = vec![0.0; u.len()];
            ax_reference(&u, &mut w_ref, geo.interleaved(), &dm);
            ax_optimized(&u, &mut w_opt, &geo.split(), &dm);
            for (a, b) in w_ref.iter().zip(&w_opt) {
                assert!(
                    (a - b).abs() < 1e-11 * (1.0 + a.abs()),
                    "degree {degree}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_deformed_mesh() {
        let degree = 6;
        let mesh = BoxMesh::new(
            degree,
            [2, 1, 2],
            [1.0, 2.0, 1.0],
            MeshDeformation::Sinusoidal { amplitude: 0.05 },
        );
        let geo = GeometricFactors::from_mesh(&mesh);
        let dm = sem_basis::DerivativeMatrix::new(degree);
        let u = random_field(mesh.num_local_dofs(), 99);
        let mut w_ref = vec![0.0; u.len()];
        let mut w_opt = vec![0.0; u.len()];
        ax_reference(&u, &mut w_ref, geo.interleaved(), &dm);
        ax_optimized(&u, &mut w_opt, &geo.split(), &dm);
        let max_err = w_ref
            .iter()
            .zip(&w_opt)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(max_err < 1e-10, "max error {max_err}");
    }

    #[test]
    fn scratch_reuse_is_safe_across_degrees() {
        let mut scratch = AxScratch::new(4);
        // Using the scratch with a different nx must transparently resize.
        let degree = 5;
        let mesh = BoxMesh::unit_cube(degree, 1);
        let geo = GeometricFactors::from_mesh(&mesh);
        let dm = sem_basis::DerivativeMatrix::new(degree);
        let planes = geo.split();
        let u = random_field(mesh.num_local_dofs(), 3);
        let mut w = vec![0.0; u.len()];
        let g = [
            planes[0].as_slice(),
            planes[1].as_slice(),
            planes[2].as_slice(),
            planes[3].as_slice(),
            planes[4].as_slice(),
            planes[5].as_slice(),
        ];
        ax_element_split(&u, &mut w, g, &dm.d_flat(), &dm.dt_flat(), 6, &mut scratch);
        let mut w_ref = vec![0.0; u.len()];
        ax_reference(&u, &mut w_ref, geo.interleaved(), &dm);
        for (a, b) in w_ref.iter().zip(&w) {
            assert!((a - b).abs() < 1e-11);
        }
    }
}
