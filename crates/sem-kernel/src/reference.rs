//! Reference implementation of the `Ax` kernel — a faithful port of the
//! paper's Listing 1.
//!
//! The function operates on flat slices in exactly the layouts of the C
//! code: `u` and `w` are element-major nodal arrays, `gxyz` is the
//! interleaved geometric-factor array (`6` values per node), and the two
//! differentiation arrays are flattened `(N+1) × (N+1)` matrices:
//!
//! * `dxt[l + i*(N+1)]` must hold `D[i][l]` (the differentiation matrix in
//!   row-major order) so that the first loop nest computes the local
//!   gradient `(u_r, u_s, u_t)`,
//! * `dx[l + i*(N+1)]` must hold `Dᵀ[i][l] = D[l][i]` so that the second
//!   loop nest applies the transposed operator.
//!
//! With those conventions the kernel evaluates `w^e = Dᵀ G^e D u^e`, which is
//! symmetric positive semi-definite per element (tests below).

use sem_basis::DerivativeMatrix;

/// Apply the local Poisson operator to every element, Listing-1 style.
///
/// * `u` — input nodal values, element-major, length `E (N+1)^3`.
/// * `w` — output nodal values, same layout (overwritten).
/// * `gxyz` — interleaved geometric factors, length `6 E (N+1)^3`.
/// * `dx` — `Dᵀ` flattened row-major, length `(N+1)^2`.
/// * `dxt` — `D` flattened row-major, length `(N+1)^2`.
/// * `nx` — number of GLL points per direction, `N + 1`.
///
/// # Panics
/// Panics if the slice lengths are inconsistent with `nx`.
#[allow(clippy::many_single_char_names)]
pub fn ax_reference_raw(
    u: &[f64],
    w: &mut [f64],
    gxyz: &[f64],
    dx: &[f64],
    dxt: &[f64],
    nx: usize,
) {
    let npts = nx * nx * nx;
    assert!(nx >= 2, "need at least two GLL points");
    assert_eq!(u.len() % npts, 0, "u length must be a multiple of (N+1)^3");
    assert_eq!(u.len(), w.len(), "u and w must have the same length");
    assert_eq!(gxyz.len(), 6 * u.len(), "gxyz must hold 6 values per node");
    assert_eq!(dx.len(), nx * nx, "dx must be (N+1)x(N+1)");
    assert_eq!(dxt.len(), nx * nx, "dxt must be (N+1)x(N+1)");

    let tot_dofs = u.len();
    let mut shur = vec![0.0_f64; npts];
    let mut shus = vec![0.0_f64; npts];
    let mut shut = vec![0.0_f64; npts];

    let mut ele = 0;
    while ele < tot_dofs {
        // First loop nest: local gradient and multiplication by the
        // geometric factors.
        for k in 0..nx {
            for j in 0..nx {
                for i in 0..nx {
                    let ij = i + j * nx;
                    let ijk = ij + k * nx * nx;
                    let mut rtmp = 0.0;
                    let mut stmp = 0.0;
                    let mut ttmp = 0.0;
                    for l in 0..nx {
                        rtmp += dxt[l + i * nx] * u[l + j * nx + k * nx * nx + ele];
                        stmp += dxt[l + j * nx] * u[i + l * nx + k * nx * nx + ele];
                        ttmp += dxt[l + k * nx] * u[ij + l * nx * nx + ele];
                    }
                    let g = &gxyz[6 * ijk + ele * 6..6 * ijk + ele * 6 + 6];
                    shur[ijk] = g[0] * rtmp + g[1] * stmp + g[2] * ttmp;
                    shus[ijk] = g[1] * rtmp + g[3] * stmp + g[4] * ttmp;
                    shut[ijk] = g[2] * rtmp + g[4] * stmp + g[5] * ttmp;
                }
            }
        }
        // Second loop nest: apply the transposed derivative and accumulate.
        for k in 0..nx {
            for j in 0..nx {
                for i in 0..nx {
                    let ij = i + j * nx;
                    let ijk = ij + k * nx * nx;
                    let mut wijke = 0.0;
                    for l in 0..nx {
                        wijke += dx[l + i * nx] * shur[l + j * nx + k * nx * nx];
                        wijke += dx[l + j * nx] * shus[i + l * nx + k * nx * nx];
                        wijke += dx[l + k * nx] * shut[i + j * nx + l * nx * nx];
                    }
                    w[ijk + ele] = wijke;
                }
            }
        }
        ele += npts;
    }
}

/// Convenience wrapper that derives the differentiation arrays from a
/// [`DerivativeMatrix`] with the correct conventions and applies the
/// reference kernel.
pub fn ax_reference(u: &[f64], w: &mut [f64], gxyz: &[f64], derivative: &DerivativeMatrix) {
    let nx = derivative.num_points();
    // See module docs: `dxt` carries D row-major, `dx` carries D^T row-major.
    let dxt = derivative.d_flat();
    let dx = derivative.dt_flat();
    ax_reference_raw(u, w, gxyz, &dx, &dxt, nx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem_mesh::{BoxMesh, GeometricFactors, MeshDeformation};

    fn setup(degree: usize, elems: usize) -> (BoxMesh, GeometricFactors, DerivativeMatrix) {
        let mesh = BoxMesh::unit_cube(degree, elems);
        let geo = GeometricFactors::from_mesh(&mesh);
        let dm = DerivativeMatrix::new(degree);
        (mesh, geo, dm)
    }

    #[test]
    fn annihilates_constants() {
        let (mesh, geo, dm) = setup(5, 2);
        let u = vec![3.0; mesh.num_local_dofs()];
        let mut w = vec![0.0; u.len()];
        ax_reference(&u, &mut w, geo.interleaved(), &dm);
        assert!(w.iter().all(|&v| v.abs() < 1e-10), "A * const = 0");
    }

    #[test]
    fn operator_is_symmetric() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (mesh, geo, dm) = setup(4, 1);
        let n = mesh.num_local_dofs();
        let mut rng = StdRng::seed_from_u64(7);
        let u: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut au = vec![0.0; n];
        let mut av = vec![0.0; n];
        ax_reference(&u, &mut au, geo.interleaved(), &dm);
        ax_reference(&v, &mut av, geo.interleaved(), &dm);
        let vau: f64 = v.iter().zip(&au).map(|(a, b)| a * b).sum();
        let uav: f64 = u.iter().zip(&av).map(|(a, b)| a * b).sum();
        assert!((vau - uav).abs() < 1e-9 * (1.0 + vau.abs()));
    }

    #[test]
    fn energy_is_nonnegative() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (mesh, geo, dm) = setup(3, 2);
        let n = mesh.num_local_dofs();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let u: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut au = vec![0.0; n];
            ax_reference(&u, &mut au, geo.interleaved(), &dm);
            let energy: f64 = u.iter().zip(&au).map(|(a, b)| a * b).sum();
            assert!(energy >= -1e-10, "energy {energy} must be non-negative");
        }
    }

    #[test]
    fn energy_matches_dirichlet_integral_for_linear_field() {
        // For u = x on a unit-cube mesh, u^T A u = ∫ |∇u|^2 = volume = 1,
        // summed over elements (each element contributes its own volume).
        let (mesh, geo, dm) = setup(4, 2);
        let xs = &mesh.coordinates()[0];
        let u = xs.as_slice().to_vec();
        let mut au = vec![0.0; u.len()];
        ax_reference(&u, &mut au, geo.interleaved(), &dm);
        let energy: f64 = u.iter().zip(&au).map(|(a, b)| a * b).sum();
        assert!((energy - 1.0).abs() < 1e-9, "energy {energy}");
    }

    #[test]
    fn energy_matches_dirichlet_integral_for_smooth_field() {
        // u = sin(pi x) cos(pi y) z  on the unit cube:
        // ∫ |∇u|^2 = pi^2/4 * 1/3 + pi^2/4 * 1/3 + 1/4  (separable integrals)
        let degree = 9;
        let mesh = BoxMesh::unit_cube(degree, 2);
        let geo = GeometricFactors::from_mesh(&mesh);
        let dm = DerivativeMatrix::new(degree);
        let pi = std::f64::consts::PI;
        let u = mesh.evaluate(|x, y, z| (pi * x).sin() * (pi * y).cos() * z);
        let mut au = vec![0.0; u.len()];
        ax_reference(u.as_slice(), &mut au, geo.interleaved(), &dm);
        let energy: f64 = u.as_slice().iter().zip(&au).map(|(a, b)| a * b).sum();
        let exact = pi * pi / 4.0 * (1.0 / 3.0) + pi * pi / 4.0 * (1.0 / 3.0) + 0.25;
        assert!(
            (energy - exact).abs() < 1e-5 * exact,
            "energy {energy} vs exact {exact}"
        );
    }

    #[test]
    fn works_on_deformed_meshes() {
        let degree = 6;
        let mesh = BoxMesh::new(
            degree,
            [2, 2, 2],
            [1.0; 3],
            MeshDeformation::Sinusoidal { amplitude: 0.04 },
        );
        let geo = GeometricFactors::from_mesh(&mesh);
        let dm = DerivativeMatrix::new(degree);
        // Constants are still annihilated and linear-in-x energy still equals
        // the deformed domain volume (which equals 1 since the map is a
        // volume-preserving-boundary deformation of the unit cube? Not
        // exactly — so only check it is close to the undeformed value).
        let u = vec![1.0; mesh.num_local_dofs()];
        let mut w = vec![0.0; u.len()];
        ax_reference(&u, &mut w, geo.interleaved(), &dm);
        assert!(w.iter().all(|&v| v.abs() < 1e-9));

        let xs = &mesh.coordinates()[0];
        let mut ax = vec![0.0; u.len()];
        ax_reference(xs.as_slice(), &mut ax, geo.interleaved(), &dm);
        let energy: f64 = xs.as_slice().iter().zip(&ax).map(|(a, b)| a * b).sum();
        assert!((energy - 1.0).abs() < 0.05, "energy {energy} ~ volume");
    }

    #[test]
    #[should_panic(expected = "gxyz must hold 6 values per node")]
    fn rejects_inconsistent_geometry() {
        let dm = DerivativeMatrix::new(2);
        let u = vec![0.0; 27];
        let mut w = vec![0.0; 27];
        let g = vec![0.0; 27];
        ax_reference(&u, &mut w, &g, &dm);
    }
}
