//! The fast-diagonalization (FDM) tensor-contraction pass.
//!
//! The element-local FDM preconditioner applies `z = S (Λ-sum)⁻¹ Sᵀ r` per
//! element: three small dense contractions forward (`Sᵀ` along x, y, z), a
//! pointwise scale by the precomputed inverse eigenvalue sums, and three
//! contractions back (`S`).  The loops mirror [`crate::optimized`]'s
//! split-layout `Ax` structure — unit-stride inner loops over the fastest
//! index — so the same datapath shape serves both kernels on the CPU and on
//! the simulated accelerator (`fpga-sim` prices this pass with the same
//! cycle model family).

/// Scratch buffers for one element's FDM apply, reused across elements.
#[derive(Debug, Default, Clone)]
pub struct FdmScratch {
    t1: Vec<f64>,
    t2: Vec<f64>,
}

impl FdmScratch {
    /// Create scratch sized for `nx = N + 1` points per direction.
    #[must_use]
    pub fn new(nx: usize) -> Self {
        let npts = nx * nx * nx;
        Self {
            t1: vec![0.0; npts],
            t2: vec![0.0; npts],
        }
    }

    /// Grow-only resize: shrinking to a smaller patch reuses the existing
    /// allocations (the apply only touches the first `nx³` entries), so
    /// mixed-degree batches stay allocation-free after the first element of
    /// the largest size.
    fn ensure(&mut self, nx: usize) {
        let npts = nx * nx * nx;
        if self.t1.len() < npts {
            self.t1.resize(npts, 0.0);
            self.t2.resize(npts, 0.0);
        }
    }
}

/// `out(i,j,k) = Σ_l m[i][l] u(l,j,k)` — rectangular contraction over the
/// fastest index: `m` is `rows × cols` row-major, `u` has shape
/// `(cols, d2, d3)`, `out` has shape `(rows, d2, d3)`.
pub fn rcontract_x(
    m: &[f64],
    rows: usize,
    cols: usize,
    u: &[f64],
    out: &mut [f64],
    d2: usize,
    d3: usize,
) {
    for p in 0..d2 * d3 {
        let urow = &u[p * cols..(p + 1) * cols];
        let orow = &mut out[p * rows..(p + 1) * rows];
        for (i, o) in orow.iter_mut().enumerate() {
            let mrow = &m[i * cols..(i + 1) * cols];
            let mut acc = 0.0;
            for l in 0..cols {
                acc += mrow[l] * urow[l];
            }
            *o = acc;
        }
    }
}

/// `out(i,j,k) = Σ_l m[j][l] u(i,l,k)` — rectangular contraction over the
/// middle index: `u` has shape `(d1, cols, d3)`, `out` `(d1, rows, d3)`.
pub fn rcontract_y(
    m: &[f64],
    rows: usize,
    cols: usize,
    u: &[f64],
    out: &mut [f64],
    d1: usize,
    d3: usize,
) {
    out[..d1 * rows * d3].iter_mut().for_each(|v| *v = 0.0);
    for k in 0..d3 {
        for j in 0..rows {
            let mrow = &m[j * cols..(j + 1) * cols];
            let dst = (j + k * rows) * d1;
            for (l, &mv) in mrow.iter().enumerate() {
                let src = (l + k * cols) * d1;
                for i in 0..d1 {
                    out[dst + i] += mv * u[src + i];
                }
            }
        }
    }
}

/// `out(i,j,k) = Σ_l m[k][l] u(i,j,l)` — rectangular contraction over the
/// slowest index: `u` has shape `(d1, d2, cols)`, `out` `(d1, d2, rows)`.
pub fn rcontract_z(
    m: &[f64],
    rows: usize,
    cols: usize,
    u: &[f64],
    out: &mut [f64],
    d1: usize,
    d2: usize,
) {
    let plane = d1 * d2;
    out[..plane * rows].iter_mut().for_each(|v| *v = 0.0);
    for k in 0..rows {
        let mrow = &m[k * cols..(k + 1) * cols];
        let dst = k * plane;
        for (l, &mv) in mrow.iter().enumerate() {
            let src = l * plane;
            for p in 0..plane {
                out[dst + p] += mv * u[src + p];
            }
        }
    }
}

/// Square x-contraction (the FDM apply's special case of [`rcontract_x`]).
fn contract_x(m: &[f64], u: &[f64], out: &mut [f64], nx: usize) {
    rcontract_x(m, nx, nx, u, out, nx, nx);
}

/// Square y-contraction (the FDM apply's special case of [`rcontract_y`]).
fn contract_y(m: &[f64], u: &[f64], out: &mut [f64], nx: usize) {
    rcontract_y(m, nx, nx, u, out, nx, nx);
}

/// Square z-contraction (the FDM apply's special case of [`rcontract_z`]).
fn contract_z(m: &[f64], u: &[f64], out: &mut [f64], nx: usize) {
    rcontract_z(m, nx, nx, u, out, nx, nx);
}

/// Apply the element-local fast-diagonalization solve to one element:
/// `z = (Sz ⊗ Sy ⊗ Sx) diag(inv) (Szᵀ ⊗ Syᵀ ⊗ Sxᵀ) r`.
///
/// * `s = [sx, sy, sz]`, `st = [sxᵀ, syᵀ, szᵀ]` — per-direction eigenvector
///   matrices and their transposes, row-major `(N+1)²` each;
/// * `inv` — the `(N+1)³` inverse eigenvalue sums `1 / (λˣᵢ + λʸⱼ + λᶻₖ)`
///   (zero entries drop the corresponding modes — removed Dirichlet nodes
///   and the Neumann constant mode);
/// * `r`, `z` — one element's nodal values.
///
/// # Panics
/// Debug-asserts that the field and matrix extents match `nx`.
#[allow(clippy::similar_names)]
pub fn fdm_element_apply(
    s: [&[f64]; 3],
    st: [&[f64]; 3],
    inv: &[f64],
    r: &[f64],
    z: &mut [f64],
    nx: usize,
    scratch: &mut FdmScratch,
) {
    let npts = nx * nx * nx;
    debug_assert_eq!(r.len(), npts);
    debug_assert_eq!(z.len(), npts);
    debug_assert_eq!(inv.len(), npts);
    scratch.ensure(nx);
    // Slice to the active patch size: the scratch may be larger when a
    // previous patch had a higher degree (grow-only `ensure`).
    let t1 = &mut scratch.t1[..npts];
    let t2 = &mut scratch.t2[..npts];

    // Forward: modal coefficients c = (Szᵀ ⊗ Syᵀ ⊗ Sxᵀ) r.
    contract_x(st[0], r, t1, nx);
    contract_y(st[1], t1, t2, nx);
    contract_z(st[2], t2, t1, nx);
    // Diagonal solve in modal space.
    for (c, &w) in t1.iter_mut().zip(inv) {
        *c *= w;
    }
    // Back: z = (Sz ⊗ Sy ⊗ Sx) c.
    contract_x(s[0], t1, t2, nx);
    contract_y(s[1], t2, t1, nx);
    contract_z(s[2], t1, z, nx);
}

thread_local! {
    /// Per-thread FDM scratch reused across applications, so repeated
    /// preconditioner applications (every CG iteration) perform no heap
    /// allocation after the first call on a thread.
    static FDM_SCRATCH: std::cell::RefCell<FdmScratch> =
        std::cell::RefCell::new(FdmScratch::default());
}

/// [`fdm_element_apply`] with a per-thread scratch (sized on first use), the
/// entry point callers without their own scratch use.
pub fn fdm_element_apply_cached(
    s: [&[f64]; 3],
    st: [&[f64]; 3],
    inv: &[f64],
    r: &[f64],
    z: &mut [f64],
    nx: usize,
) {
    FDM_SCRATCH.with(|scratch| {
        fdm_element_apply(s, st, inv, r, z, nx, &mut scratch.borrow_mut());
    });
}

/// Patch points per direction of the FDM pass at `degree`:
/// `N + 1 + 2·overlap` (see [`sem_basis::fdm1d::fdm_overlap`]; the measured
/// default overlap is zero, so this is `N + 1`).
#[must_use]
pub fn fdm_patch_points(degree: usize) -> usize {
    degree + 1 + 2 * sem_basis::fdm_overlap(degree)
}

/// Floating-point operations of one element's FDM apply: six patch-sized
/// contractions at a multiply-add each, plus the modal scale.
#[must_use]
pub fn fdm_flops_per_element(degree: usize) -> u64 {
    let pnx = fdm_patch_points(degree) as u64;
    6 * 2 * pnx * pnx * pnx * pnx + pnx * pnx * pnx
}

/// External-memory bytes per degree of freedom of the FDM pass: the residual
/// streams in and the correction streams out; the `S` matrices and inverse
/// eigenvalue tables stay resident on chip (see `fpga-sim`'s BRAM model).
#[must_use]
pub fn fdm_bytes_per_dof() -> u64 {
    2 * std::mem::size_of::<f64>() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem_basis::DenseMatrix;

    /// Dense reference: (Mz ⊗ My ⊗ Mx) u.
    fn kron3_apply(mx: &DenseMatrix, my: &DenseMatrix, mz: &DenseMatrix, u: &[f64]) -> Vec<f64> {
        let n = mx.rows();
        let mut out = vec![0.0; n * n * n];
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..n {
                        for jj in 0..n {
                            for ii in 0..n {
                                acc += mz[(k, kk)]
                                    * my[(j, jj)]
                                    * mx[(i, ii)]
                                    * u[ii + n * (jj + n * kk)];
                            }
                        }
                    }
                    out[i + n * (j + n * k)] = acc;
                }
            }
        }
        out
    }

    fn pseudo_random(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (((i as u64).wrapping_mul(2_654_435_761).wrapping_add(seed)) % 1000) as f64 / 500.0
                    - 1.0
            })
            .collect()
    }

    #[test]
    fn matches_the_dense_kronecker_reference() {
        for nx in [2_usize, 4, 8] {
            let mk = |seed: u64| {
                DenseMatrix::from_fn(nx, nx, |i, j| {
                    ((i * 13 + j * 7 + seed as usize) as f64 * 0.41).sin()
                })
            };
            let (mx, my, mz) = (mk(1), mk(2), mk(3));
            let inv = pseudo_random(nx * nx * nx, 9);
            let r = pseudo_random(nx * nx * nx, 4);

            // Reference: forward with the transposes, scale, back.
            let fwd = kron3_apply(&mx.transpose(), &my.transpose(), &mz.transpose(), &r);
            let scaled: Vec<f64> = fwd.iter().zip(&inv).map(|(a, b)| a * b).collect();
            let expect = kron3_apply(&mx, &my, &mz, &scaled);

            let mut z = vec![0.0; nx * nx * nx];
            let mut scratch = FdmScratch::default();
            let (sx, sy, sz) = (mx.as_slice(), my.as_slice(), mz.as_slice());
            let (stx, sty, stz) = (mx.transpose(), my.transpose(), mz.transpose());
            fdm_element_apply(
                [sx, sy, sz],
                [stx.as_slice(), sty.as_slice(), stz.as_slice()],
                &inv,
                &r,
                &mut z,
                nx,
                &mut scratch,
            );
            for (a, b) in z.iter().zip(&expect) {
                assert!(
                    (a - b).abs() < 1e-11 * (1.0 + b.abs()),
                    "nx {nx}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn identity_factors_with_unit_weights_are_a_no_op() {
        let nx = 5;
        let id = DenseMatrix::identity(nx);
        let inv = vec![1.0; nx * nx * nx];
        let r = pseudo_random(nx * nx * nx, 77);
        let mut z = vec![0.0; nx * nx * nx];
        let i = id.as_slice();
        fdm_element_apply_cached([i, i, i], [i, i, i], &inv, &r, &mut z, nx);
        for (a, b) in z.iter().zip(&r) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn scratch_resizes_across_degrees() {
        let mut scratch = FdmScratch::new(3);
        let nx = 6;
        let id = DenseMatrix::identity(nx);
        let inv = vec![2.0; nx * nx * nx];
        let r = pseudo_random(nx * nx * nx, 5);
        let mut z = vec![0.0; nx * nx * nx];
        let i = id.as_slice();
        fdm_element_apply([i, i, i], [i, i, i], &inv, &r, &mut z, nx, &mut scratch);
        for (a, b) in z.iter().zip(&r) {
            assert!((a - 2.0 * b).abs() < 1e-14);
        }
    }

    #[test]
    fn ensure_reuses_the_allocation_when_shrinking() {
        let mut scratch = FdmScratch::new(9);
        let ptr = scratch.t1.as_ptr();
        let cap = scratch.t1.capacity();
        scratch.ensure(4);
        assert_eq!(scratch.t1.as_ptr(), ptr, "shrinking must not reallocate");
        assert_eq!(scratch.t1.capacity(), cap);
        scratch.ensure(9);
        assert_eq!(scratch.t1.as_ptr(), ptr);
    }

    #[test]
    fn flop_accounting_is_consistent() {
        let pnx = fdm_patch_points(7) as u64;
        assert_eq!(
            fdm_flops_per_element(7),
            12 * pnx * pnx * pnx * pnx + pnx * pnx * pnx
        );
        assert_eq!(fdm_bytes_per_dof(), 16);
    }
}
