//! High-level handle for the local Poisson operator on a mesh.
//!
//! [`PoissonOperator`] owns the per-mesh data (differentiation matrix and
//! geometric factors in both layouts) and dispatches to one of the three CPU
//! implementations.  The FPGA path lives in the `fpga-sim`/`sem-accel`
//! crates and reuses the same data through this type.

use crate::ops;
use crate::optimized::ax_optimized;
use crate::parallel::ax_parallel;
use crate::reference::ax_reference;
use crate::specialized::DegreeDispatch;
use sem_basis::DerivativeMatrix;
use sem_mesh::{BoxMesh, ElementField, GeometricFactors};
use serde::{Deserialize, Serialize};

/// Which CPU implementation of the kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AxImplementation {
    /// Listing-1 port on the interleaved layout (ground truth).
    Reference,
    /// Split-layout, cache-blocked kernel.
    #[default]
    Optimized,
    /// Split-layout kernel parallelised over elements with Rayon.
    Parallel,
    /// Degree-specialized const-generic kernel (`NX = N + 1` compile-time,
    /// see [`crate::specialized`]); bitwise identical to [`Self::Optimized`]
    /// and falls back to it when the degree is outside `3..=15`.
    Specialized,
}

/// The matrix-free local Poisson operator bound to a mesh.
#[derive(Debug, Clone)]
pub struct PoissonOperator {
    degree: usize,
    num_elements: usize,
    derivative: DerivativeMatrix,
    geometry: GeometricFactors,
    split_planes: [Vec<f64>; 6],
    implementation: AxImplementation,
    /// Specialized kernel family, resolved once at construction when the
    /// selected implementation can use it and the degree is covered.
    dispatch: Option<DegreeDispatch>,
}

/// Resolve the specialized dispatch for an implementation/degree pair:
/// `Specialized` asks for it explicitly, and `Optimized` auto-upgrades
/// (bitwise-identical results) when the degree is covered.
fn resolve_dispatch(implementation: AxImplementation, degree: usize) -> Option<DegreeDispatch> {
    match implementation {
        AxImplementation::Optimized | AxImplementation::Specialized => {
            DegreeDispatch::for_degree(degree)
        }
        AxImplementation::Reference | AxImplementation::Parallel => None,
    }
}

impl PoissonOperator {
    /// Build the operator for a mesh, precomputing geometric factors.
    #[must_use]
    pub fn new(mesh: &BoxMesh, implementation: AxImplementation) -> Self {
        let geometry = GeometricFactors::from_mesh(mesh);
        Self::from_parts(mesh.degree(), mesh.num_elements(), geometry, implementation)
    }

    /// Build the operator from precomputed geometric factors.
    #[must_use]
    pub fn from_parts(
        degree: usize,
        num_elements: usize,
        geometry: GeometricFactors,
        implementation: AxImplementation,
    ) -> Self {
        assert_eq!(geometry.degree(), degree);
        assert_eq!(geometry.num_elements(), num_elements);
        let derivative = DerivativeMatrix::new(degree);
        let split_planes = geometry.split();
        Self {
            degree,
            num_elements,
            derivative,
            geometry,
            split_planes,
            implementation,
            dispatch: resolve_dispatch(implementation, degree),
        }
    }

    /// Polynomial degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of elements.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// The implementation currently selected.
    #[must_use]
    pub fn implementation(&self) -> AxImplementation {
        self.implementation
    }

    /// Switch implementation (e.g. reference for verification, parallel for
    /// throughput runs).  Re-resolves the specialized dispatch.
    pub fn set_implementation(&mut self, implementation: AxImplementation) {
        self.implementation = implementation;
        self.dispatch = resolve_dispatch(implementation, self.degree);
    }

    /// The specialized kernel family serving this operator, when one is
    /// resolved (`Optimized` auto-upgrades on covered degrees; `None` means
    /// the generic path runs).
    #[must_use]
    pub fn dispatch(&self) -> Option<&DegreeDispatch> {
        self.dispatch.as_ref()
    }

    /// Pin the generic kernels even when the degree is covered — the
    /// escape hatch benchmarks use to measure generic-vs-specialized on the
    /// same operator configuration.
    pub fn pin_generic(&mut self) {
        self.dispatch = None;
    }

    /// The differentiation matrix.
    #[must_use]
    pub fn derivative(&self) -> &DerivativeMatrix {
        &self.derivative
    }

    /// The geometric factors (interleaved canonical copy).
    #[must_use]
    pub fn geometry(&self) -> &GeometricFactors {
        &self.geometry
    }

    /// The split geometric-factor planes.
    #[must_use]
    pub fn split_planes(&self) -> &[Vec<f64>; 6] {
        &self.split_planes
    }

    /// Apply the operator: `w = A u`, element by element.
    ///
    /// # Panics
    /// Panics if `u` does not match the operator's mesh dimensions.
    #[must_use]
    pub fn apply(&self, u: &ElementField) -> ElementField {
        assert_eq!(u.degree(), self.degree, "degree mismatch");
        assert_eq!(
            u.num_elements(),
            self.num_elements,
            "element count mismatch"
        );
        let mut w = ElementField::zeros(self.degree, self.num_elements);
        self.apply_into(u, &mut w);
        w
    }

    /// Apply the operator into an existing output field (no allocation).
    // lint: alloc-free (the Ax hot path: every CG iteration routes through here)
    pub fn apply_into(&self, u: &ElementField, w: &mut ElementField) {
        assert_eq!(u.len(), w.len(), "output field size mismatch");
        match self.implementation {
            AxImplementation::Reference => ax_reference(
                u.as_slice(),
                w.as_mut_slice(),
                self.geometry.interleaved(),
                &self.derivative,
            ),
            AxImplementation::Optimized | AxImplementation::Specialized => {
                if let Some(dispatch) = &self.dispatch {
                    dispatch.ax_apply_all(
                        u.as_slice(),
                        w.as_mut_slice(),
                        [
                            &self.split_planes[0][..],
                            &self.split_planes[1][..],
                            &self.split_planes[2][..],
                            &self.split_planes[3][..],
                            &self.split_planes[4][..],
                            &self.split_planes[5][..],
                        ],
                        self.derivative.d().as_slice(),
                        self.derivative.dt().as_slice(),
                    );
                } else {
                    // Out-of-range degree (or pinned generic): the generic
                    // split-layout kernel is the fallback path.
                    ax_optimized(
                        u.as_slice(),
                        w.as_mut_slice(),
                        &self.split_planes,
                        &self.derivative,
                    );
                }
            }
            AxImplementation::Parallel => ax_parallel(
                u.as_slice(),
                w.as_mut_slice(),
                &self.split_planes,
                &self.derivative,
            ),
        }
    }

    /// FLOPs for one full operator application on this mesh.
    #[must_use]
    pub fn flops_per_application(&self) -> u64 {
        ops::total_flops(self.degree, self.num_elements)
    }

    /// Degrees of freedom processed per application.
    #[must_use]
    pub fn dofs_per_application(&self) -> u64 {
        ops::total_dofs(self.degree, self.num_elements)
    }

    /// Bytes of compulsory global traffic per application.
    #[must_use]
    pub fn bytes_per_application(&self) -> u64 {
        ops::total_bytes(self.degree, self.num_elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn all_implementations_agree() {
        let mesh = BoxMesh::unit_cube(4, 2);
        let mut op = PoissonOperator::new(&mesh, AxImplementation::Reference);
        let mut rng = StdRng::seed_from_u64(11);
        let mut u = ElementField::zeros(4, 8);
        u.as_mut_slice()
            .iter_mut()
            .for_each(|v| *v = rng.gen_range(-1.0..1.0));

        let w_ref = op.apply(&u);
        op.set_implementation(AxImplementation::Optimized);
        let w_opt = op.apply(&u);
        op.set_implementation(AxImplementation::Parallel);
        let w_par = op.apply(&u);

        for ((a, b), c) in w_ref
            .as_slice()
            .iter()
            .zip(w_opt.as_slice())
            .zip(w_par.as_slice())
        {
            assert!((a - b).abs() < 1e-11 * (1.0 + a.abs()));
            assert_eq!(b, c, "optimized and parallel are bitwise identical");
        }
    }

    #[test]
    fn specialized_dispatch_resolves_once_and_is_bitwise_identical() {
        let mesh = BoxMesh::unit_cube(5, 2);
        let mut op = PoissonOperator::new(&mesh, AxImplementation::Specialized);
        assert!(op.dispatch().is_some(), "degree 5 is covered");
        let mut rng = StdRng::seed_from_u64(23);
        let mut u = ElementField::zeros(5, 8);
        u.as_mut_slice()
            .iter_mut()
            .for_each(|v| *v = rng.gen_range(-1.0..1.0));
        let w_spec = op.apply(&u);
        op.pin_generic();
        assert!(op.dispatch().is_none());
        let w_gen = op.apply(&u);
        assert_eq!(w_spec.as_slice(), w_gen.as_slice());
    }

    #[test]
    fn optimized_auto_upgrades_on_covered_degrees_only() {
        let covered = PoissonOperator::new(&BoxMesh::unit_cube(7, 1), AxImplementation::Optimized);
        assert!(covered.dispatch().is_some());
        let low = PoissonOperator::new(&BoxMesh::unit_cube(2, 1), AxImplementation::Optimized);
        assert!(low.dispatch().is_none());
        let reference =
            PoissonOperator::new(&BoxMesh::unit_cube(7, 1), AxImplementation::Reference);
        assert!(reference.dispatch().is_none());
    }

    #[test]
    fn specialized_out_of_range_falls_back_without_panicking() {
        let mesh = BoxMesh::unit_cube(2, 2);
        let mut op = PoissonOperator::new(&mesh, AxImplementation::Specialized);
        assert!(op.dispatch().is_none(), "degree 2 is below the range");
        let mut rng = StdRng::seed_from_u64(31);
        let mut u = ElementField::zeros(2, 8);
        u.as_mut_slice()
            .iter_mut()
            .for_each(|v| *v = rng.gen_range(-1.0..1.0));
        let w_spec = op.apply(&u);
        op.set_implementation(AxImplementation::Optimized);
        let w_opt = op.apply(&u);
        assert_eq!(w_spec.as_slice(), w_opt.as_slice());
    }

    #[test]
    fn accounting_matches_closed_forms() {
        let mesh = BoxMesh::unit_cube(7, 2);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        assert_eq!(op.dofs_per_application(), 8 * 512);
        assert_eq!(op.flops_per_application(), 8 * 512 * 111);
        assert_eq!(op.bytes_per_application(), 8 * 512 * 64);
    }

    #[test]
    #[should_panic(expected = "degree mismatch")]
    fn rejects_wrong_degree_field() {
        let mesh = BoxMesh::unit_cube(3, 1);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let u = ElementField::zeros(4, 1);
        let _ = op.apply(&u);
    }
}
