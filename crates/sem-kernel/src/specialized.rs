//! Degree-specialized tensor-contraction kernels (const-generic codegen).
//!
//! The paper's accelerator (Section III-B, Listing 1) owes its throughput to
//! specializing the datapath to one polynomial degree: loop trip counts,
//! unroll factors and array partitioning are HLS *compile-time* constants.
//! The generic CPU kernels in [`crate::optimized`] and [`crate::fdm`] carry
//! `nx` as a runtime value, so LLVM can neither fully unroll the unit-stride
//! inner dimensions nor keep the differentiation rows in registers.  This
//! module is the Rust-native analogue of that HLS specialization: one
//! monomorphized kernel family per hot degree `N = 3..=15`, generated from a
//! single const-generic contraction core with `NX = N + 1` baked in.
//!
//! Three properties are contractual:
//!
//! * **Bitwise parity.**  Every specialized kernel performs the *same*
//!   floating-point operations in the *same* order as its generic
//!   counterpart (`ax_element_split`, `fdm_element_apply`, the coarse
//!   `rcontract_*` chain); only the trip counts are compile-time.  Results
//!   are therefore bitwise identical, and the `cpu:optimized` backend can
//!   auto-upgrade to the specialized path without perturbing any solve.
//! * **Fixed-size, allocation-free scratch.**  Element scratch is
//!   `[f64; NX·NX·NX]`-backed (six banks, one per intermediate plane —
//!   mirroring the accelerator's BRAM banks), boxed once per thread and
//!   reused for every application.
//! * **One dispatch.**  [`DegreeDispatch::for_degree`] resolves the whole
//!   kernel family once at session/backend setup; out-of-range degrees get
//!   `None` and callers fall back to the generic path.
//!
//! The generated kernels also export their structural constants
//! ([`KernelStructure`]): the unroll width of the unit-stride inner
//! dimension, the scratch bank count, and the initiation interval the fully
//! unrolled dot products sustain.  `fpga_sim::AcceleratorDesign` derives its
//! design parameters from these instead of hand-picked constants, so the
//! measured CPU kernel and the modeled FPGA datapath share one source of
//! truth.

/// Smallest specialized degree.
pub const MIN_DEGREE: usize = 3;

/// Largest specialized degree.
pub const MAX_DEGREE: usize = 15;

/// Coarse points per direction the specialized coarse-transfer kernels are
/// generated for (`c + 1` with the degree-2 Galerkin coarse space).
pub const COARSE_POINTS: usize = 3;

/// Largest power of two dividing `n` (the arbitration-free vector width of
/// Section III-B: a power-of-two unroll that divides `N + 1` needs no BRAM
/// arbitration).
const fn largest_pow2_divisor(n: usize) -> usize {
    if n == 0 {
        1
    } else {
        1 << n.trailing_zeros()
    }
}

/// Structural constants of one generated kernel, exported so the FPGA design
/// model consumes the *actual* codegen parameters instead of recomputing
/// them from the degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStructure {
    /// Polynomial degree `N` the kernel is specialized for.
    pub degree: usize,
    /// GLL points per direction, `NX = N + 1` (every loop trip count).
    pub points: usize,
    /// Vector width of the fully unrolled unit-stride inner dimension: the
    /// largest power of two dividing `NX`, so lanes never straddle a pencil
    /// (the paper's arbitration-free unroll rule).
    pub unroll: usize,
    /// Fixed-size scratch banks the kernel partitions its intermediates
    /// into (`ur/us/ut/shur/shus/shut` — one BRAM bank each on the
    /// accelerator).
    pub scratch_banks: usize,
    /// Initiation interval of the contraction loops: with the dot products
    /// fully unrolled there is no loop-carried dependence, so new operands
    /// issue every cycle.
    pub initiation_interval: usize,
}

impl KernelStructure {
    /// The structure of the generated kernel for `points = N + 1` grid
    /// points per direction.
    #[must_use]
    pub const fn for_points(points: usize) -> Self {
        Self {
            degree: points - 1,
            points,
            unroll: largest_pow2_divisor(points),
            scratch_banks: 6,
            initiation_interval: 1,
        }
    }
}

/// The structural constants of the generated kernel for `degree`, or `None`
/// when the degree is outside the specialized range.
#[must_use]
pub fn kernel_structure(degree: usize) -> Option<KernelStructure> {
    if (MIN_DEGREE..=MAX_DEGREE).contains(&degree) {
        Some(KernelStructure::for_points(degree + 1))
    } else {
        None
    }
}

/// Fixed-size element scratch: six `[f64; NPTS]` banks, one per intermediate
/// plane, mirroring [`crate::optimized::AxScratch`]'s six buffers (and the
/// accelerator's six BRAM banks).  Boxed once per thread.
struct SpecScratch<const NPTS: usize> {
    ur: [f64; NPTS],
    us: [f64; NPTS],
    ut: [f64; NPTS],
    shur: [f64; NPTS],
    shus: [f64; NPTS],
    shut: [f64; NPTS],
}

impl<const NPTS: usize> SpecScratch<NPTS> {
    fn boxed() -> Box<Self> {
        Box::new(Self {
            ur: [0.0; NPTS],
            us: [0.0; NPTS],
            ut: [0.0; NPTS],
            shur: [0.0; NPTS],
            shus: [0.0; NPTS],
            shut: [0.0; NPTS],
        })
    }
}

/// One element's `w = Dᵀ G D u` with `NX` as a compile-time constant.
///
/// Mirrors [`crate::optimized::ax_element_split`] operation for operation
/// (same loops, same accumulation order — results are bitwise identical);
/// the const trip counts let LLVM fully unroll the `0..NX` dot products and
/// elide the bounds checks against the fixed-size scratch.
#[allow(clippy::needless_range_loop)] // mirrors the generic kernel's explicit stride arithmetic
fn ax_element_core<const NX: usize, const NPTS: usize>(
    u: &[f64],
    w: &mut [f64],
    g: [&[f64]; 6],
    d: &[f64],
    dt: &[f64],
    scratch: &mut SpecScratch<NPTS>,
) {
    debug_assert_eq!(NPTS, NX * NX * NX);
    assert_eq!(u.len(), NPTS);
    assert_eq!(w.len(), NPTS);
    assert_eq!(d.len(), NX * NX);
    assert_eq!(dt.len(), NX * NX);
    for plane in g {
        assert_eq!(plane.len(), NPTS);
    }
    let nxy = NX * NX;

    {
        let ur = &mut scratch.ur;
        let us = &mut scratch.us;
        let ut = &mut scratch.ut;
        ur.iter_mut().for_each(|v| *v = 0.0);
        us.iter_mut().for_each(|v| *v = 0.0);
        ut.iter_mut().for_each(|v| *v = 0.0);

        // r-direction: for each (j,k) row, small dense mat-vec.
        for k in 0..NX {
            for j in 0..NX {
                let row = j * NX + k * nxy;
                for i in 0..NX {
                    let mut acc = 0.0;
                    let drow = &d[i * NX..(i + 1) * NX];
                    let urow = &u[row..row + NX];
                    for l in 0..NX {
                        acc += drow[l] * urow[l];
                    }
                    ur[i + row] = acc;
                }
            }
        }
        // s-direction.
        for k in 0..NX {
            for j in 0..NX {
                let drow = &d[j * NX..(j + 1) * NX];
                for l in 0..NX {
                    let dv = drow[l];
                    let src = l * NX + k * nxy;
                    let dst = j * NX + k * nxy;
                    for i in 0..NX {
                        us[i + dst] += dv * u[i + src];
                    }
                }
            }
        }
        // t-direction.
        for k in 0..NX {
            let drow = &d[k * NX..(k + 1) * NX];
            for l in 0..NX {
                let dv = drow[l];
                let src = l * nxy;
                let dst = k * nxy;
                for ij in 0..nxy {
                    ut[ij + dst] += dv * u[ij + src];
                }
            }
        }
    }

    // Multiply by the geometric factors pointwise.
    for p in 0..NPTS {
        let (ur, us, ut) = (scratch.ur[p], scratch.us[p], scratch.ut[p]);
        scratch.shur[p] = g[0][p] * ur + g[1][p] * us + g[2][p] * ut;
        scratch.shus[p] = g[1][p] * ur + g[3][p] * us + g[4][p] * ut;
        scratch.shut[p] = g[2][p] * ur + g[4][p] * us + g[5][p] * ut;
    }

    // w = D^T_r shur + D^T_s shus + D^T_t shut.
    w.iter_mut().for_each(|v| *v = 0.0);
    for k in 0..NX {
        for j in 0..NX {
            let row = j * NX + k * nxy;
            for i in 0..NX {
                let mut acc = 0.0;
                let dtrow = &dt[i * NX..(i + 1) * NX];
                let srow = &scratch.shur[row..row + NX];
                for l in 0..NX {
                    acc += dtrow[l] * srow[l];
                }
                w[i + row] = acc;
            }
        }
    }
    for k in 0..NX {
        for j in 0..NX {
            let dtrow = &dt[j * NX..(j + 1) * NX];
            for l in 0..NX {
                let dv = dtrow[l];
                let src = l * NX + k * nxy;
                let dst = j * NX + k * nxy;
                for i in 0..NX {
                    w[i + dst] += dv * scratch.shus[i + src];
                }
            }
        }
    }
    for k in 0..NX {
        let dtrow = &dt[k * NX..(k + 1) * NX];
        for l in 0..NX {
            let dv = dtrow[l];
            let src = l * nxy;
            let dst = k * nxy;
            for ij in 0..nxy {
                w[ij + dst] += dv * scratch.shut[ij + src];
            }
        }
    }
}

/// The whole-field element loop over [`ax_element_core`] (the specialized
/// mirror of [`crate::optimized::ax_optimized_slices_with`]).
fn ax_field_core<const NX: usize, const NPTS: usize>(
    u: &[f64],
    w: &mut [f64],
    g_planes: [&[f64]; 6],
    d: &[f64],
    dt: &[f64],
    scratch: &mut SpecScratch<NPTS>,
) {
    assert_eq!(u.len(), w.len());
    assert_eq!(u.len() % NPTS, 0);
    for plane in g_planes {
        assert_eq!(plane.len(), u.len(), "geometric plane length mismatch");
    }
    let num_elements = u.len() / NPTS;
    for e in 0..num_elements {
        let range = e * NPTS..(e + 1) * NPTS;
        let g = [
            &g_planes[0][range.clone()],
            &g_planes[1][range.clone()],
            &g_planes[2][range.clone()],
            &g_planes[3][range.clone()],
            &g_planes[4][range.clone()],
            &g_planes[5][range.clone()],
        ];
        ax_element_core::<NX, NPTS>(&u[range.clone()], &mut w[range.clone()], g, d, dt, scratch);
    }
}

/// Square x-contraction with const trip counts (mirrors
/// [`crate::fdm::rcontract_x`] at `rows = cols = d2 = d3 = NX`).
#[allow(clippy::needless_range_loop)] // mirrors the generic kernel's explicit stride arithmetic
fn contract_x_core<const NX: usize>(m: &[f64], u: &[f64], out: &mut [f64]) {
    for p in 0..NX * NX {
        let urow = &u[p * NX..(p + 1) * NX];
        let orow = &mut out[p * NX..(p + 1) * NX];
        for (i, o) in orow.iter_mut().enumerate() {
            let mrow = &m[i * NX..(i + 1) * NX];
            let mut acc = 0.0;
            for l in 0..NX {
                acc += mrow[l] * urow[l];
            }
            *o = acc;
        }
    }
}

/// Square y-contraction with const trip counts (mirrors
/// [`crate::fdm::rcontract_y`]).
fn contract_y_core<const NX: usize>(m: &[f64], u: &[f64], out: &mut [f64]) {
    out[..NX * NX * NX].iter_mut().for_each(|v| *v = 0.0);
    for k in 0..NX {
        for j in 0..NX {
            let mrow = &m[j * NX..(j + 1) * NX];
            let dst = (j + k * NX) * NX;
            for (l, &mv) in mrow.iter().enumerate() {
                let src = (l + k * NX) * NX;
                for i in 0..NX {
                    out[dst + i] += mv * u[src + i];
                }
            }
        }
    }
}

/// Square z-contraction with const trip counts (mirrors
/// [`crate::fdm::rcontract_z`]).
fn contract_z_core<const NX: usize>(m: &[f64], u: &[f64], out: &mut [f64]) {
    let plane = NX * NX;
    out[..plane * NX].iter_mut().for_each(|v| *v = 0.0);
    for k in 0..NX {
        let mrow = &m[k * NX..(k + 1) * NX];
        let dst = k * plane;
        for (l, &mv) in mrow.iter().enumerate() {
            let src = l * plane;
            for p in 0..plane {
                out[dst + p] += mv * u[src + p];
            }
        }
    }
}

/// One element's fast-diagonalization solve with const trip counts (mirrors
/// [`crate::fdm::fdm_element_apply`]: three forward contractions, the modal
/// scale, three back).
fn fdm_element_core<const NX: usize, const NPTS: usize>(
    s: [&[f64]; 3],
    st: [&[f64]; 3],
    inv: &[f64],
    r: &[f64],
    z: &mut [f64],
    scratch: &mut SpecScratch<NPTS>,
) {
    debug_assert_eq!(NPTS, NX * NX * NX);
    assert_eq!(r.len(), NPTS);
    assert_eq!(z.len(), NPTS);
    assert_eq!(inv.len(), NPTS);
    let SpecScratch { ur: t1, us: t2, .. } = scratch;

    contract_x_core::<NX>(st[0], r, t1);
    contract_y_core::<NX>(st[1], t1, t2);
    contract_z_core::<NX>(st[2], t2, t1);
    for (c, &w) in t1.iter_mut().zip(inv) {
        *c *= w;
    }
    contract_x_core::<NX>(s[0], t1, t2);
    contract_y_core::<NX>(s[1], t2, t1);
    contract_z_core::<NX>(s[2], t1, z);
}

/// Rectangular x-contraction with const row/column counts (the coarse
/// transfer's mirror of [`crate::fdm::rcontract_x`]); `planes = d2·d3`.
fn rc_x_core<const ROWS: usize, const COLS: usize>(
    m: &[f64],
    u: &[f64],
    out: &mut [f64],
    planes: usize,
) {
    for p in 0..planes {
        let urow = &u[p * COLS..(p + 1) * COLS];
        let orow = &mut out[p * ROWS..(p + 1) * ROWS];
        for (i, o) in orow.iter_mut().enumerate() {
            let mrow = &m[i * COLS..(i + 1) * COLS];
            let mut acc = 0.0;
            for l in 0..COLS {
                acc += mrow[l] * urow[l];
            }
            *o = acc;
        }
    }
}

/// Rectangular y-contraction with const row/column counts (mirror of
/// [`crate::fdm::rcontract_y`]).
fn rc_y_core<const ROWS: usize, const COLS: usize>(
    m: &[f64],
    u: &[f64],
    out: &mut [f64],
    d1: usize,
    d3: usize,
) {
    out[..d1 * ROWS * d3].iter_mut().for_each(|v| *v = 0.0);
    for k in 0..d3 {
        for j in 0..ROWS {
            let mrow = &m[j * COLS..(j + 1) * COLS];
            let dst = (j + k * ROWS) * d1;
            for (l, &mv) in mrow.iter().enumerate() {
                let src = (l + k * COLS) * d1;
                for i in 0..d1 {
                    out[dst + i] += mv * u[src + i];
                }
            }
        }
    }
}

/// Rectangular z-contraction with const row/column counts (mirror of
/// [`crate::fdm::rcontract_z`]).
fn rc_z_core<const ROWS: usize, const COLS: usize>(
    m: &[f64],
    u: &[f64],
    out: &mut [f64],
    d1: usize,
    d2: usize,
) {
    let plane = d1 * d2;
    out[..plane * ROWS].iter_mut().for_each(|v| *v = 0.0);
    for k in 0..ROWS {
        let mrow = &m[k * COLS..(k + 1) * COLS];
        let dst = k * plane;
        for (l, &mv) in mrow.iter().enumerate() {
            let src = l * plane;
            for p in 0..plane {
                out[dst + p] += mv * u[src + p];
            }
        }
    }
}

/// Coarse restriction `t1[..CNX³] = Jᵀ⊗Jᵀ⊗Jᵀ fine` with const trip counts
/// (mirrors `CoarseCorrection::restrict_local` in `sem-solver`).
fn restrict_core<const NX: usize, const CNX: usize>(
    jt: &[f64],
    fine: &[f64],
    t1: &mut [f64],
    t2: &mut [f64],
) {
    rc_x_core::<CNX, NX>(jt, fine, t1, NX * NX);
    rc_y_core::<CNX, NX>(jt, t1, t2, CNX, NX);
    rc_z_core::<CNX, NX>(jt, t2, t1, CNX, CNX);
}

/// Coarse prolongation `t2[..NX³] = J⊗J⊗J t1[..CNX³]` with const trip
/// counts (`t1` is clobbered; mirrors `CoarseCorrection::prolong_local`).
fn prolong_core<const NX: usize, const CNX: usize>(j: &[f64], t1: &mut [f64], t2: &mut [f64]) {
    rc_x_core::<NX, CNX>(j, &t1[..CNX * CNX * CNX], t2, CNX * CNX);
    rc_y_core::<NX, CNX>(j, t2, t1, NX, CNX);
    rc_z_core::<NX, CNX>(j, t1, t2, NX, NX);
}

type AxAllFn = fn(&[f64], &mut [f64], [&[f64]; 6], &[f64], &[f64]);
type FdmFn = fn([&[f64]; 3], [&[f64]; 3], &[f64], &[f64], &mut [f64]);
type RestrictFn = fn(&[f64], &[f64], &mut [f64], &mut [f64]);
type ProlongFn = fn(&[f64], &mut [f64], &mut [f64]);

/// The kernel family of one specialized degree, resolved once at session or
/// backend setup and shared by `Ax`, the FDM fine pass, and the degree-2
/// coarse transfer.
#[derive(Debug, Clone, Copy)]
pub struct DegreeDispatch {
    structure: KernelStructure,
    ax_all: AxAllFn,
    fdm_one: FdmFn,
    restrict3: RestrictFn,
    prolong3: ProlongFn,
}

macro_rules! specialized_degrees {
    ($(($module:ident, $degree:literal)),+ $(,)?) => {
        $(
            mod $module {
                use std::cell::RefCell;

                const NX: usize = $degree + 1;
                const NPTS: usize = NX * NX * NX;

                thread_local! {
                    /// Per-thread fixed-size scratch, allocated once on first
                    /// use; every later application is allocation-free.
                    static SCRATCH: RefCell<Box<super::SpecScratch<NPTS>>> =
                        RefCell::new(super::SpecScratch::boxed());
                }

                pub fn ax_all(u: &[f64], w: &mut [f64], g: [&[f64]; 6], d: &[f64], dt: &[f64]) {
                    SCRATCH.with(|cell| {
                        let mut scratch = cell.borrow_mut();
                        super::ax_field_core::<NX, NPTS>(u, w, g, d, dt, &mut scratch);
                    });
                }

                pub fn fdm_one(
                    s: [&[f64]; 3],
                    st: [&[f64]; 3],
                    inv: &[f64],
                    r: &[f64],
                    z: &mut [f64],
                ) {
                    SCRATCH.with(|cell| {
                        let mut scratch = cell.borrow_mut();
                        super::fdm_element_core::<NX, NPTS>(s, st, inv, r, z, &mut scratch);
                    });
                }

                pub fn restrict3(jt: &[f64], fine: &[f64], t1: &mut [f64], t2: &mut [f64]) {
                    super::restrict_core::<NX, { super::COARSE_POINTS }>(jt, fine, t1, t2);
                }

                pub fn prolong3(j: &[f64], t1: &mut [f64], t2: &mut [f64]) {
                    super::prolong_core::<NX, { super::COARSE_POINTS }>(j, t1, t2);
                }
            }
        )+

        impl DegreeDispatch {
            /// Resolve the specialized kernel family for `degree`, or `None`
            /// when the degree is outside `MIN_DEGREE..=MAX_DEGREE` (callers
            /// fall back to the generic kernels).
            #[must_use]
            pub fn for_degree(degree: usize) -> Option<Self> {
                match degree {
                    $(
                        $degree => Some(Self {
                            structure: KernelStructure::for_points($degree + 1),
                            ax_all: $module::ax_all,
                            fdm_one: $module::fdm_one,
                            restrict3: $module::restrict3,
                            prolong3: $module::prolong3,
                        }),
                    )+
                    _ => None,
                }
            }
        }
    };
}

specialized_degrees!(
    (n3, 3),
    (n4, 4),
    (n5, 5),
    (n6, 6),
    (n7, 7),
    (n8, 8),
    (n9, 9),
    (n10, 10),
    (n11, 11),
    (n12, 12),
    (n13, 13),
    (n14, 14),
    (n15, 15),
);

impl DegreeDispatch {
    /// Resolve by grid points per direction (`points = N + 1`) — the FDM
    /// pass keys on its *patch* extent, which exceeds `N + 1` when the
    /// overlap is nonzero.
    #[must_use]
    pub fn for_points(points: usize) -> Option<Self> {
        points.checked_sub(1).and_then(Self::for_degree)
    }

    /// Whether a specialized kernel family exists for `degree`.
    #[must_use]
    pub fn covers(degree: usize) -> bool {
        (MIN_DEGREE..=MAX_DEGREE).contains(&degree)
    }

    /// The structural constants of this kernel family.
    #[must_use]
    pub fn structure(&self) -> KernelStructure {
        self.structure
    }

    /// Polynomial degree the family is specialized for.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.structure.degree
    }

    /// Grid points per direction, `N + 1`.
    #[must_use]
    pub fn points(&self) -> usize {
        self.structure.points
    }

    /// Apply `w = Dᵀ G D u` over every element of a field (the specialized
    /// mirror of [`crate::optimized::ax_optimized_slices`]; bitwise
    /// identical results).
    ///
    /// # Panics
    /// Panics if the field length is not a multiple of `(N+1)³` or any
    /// plane slice mismatches.
    pub fn ax_apply_all(
        &self,
        u: &[f64],
        w: &mut [f64],
        g_planes: [&[f64]; 6],
        d: &[f64],
        dt: &[f64],
    ) {
        (self.ax_all)(u, w, g_planes, d, dt);
    }

    /// One element's fast-diagonalization solve (the specialized mirror of
    /// [`crate::fdm::fdm_element_apply`]; bitwise identical results).
    ///
    /// # Panics
    /// Panics if `r`, `z` or `inv` are not `(N+1)³` long.
    pub fn fdm_element_apply(
        &self,
        s: [&[f64]; 3],
        st: [&[f64]; 3],
        inv: &[f64],
        r: &[f64],
        z: &mut [f64],
    ) {
        (self.fdm_one)(s, st, inv, r, z);
    }

    /// Coarse restriction `t1[..27] = Jᵀ⊗Jᵀ⊗Jᵀ fine` for the degree-2
    /// coarse space ([`COARSE_POINTS`] nodes per direction); `t2` is the
    /// ping-pong buffer.
    pub fn coarse_restrict(&self, jt: &[f64], fine: &[f64], t1: &mut [f64], t2: &mut [f64]) {
        (self.restrict3)(jt, fine, t1, t2);
    }

    /// Coarse prolongation `t2[..(N+1)³] = J⊗J⊗J t1[..27]` for the degree-2
    /// coarse space (`t1` is clobbered; the result lands in `t2`).
    pub fn coarse_prolong(&self, j: &[f64], t1: &mut [f64], t2: &mut [f64]) {
        (self.prolong3)(j, t1, t2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdm::{fdm_element_apply, rcontract_x, rcontract_y, rcontract_z, FdmScratch};
    use crate::optimized::{ax_optimized_slices_with, AxScratch};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use sem_mesh::{BoxMesh, GeometricFactors, MeshDeformation};

    fn random_field(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn structure_exports_the_codegen_constants() {
        let s7 = kernel_structure(7).unwrap();
        assert_eq!(s7.points, 8);
        assert_eq!(s7.unroll, 8, "N+1 = 8 is itself a power of two");
        assert_eq!(s7.scratch_banks, 6);
        assert_eq!(s7.initiation_interval, 1);
        let s9 = kernel_structure(9).unwrap();
        assert_eq!(s9.unroll, 2, "N+1 = 10: only 2 divides it");
        let s11 = kernel_structure(11).unwrap();
        assert_eq!(s11.unroll, 4, "N+1 = 12: 4 divides it, 8 does not");
        assert_eq!(kernel_structure(2), None);
        assert_eq!(kernel_structure(16), None);
    }

    #[test]
    fn dispatch_resolves_exactly_the_specialized_range() {
        for degree in MIN_DEGREE..=MAX_DEGREE {
            let d = DegreeDispatch::for_degree(degree).unwrap();
            assert_eq!(d.degree(), degree);
            assert_eq!(d.points(), degree + 1);
            assert!(DegreeDispatch::covers(degree));
        }
        assert!(DegreeDispatch::for_degree(2).is_none());
        assert!(DegreeDispatch::for_degree(16).is_none());
        assert!(DegreeDispatch::for_points(17).is_none());
        assert!(DegreeDispatch::for_points(0).is_none());
        assert_eq!(DegreeDispatch::for_points(8).unwrap().degree(), 7);
    }

    #[test]
    fn specialized_ax_is_bitwise_identical_to_the_generic_kernel() {
        for degree in [3_usize, 7, 10] {
            let mesh = BoxMesh::new(
                degree,
                [2, 1, 1],
                [1.0, 1.0, 1.0],
                MeshDeformation::Sinusoidal { amplitude: 0.04 },
            );
            let geo = GeometricFactors::from_mesh(&mesh);
            let dm = sem_basis::DerivativeMatrix::new(degree);
            let planes = geo.split();
            let g = [
                planes[0].as_slice(),
                planes[1].as_slice(),
                planes[2].as_slice(),
                planes[3].as_slice(),
                planes[4].as_slice(),
                planes[5].as_slice(),
            ];
            let u = random_field(mesh.num_local_dofs(), degree as u64);
            let mut w_gen = vec![0.0; u.len()];
            let mut w_spec = vec![0.0; u.len()];
            let mut scratch = AxScratch::default();
            ax_optimized_slices_with(&u, &mut w_gen, g, &dm, &mut scratch);
            let dispatch = DegreeDispatch::for_degree(degree).unwrap();
            dispatch.ax_apply_all(&u, &mut w_spec, g, dm.d().as_slice(), dm.dt().as_slice());
            assert_eq!(w_gen, w_spec, "degree {degree}");
        }
    }

    #[test]
    fn specialized_fdm_is_bitwise_identical_to_the_generic_kernel() {
        for degree in [3_usize, 7, 12] {
            let nx = degree + 1;
            let npts = nx * nx * nx;
            let sx = random_field(nx * nx, 1);
            let sy = random_field(nx * nx, 2);
            let sz = random_field(nx * nx, 3);
            let stx = random_field(nx * nx, 4);
            let sty = random_field(nx * nx, 5);
            let stz = random_field(nx * nx, 6);
            let inv = random_field(npts, 7);
            let r = random_field(npts, 8);
            let mut z_gen = vec![0.0; npts];
            let mut z_spec = vec![0.0; npts];
            let mut scratch = FdmScratch::default();
            fdm_element_apply(
                [&sx, &sy, &sz],
                [&stx, &sty, &stz],
                &inv,
                &r,
                &mut z_gen,
                nx,
                &mut scratch,
            );
            let dispatch = DegreeDispatch::for_degree(degree).unwrap();
            dispatch.fdm_element_apply([&sx, &sy, &sz], [&stx, &sty, &stz], &inv, &r, &mut z_spec);
            assert_eq!(z_gen, z_spec, "degree {degree}");
        }
    }

    #[test]
    fn specialized_coarse_transfer_matches_the_generic_contractions() {
        for degree in [3_usize, 7, 15] {
            let nx = degree + 1;
            let cnx = COARSE_POINTS;
            let npts = nx * nx * nx;
            let j = random_field(nx * cnx, 21);
            let jt: Vec<f64> = {
                // row-major transpose of the nx × cnx matrix
                let mut t = vec![0.0; cnx * nx];
                for r in 0..nx {
                    for c in 0..cnx {
                        t[c * nx + r] = j[r * cnx + c];
                    }
                }
                t
            };
            let fine = random_field(npts, 22);
            let dispatch = DegreeDispatch::for_degree(degree).unwrap();

            // Restriction.
            let (mut t1g, mut t2g) = (vec![0.0; npts], vec![0.0; npts]);
            rcontract_x(&jt, cnx, nx, &fine, &mut t1g, nx, nx);
            rcontract_y(&jt, cnx, nx, &t1g.clone(), &mut t2g, cnx, nx);
            let t2snap = t2g.clone();
            rcontract_z(&jt, cnx, nx, &t2snap, &mut t1g, cnx, cnx);
            let (mut t1s, mut t2s) = (vec![0.0; npts], vec![0.0; npts]);
            dispatch.coarse_restrict(&jt, &fine, &mut t1s, &mut t2s);
            assert_eq!(
                t1g[..cnx * cnx * cnx],
                t1s[..cnx * cnx * cnx],
                "degree {degree}"
            );

            // Prolongation of the restricted coefficients.
            let coarse = t1g[..cnx * cnx * cnx].to_vec();
            let (mut p1g, mut p2g) = (vec![0.0; npts], vec![0.0; npts]);
            p1g[..coarse.len()].copy_from_slice(&coarse);
            rcontract_x(
                &j,
                nx,
                cnx,
                &p1g.clone()[..cnx * cnx * cnx],
                &mut p2g,
                cnx,
                cnx,
            );
            let p2snap = p2g.clone();
            rcontract_y(&j, nx, cnx, &p2snap, &mut p1g, nx, cnx);
            let p1snap = p1g.clone();
            rcontract_z(&j, nx, cnx, &p1snap, &mut p2g, nx, nx);
            let (mut p1s, mut p2s) = (vec![0.0; npts], vec![0.0; npts]);
            p1s[..coarse.len()].copy_from_slice(&coarse);
            dispatch.coarse_prolong(&j, &mut p1s, &mut p2s);
            assert_eq!(p2g, p2s, "degree {degree}");
        }
    }
}
