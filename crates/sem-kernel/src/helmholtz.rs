//! The Helmholtz variant of the local operator (CEED bake-off kernel BK5
//! proper).
//!
//! The paper focuses on the pure Poisson operator of Nekbone; the CEED BK5
//! kernel it references "closely resembles the local Poisson operator, but
//! also considers one more geometric factor" — the collocation mass term.
//! This module implements that variant:
//!
//! \[w^e = D^T G^e D u^e \; + \; \lambda \, B^e u^e\]
//!
//! where `B^e = J w_i w_j w_k` is the diagonal mass matrix and `λ ≥ 0` the
//! Helmholtz constant.  It reuses the optimised split-layout gradient path
//! and adds the seventh geometric factor (the mass diagonal) exactly as BK5
//! does, so the extra cost is 2 FLOPs and one extra load per DOF.

use crate::operator::PoissonOperator;
use sem_mesh::ElementField;
use serde::{Deserialize, Serialize};

/// Cost of the Helmholtz (BK5) kernel per degree of freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelmholtzCost {
    /// Additions per DOF (`6(N+1) + 7`).
    pub adds: usize,
    /// Multiplications per DOF (`6(N+1) + 11`).
    pub mults: usize,
    /// Double words loaded from global memory per DOF (8: `u`, six `G`
    /// entries and the mass diagonal).
    pub loads: usize,
    /// Double words written per DOF (1).
    pub writes: usize,
}

impl HelmholtzCost {
    /// Evaluate the BK5 cost measure for degree `degree`.
    #[must_use]
    pub fn for_degree(degree: usize) -> Self {
        let poisson = crate::ops::KernelCost::for_degree(degree);
        Self {
            adds: poisson.adds + 1,
            mults: poisson.mults + 2,
            loads: crate::ops::KernelTraffic::for_degree(degree).loads + 1,
            writes: 1,
        }
    }

    /// Total FLOPs per DOF.
    #[must_use]
    pub fn flops(&self) -> usize {
        self.adds + self.mults
    }

    /// Operational intensity in FLOP/byte.
    #[must_use]
    pub fn operational_intensity(&self) -> f64 {
        self.flops() as f64 / ((self.loads + self.writes) as f64 * 8.0)
    }
}

/// The Helmholtz (BK5) operator `A + λ B` bound to a mesh.
#[derive(Debug, Clone)]
pub struct HelmholtzOperator {
    poisson: PoissonOperator,
    lambda: f64,
}

impl HelmholtzOperator {
    /// Wrap an existing Poisson operator with a Helmholtz constant `lambda`.
    ///
    /// # Panics
    /// Panics if `lambda` is negative (the operator would lose positive
    /// semi-definiteness).
    #[must_use]
    pub fn new(poisson: PoissonOperator, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "the Helmholtz constant must be non-negative");
        Self { poisson, lambda }
    }

    /// The Helmholtz constant λ.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The underlying Poisson operator.
    #[must_use]
    pub fn poisson(&self) -> &PoissonOperator {
        &self.poisson
    }

    /// Apply `w = (A + λ B) u`.
    #[must_use]
    pub fn apply(&self, u: &ElementField) -> ElementField {
        let mut w = self.poisson.apply(u);
        if self.lambda != 0.0 {
            let mass = self.poisson.geometry().mass();
            for ((w, &u), &b) in w
                .as_mut_slice()
                .iter_mut()
                .zip(u.as_slice())
                .zip(mass.as_slice())
            {
                *w += self.lambda * b * u;
            }
        }
        w
    }

    /// FLOPs per application on this mesh (BK5 accounting).
    #[must_use]
    pub fn flops_per_application(&self) -> u64 {
        HelmholtzCost::for_degree(self.poisson.degree()).flops() as u64
            * self.poisson.dofs_per_application()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::AxImplementation;
    use sem_mesh::BoxMesh;

    fn setup(degree: usize, lambda: f64) -> (BoxMesh, HelmholtzOperator) {
        let mesh = BoxMesh::unit_cube(degree, 2);
        let poisson = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        (mesh, HelmholtzOperator::new(poisson, lambda))
    }

    #[test]
    fn reduces_to_poisson_when_lambda_is_zero() {
        let (mesh, op) = setup(4, 0.0);
        let u = mesh.evaluate(|x, y, z| x * y + z);
        let w_helm = op.apply(&u);
        let w_poisson = op.poisson().apply(&u);
        assert_eq!(w_helm.as_slice(), w_poisson.as_slice());
    }

    #[test]
    fn constants_are_no_longer_in_the_null_space() {
        // A annihilates constants, but A + λB does not: (A + λB) 1 = λ B 1.
        let (mesh, op) = setup(3, 2.5);
        let ones = semfield_ones(&mesh);
        let w = op.apply(&ones);
        let mass = op.poisson().geometry().mass();
        for (got, &b) in w.as_slice().iter().zip(mass.as_slice()) {
            assert!((got - 2.5 * b).abs() < 1e-10 * (1.0 + b.abs()));
        }
    }

    fn semfield_ones(mesh: &BoxMesh) -> ElementField {
        ElementField::constant(mesh.degree(), mesh.num_elements(), 1.0)
    }

    #[test]
    fn operator_is_symmetric_positive_definite_for_positive_lambda() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (mesh, op) = setup(3, 1.7);
        let n = mesh.num_local_dofs();
        let mut rng = StdRng::seed_from_u64(5);
        let mut u = ElementField::zeros(3, 8);
        let mut v = ElementField::zeros(3, 8);
        u.as_mut_slice()
            .iter_mut()
            .for_each(|x| *x = rng.gen_range(-1.0..1.0));
        v.as_mut_slice()
            .iter_mut()
            .for_each(|x| *x = rng.gen_range(-1.0..1.0));
        let au = op.apply(&u);
        let av = op.apply(&v);
        let vau = v.dot(&au);
        let uav = u.dot(&av);
        assert!((vau - uav).abs() < 1e-9 * (1.0 + vau.abs()));
        // Strictly positive energy for a non-zero vector.
        let uau = u.dot(&au);
        assert!(uau > 0.0);
        assert_eq!(n, u.len());
    }

    #[test]
    fn bk5_cost_accounting() {
        let c = HelmholtzCost::for_degree(7);
        // Poisson is (54, 57, 7, 1); BK5 adds one add, two mults, one load.
        assert_eq!(c.adds, 55);
        assert_eq!(c.mults, 59);
        assert_eq!(c.loads, 8);
        assert_eq!(c.flops(), 114);
        // The extra mass-diagonal load costs more bytes than the extra two
        // FLOPs bring, so BK5's operational intensity is slightly *below* the
        // pure Poisson operator's.
        assert!(c.operational_intensity() < crate::ops::operational_intensity(7));
        assert!(c.operational_intensity() > 0.9 * crate::ops::operational_intensity(7));
        let (_, op) = setup(7, 1.0);
        assert_eq!(op.flops_per_application(), 8 * 512 * 114);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_is_rejected() {
        let mesh = BoxMesh::unit_cube(2, 1);
        let poisson = PoissonOperator::new(&mesh, AxImplementation::Reference);
        let _ = HelmholtzOperator::new(poisson, -1.0);
    }
}
