//! Operation, traffic and intensity accounting for the `Ax` kernel.
//!
//! These are the closed forms of Section IV of the paper:
//!
//! * cost per degree of freedom
//!   `C(N) = (adds, mults) = (6(N+1) + 6, 6(N+1) + 9)`,
//! * global-memory traffic per degree of freedom
//!   `Q(N) = (loads, writes) = (7, 1)` double words,
//! * operational intensity
//!   `I(N) = (12(N+1) + 15) / (8 · sizeof(double))` FLOP per byte.
//!
//! Every benchmark and both the analytic model and the FPGA simulator pull
//! their FLOP counts from here so the numbers cannot drift apart.

use serde::{Deserialize, Serialize};

/// Size of one double-precision word in bytes.
pub const DOUBLE_BYTES: usize = 8;

/// Floating-point cost of the kernel per degree of freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Double-precision additions per DOF.
    pub adds: usize,
    /// Double-precision multiplications per DOF.
    pub mults: usize,
}

impl KernelCost {
    /// The paper's cost measure `C(N)`.
    #[must_use]
    pub fn for_degree(degree: usize) -> Self {
        let n1 = degree + 1;
        Self {
            adds: 6 * n1 + 6,
            mults: 6 * n1 + 9,
        }
    }

    /// Total floating-point operations per DOF.
    #[must_use]
    pub fn total(&self) -> usize {
        self.adds + self.mults
    }
}

/// Global-memory traffic of the kernel per degree of freedom, in
/// double-precision words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelTraffic {
    /// Words loaded from global memory per DOF (six geometric factors plus
    /// the operand value itself — all reuse of `u` within the element is
    /// already exploited on chip).
    pub loads: usize,
    /// Words written back per DOF (the result `w`).
    pub writes: usize,
}

impl KernelTraffic {
    /// The paper's access measure `Q(N)` (degree-independent).
    #[must_use]
    pub fn for_degree(_degree: usize) -> Self {
        Self {
            loads: 7,
            writes: 1,
        }
    }

    /// Total words moved per DOF.
    #[must_use]
    pub fn total(&self) -> usize {
        self.loads + self.writes
    }

    /// Total bytes moved per DOF.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.total() * DOUBLE_BYTES
    }
}

/// Total floating-point operations per DOF, `12(N+1) + 15`.
#[inline]
#[must_use]
pub fn flops_per_dof(degree: usize) -> usize {
    KernelCost::for_degree(degree).total()
}

/// Bytes of global-memory traffic per DOF (8 words of 8 bytes).
#[inline]
#[must_use]
pub fn bytes_per_dof(degree: usize) -> usize {
    KernelTraffic::for_degree(degree).total_bytes()
}

/// Operational intensity `I(N)` in FLOP per byte.
#[inline]
#[must_use]
pub fn operational_intensity(degree: usize) -> f64 {
    flops_per_dof(degree) as f64 / bytes_per_dof(degree) as f64
}

/// Total FLOPs for evaluating the operator on `num_elements` elements.
#[inline]
#[must_use]
pub fn total_flops(degree: usize, num_elements: usize) -> u64 {
    flops_per_dof(degree) as u64 * sem_basis::dofs_per_element(degree) as u64 * num_elements as u64
}

/// Total degrees of freedom for `num_elements` elements.
#[inline]
#[must_use]
pub fn total_dofs(degree: usize, num_elements: usize) -> u64 {
    sem_basis::dofs_per_element(degree) as u64 * num_elements as u64
}

/// Total bytes of global traffic for `num_elements` elements.
#[inline]
#[must_use]
pub fn total_bytes(degree: usize, num_elements: usize) -> u64 {
    bytes_per_dof(degree) as u64 * sem_basis::dofs_per_element(degree) as u64 * num_elements as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_matches_paper_closed_form() {
        // Spot values quoted implicitly by the paper: N = 7 gives
        // 12*8 + 15 = 111 FLOP/DOF; N = 15 gives 207; N = 11 gives 159.
        assert_eq!(flops_per_dof(7), 111);
        assert_eq!(flops_per_dof(11), 159);
        assert_eq!(flops_per_dof(15), 207);
        let c = KernelCost::for_degree(7);
        assert_eq!(c.adds, 54);
        assert_eq!(c.mults, 57);
    }

    #[test]
    fn traffic_is_eight_words_per_dof() {
        for n in 1..=15 {
            let q = KernelTraffic::for_degree(n);
            assert_eq!(q.loads, 7);
            assert_eq!(q.writes, 1);
            assert_eq!(q.total_bytes(), 64);
        }
    }

    #[test]
    fn intensity_grows_with_degree() {
        let mut prev = 0.0;
        for n in 1..=15 {
            let i = operational_intensity(n);
            assert!(i > prev);
            prev = i;
        }
        // I(7) = 111/64.
        assert!((operational_intensity(7) - 111.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn totals_scale_linearly_with_elements() {
        assert_eq!(total_dofs(7, 4096), 512 * 4096);
        assert_eq!(total_flops(7, 2), 2 * 512 * 111);
        assert_eq!(total_bytes(7, 3), 3 * 512 * 64);
        assert_eq!(total_flops(7, 4096), 2 * total_flops(7, 2048));
    }
}
