//! The matrix-free local Poisson operator (`Ax`, CEED "bake-off kernel" BK5).
//!
//! This crate implements the computational core of the paper: the
//! per-element, matrix-free evaluation
//!
//! \[w^e = A^e u^e = D^T G^e D\, u^e\]
//!
//! where `D` holds the one-dimensional GLL differentiation matrix applied
//! along the three tensor directions and `G^e` are the six geometric factors
//! per node (see `sem-mesh`).  Three CPU implementations are provided:
//!
//! * [`reference`] — a line-by-line port of the paper's Listing 1, operating
//!   on the interleaved `gxyz` layout.  This is the semantic ground truth.
//! * [`optimized`] — the layout the optimised accelerator uses: `gxyz` split
//!   into six planes, loop structure reorganised for locality (the
//!   Section III-B transformations expressed on a CPU).
//! * [`parallel`] — the optimised kernel dispatched over elements with Rayon,
//!   the multi-core CPU baseline of the evaluation.
//!
//! [`specialized`] layers degree-specialized codegen on top: const-generic
//! kernel families with `NX = N + 1` baked in for the hot degrees
//! `N = 3..=15`, resolved once via [`specialized::DegreeDispatch`] and
//! bitwise identical to [`optimized`] (the Rust-native analogue of the
//! paper's fixed-degree HLS datapath).
//!
//! [`ops`] provides the FLOP / byte / DOF accounting used by every
//! benchmark, matching the closed forms of Section IV, and [`assemble`]
//! builds dense element matrices and operator diagonals for verification and
//! preconditioning.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod assemble;
pub mod fdm;
pub mod helmholtz;
pub mod operator;
pub mod ops;
pub mod optimized;
pub mod parallel;
pub mod reference;
pub mod specialized;

pub use fdm::{
    fdm_bytes_per_dof, fdm_flops_per_element, fdm_patch_points, rcontract_x, rcontract_y,
    rcontract_z, FdmScratch,
};
pub use helmholtz::{HelmholtzCost, HelmholtzOperator};
pub use operator::{AxImplementation, PoissonOperator};
pub use ops::{bytes_per_dof, flops_per_dof, operational_intensity, KernelCost, KernelTraffic};
pub use specialized::{kernel_structure, DegreeDispatch, KernelStructure};
