//! Dense assembly and diagonal extraction of the local operator.
//!
//! SEM never assembles `A^e` in production (the whole point of the paper's
//! matrix-free kernel), but the dense matrix is invaluable for verification
//! — and its diagonal is exactly what the Jacobi preconditioner of the
//! Nekbone-style solver needs.

use crate::operator::{AxImplementation, PoissonOperator};
use sem_basis::DenseMatrix;
use sem_mesh::{BoxMesh, ElementField};

/// Assemble the dense matrix of a single element by applying the matrix-free
/// operator to unit vectors.  Cost is `O((N+1)^6)`; intended for small `N`
/// in tests only.
#[must_use]
pub fn assemble_element_matrix(op: &PoissonOperator, element: usize) -> DenseMatrix {
    let npts = sem_basis::dofs_per_element(op.degree());
    assert!(element < op.num_elements(), "element index out of range");
    let mut mat = DenseMatrix::zeros(npts, npts);
    let mut u = ElementField::zeros(op.degree(), op.num_elements());
    for col in 0..npts {
        u.fill_zero();
        u.element_mut(element)[col] = 1.0;
        let w = op.apply(&u);
        for row in 0..npts {
            mat[(row, col)] = w.element(element)[row];
        }
    }
    mat
}

/// Extract the diagonal of the operator for every element directly from the
/// differentiation matrix and geometric factors, in `O(E (N+1)^4)` — the
/// Jacobi preconditioner setup of the solver.
///
/// The diagonal entry at node `(i, j, k)` of element `e` is
///
/// ```text
/// A_ii = Σ_l  D[l][i]^2 G_rr(l,j,k) + D[l][j]^2 G_ss(i,l,k) + D[l][k]^2 G_tt(i,j,l)
///       + 2 D[i][i] D[j][j] G_rs(i,j,k) + 2 D[i][i] D[k][k] G_rt(i,j,k)
///       + 2 D[j][j] D[k][k] G_st(i,j,k)
/// ```
///
/// (the cross terms only pick up the `l = i` / `l = j` / `l = k` contribution
/// because the two directional sums touch the same node only there).
#[must_use]
pub fn operator_diagonal(op: &PoissonOperator) -> ElementField {
    let degree = op.degree();
    let nx = degree + 1;
    let d = op.derivative().d();
    let geo = op.geometry();
    let mut diag = ElementField::zeros(degree, op.num_elements());
    for e in 0..op.num_elements() {
        for k in 0..nx {
            for j in 0..nx {
                for i in 0..nx {
                    let node = |ii: usize, jj: usize, kk: usize| ii + nx * (jj + nx * kk);
                    let mut acc = 0.0;
                    for l in 0..nx {
                        let dli = d[(l, i)];
                        let dlj = d[(l, j)];
                        let dlk = d[(l, k)];
                        acc += dli * dli * geo.at(e, node(l, j, k), 0);
                        acc += dlj * dlj * geo.at(e, node(i, l, k), 3);
                        acc += dlk * dlk * geo.at(e, node(i, j, l), 5);
                    }
                    let here = node(i, j, k);
                    acc += 2.0 * d[(i, i)] * d[(j, j)] * geo.at(e, here, 1);
                    acc += 2.0 * d[(i, i)] * d[(k, k)] * geo.at(e, here, 2);
                    acc += 2.0 * d[(j, j)] * d[(k, k)] * geo.at(e, here, 4);
                    diag.element_mut(e)[here] = acc;
                }
            }
        }
    }
    diag
}

/// Convenience: build the operator for `mesh` and assemble element `element`.
#[must_use]
pub fn assemble_for_mesh(mesh: &BoxMesh, element: usize) -> DenseMatrix {
    let op = PoissonOperator::new(mesh, AxImplementation::Reference);
    assemble_element_matrix(&op, element)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem_mesh::MeshDeformation;

    #[test]
    fn assembled_matrix_is_symmetric_positive_semidefinite() {
        let mesh = BoxMesh::unit_cube(2, 1);
        let op = PoissonOperator::new(&mesh, AxImplementation::Reference);
        let a = assemble_element_matrix(&op, 0);
        assert!(a.is_symmetric(1e-10));
        // Positive semi-definite: Gershgorin is too crude, check via x^T A x
        // for a few deterministic vectors including the null vector (constants).
        let n = a.rows();
        let ones = vec![1.0; n];
        let a_ones = a.matvec(&ones);
        assert!(a_ones.iter().all(|&v| v.abs() < 1e-10));
        for s in 0..5 {
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 7 + s * 13) % 11) as f64 - 5.0)
                .collect();
            let ax = a.matvec(&x);
            let energy: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
            assert!(energy >= -1e-9);
        }
    }

    #[test]
    fn diagonal_matches_assembled_matrix() {
        for deformation in [
            MeshDeformation::None,
            MeshDeformation::Sinusoidal { amplitude: 0.04 },
        ] {
            let mesh = BoxMesh::new(3, [2, 1, 1], [1.0; 3], deformation);
            let op = PoissonOperator::new(&mesh, AxImplementation::Reference);
            let diag = operator_diagonal(&op);
            for e in 0..mesh.num_elements() {
                let a = assemble_element_matrix(&op, e);
                for p in 0..a.rows() {
                    let expect = a[(p, p)];
                    let got = diag.element(e)[p];
                    assert!(
                        (expect - got).abs() < 1e-9 * (1.0 + expect.abs()),
                        "{deformation:?} element {e} node {p}: {got} vs {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn diagonal_is_positive_on_valid_meshes() {
        let mesh = BoxMesh::unit_cube(5, 2);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let diag = operator_diagonal(&op);
        assert!(diag.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn assemble_for_mesh_wrapper_works() {
        let mesh = BoxMesh::unit_cube(1, 1);
        let a = assemble_for_mesh(&mesh, 0);
        assert_eq!(a.rows(), 8);
        assert!(a.is_symmetric(1e-12));
    }
}
