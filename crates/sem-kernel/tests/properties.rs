//! Property-style tests of the matrix-free operator.
//!
//! The offline build cannot use `proptest`, so each property is exercised
//! over a deterministic seeded sweep of random inputs instead of a shrinking
//! search — same invariants, reproducible cases.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sem_kernel::{AxImplementation, PoissonOperator};
use sem_mesh::{BoxMesh, ElementField, MeshDeformation};

fn random_field(degree: usize, elems: usize, values: &[f64]) -> ElementField {
    let mut f = ElementField::zeros(degree, elems);
    let n = f.len();
    for (i, v) in f.as_mut_slice().iter_mut().enumerate() {
        *v = values[i % values.len()] * ((i % 17) as f64 / 17.0 - 0.5);
    }
    assert_eq!(f.len(), n);
    f
}

fn random_seed(rng: &mut StdRng, scale: f64) -> Vec<f64> {
    let len = rng.gen_range(8usize..32);
    (0..len).map(|_| rng.gen_range(-scale..scale)).collect()
}

/// The operator is linear: A(a u + b v) = a A u + b A v.
#[test]
fn operator_is_linear() {
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..24 {
        let degree = rng.gen_range(1usize..=5);
        let a = rng.gen_range(-3.0..3.0);
        let b = rng.gen_range(-3.0..3.0);
        let seed = random_seed(&mut rng, 1.0);
        let mesh = BoxMesh::unit_cube(degree, 2);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let u = random_field(degree, 8, &seed);
        let mut v = random_field(degree, 8, &seed);
        v.as_mut_slice().iter_mut().for_each(|x| *x = x.cos());
        let mut combo = u.clone();
        combo
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_slice())
            .for_each(|(x, &y)| *x = a * *x + b * y);
        let lhs = op.apply(&combo);
        let au = op.apply(&u);
        let av = op.apply(&v);
        for i in 0..lhs.len() {
            let expect = a * au.as_slice()[i] + b * av.as_slice()[i];
            assert!(
                (lhs.as_slice()[i] - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "degree {degree}, dof {i}"
            );
        }
    }
}

/// Symmetry of the bilinear form: v^T A u == u^T A v.
#[test]
fn operator_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(22);
    for _ in 0..24 {
        let degree = rng.gen_range(1usize..=5);
        let seed_u = random_seed(&mut rng, 1.0);
        let seed_v = random_seed(&mut rng, 1.0);
        let amplitude = rng.gen_range(0.0..0.05);
        let mesh = BoxMesh::new(
            degree,
            [2, 1, 1],
            [1.0, 1.3, 0.8],
            MeshDeformation::Sinusoidal { amplitude },
        );
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let u = random_field(degree, 2, &seed_u);
        let v = random_field(degree, 2, &seed_v);
        let au = op.apply(&u);
        let av = op.apply(&v);
        let vau = v.dot(&au);
        let uav = u.dot(&av);
        assert!(
            (vau - uav).abs() < 1e-8 * (1.0 + vau.abs()),
            "degree {degree}, amplitude {amplitude}"
        );
    }
}

/// Non-negative energy: u^T A u >= 0 for any nodal vector.
#[test]
fn operator_is_positive_semidefinite() {
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..24 {
        let degree = rng.gen_range(1usize..=5);
        let len = rng.gen_range(8usize..64);
        let seed: Vec<f64> = (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mesh = BoxMesh::unit_cube(degree, 2);
        let op = PoissonOperator::new(&mesh, AxImplementation::Parallel);
        let u = random_field(degree, 8, &seed);
        let au = op.apply(&u);
        assert!(u.dot(&au) >= -1e-9, "degree {degree}");
    }
}

/// Reference and optimised kernels agree on deformed meshes of any degree.
#[test]
fn implementations_agree() {
    let mut rng = StdRng::seed_from_u64(24);
    for _ in 0..24 {
        let degree = rng.gen_range(1usize..=6);
        let amplitude = rng.gen_range(0.0..0.06);
        let seed = random_seed(&mut rng, 1.0);
        let mesh = BoxMesh::new(
            degree,
            [2, 2, 1],
            [1.0; 3],
            MeshDeformation::Sinusoidal { amplitude },
        );
        let mut op = PoissonOperator::new(&mesh, AxImplementation::Reference);
        let u = random_field(degree, 4, &seed);
        let w_ref = op.apply(&u);
        op.set_implementation(AxImplementation::Optimized);
        let w_opt = op.apply(&u);
        op.set_implementation(AxImplementation::Parallel);
        let w_par = op.apply(&u);
        for i in 0..u.len() {
            assert!(
                (w_ref.as_slice()[i] - w_opt.as_slice()[i]).abs()
                    < 1e-10 * (1.0 + w_ref.as_slice()[i].abs()),
                "degree {degree}, dof {i}"
            );
            assert_eq!(
                w_opt.as_slice()[i],
                w_par.as_slice()[i],
                "degree {degree}, dof {i}: parallel must be bitwise identical"
            );
        }
    }
}
