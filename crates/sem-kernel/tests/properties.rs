//! Property-based tests of the matrix-free operator.

use proptest::prelude::*;
use sem_kernel::{AxImplementation, PoissonOperator};
use sem_mesh::{BoxMesh, ElementField, MeshDeformation};

fn random_field(degree: usize, elems: usize, values: &[f64]) -> ElementField {
    let mut f = ElementField::zeros(degree, elems);
    let n = f.len();
    for (i, v) in f.as_mut_slice().iter_mut().enumerate() {
        *v = values[i % values.len()] * ((i % 17) as f64 / 17.0 - 0.5);
    }
    assert_eq!(f.len(), n);
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The operator is linear: A(a u + b v) = a A u + b A v.
    #[test]
    fn operator_is_linear(
        degree in 1usize..=5,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
        seed in proptest::collection::vec(-1.0f64..1.0, 8..32),
    ) {
        let mesh = BoxMesh::unit_cube(degree, 2);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let u = random_field(degree, 8, &seed);
        let mut v = random_field(degree, 8, &seed);
        v.as_mut_slice().iter_mut().for_each(|x| *x = x.cos());
        let mut combo = u.clone();
        combo.as_mut_slice().iter_mut().zip(v.as_slice()).for_each(|(x, &y)| *x = a * *x + b * y);
        let lhs = op.apply(&combo);
        let au = op.apply(&u);
        let av = op.apply(&v);
        for i in 0..lhs.len() {
            let expect = a * au.as_slice()[i] + b * av.as_slice()[i];
            prop_assert!((lhs.as_slice()[i] - expect).abs() < 1e-9 * (1.0 + expect.abs()));
        }
    }

    /// Symmetry of the bilinear form: v^T A u == u^T A v.
    #[test]
    fn operator_is_symmetric(
        degree in 1usize..=5,
        seed_u in proptest::collection::vec(-1.0f64..1.0, 8..32),
        seed_v in proptest::collection::vec(-1.0f64..1.0, 8..32),
        amplitude in 0.0f64..0.05,
    ) {
        let mesh = BoxMesh::new(
            degree,
            [2, 1, 1],
            [1.0, 1.3, 0.8],
            MeshDeformation::Sinusoidal { amplitude },
        );
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let u = random_field(degree, 2, &seed_u);
        let v = random_field(degree, 2, &seed_v);
        let au = op.apply(&u);
        let av = op.apply(&v);
        let vau = v.dot(&au);
        let uav = u.dot(&av);
        prop_assert!((vau - uav).abs() < 1e-8 * (1.0 + vau.abs()));
    }

    /// Non-negative energy: u^T A u >= 0 for any nodal vector.
    #[test]
    fn operator_is_positive_semidefinite(
        degree in 1usize..=5,
        seed in proptest::collection::vec(-2.0f64..2.0, 8..64),
    ) {
        let mesh = BoxMesh::unit_cube(degree, 2);
        let op = PoissonOperator::new(&mesh, AxImplementation::Parallel);
        let u = random_field(degree, 8, &seed);
        let au = op.apply(&u);
        prop_assert!(u.dot(&au) >= -1e-9);
    }

    /// Reference and optimised kernels agree on deformed meshes of any degree.
    #[test]
    fn implementations_agree(
        degree in 1usize..=6,
        amplitude in 0.0f64..0.06,
        seed in proptest::collection::vec(-1.0f64..1.0, 8..32),
    ) {
        let mesh = BoxMesh::new(
            degree,
            [2, 2, 1],
            [1.0; 3],
            MeshDeformation::Sinusoidal { amplitude },
        );
        let mut op = PoissonOperator::new(&mesh, AxImplementation::Reference);
        let u = random_field(degree, 4, &seed);
        let w_ref = op.apply(&u);
        op.set_implementation(AxImplementation::Optimized);
        let w_opt = op.apply(&u);
        op.set_implementation(AxImplementation::Parallel);
        let w_par = op.apply(&u);
        for i in 0..u.len() {
            prop_assert!((w_ref.as_slice()[i] - w_opt.as_slice()[i]).abs()
                < 1e-10 * (1.0 + w_ref.as_slice()[i].abs()));
            prop_assert_eq!(w_opt.as_slice()[i], w_par.as_slice()[i]);
        }
    }
}
