/root/repo/target/debug/examples/degree_sweep-2929e97279282827.d: examples/degree_sweep.rs

/root/repo/target/debug/examples/degree_sweep-2929e97279282827: examples/degree_sweep.rs

examples/degree_sweep.rs:
