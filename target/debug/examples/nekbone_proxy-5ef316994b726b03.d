/root/repo/target/debug/examples/nekbone_proxy-5ef316994b726b03.d: examples/nekbone_proxy.rs

/root/repo/target/debug/examples/nekbone_proxy-5ef316994b726b03: examples/nekbone_proxy.rs

examples/nekbone_proxy.rs:
