/root/repo/target/debug/examples/nekbone_proxy-81e4a39ea1c0c906.d: examples/nekbone_proxy.rs

/root/repo/target/debug/examples/nekbone_proxy-81e4a39ea1c0c906: examples/nekbone_proxy.rs

examples/nekbone_proxy.rs:
