/root/repo/target/debug/examples/quickstart-25f07e6899982496.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-25f07e6899982496: examples/quickstart.rs

examples/quickstart.rs:
