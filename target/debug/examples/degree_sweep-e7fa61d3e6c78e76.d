/root/repo/target/debug/examples/degree_sweep-e7fa61d3e6c78e76.d: examples/degree_sweep.rs

/root/repo/target/debug/examples/degree_sweep-e7fa61d3e6c78e76: examples/degree_sweep.rs

examples/degree_sweep.rs:
