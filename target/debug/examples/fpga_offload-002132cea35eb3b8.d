/root/repo/target/debug/examples/fpga_offload-002132cea35eb3b8.d: examples/fpga_offload.rs

/root/repo/target/debug/examples/fpga_offload-002132cea35eb3b8: examples/fpga_offload.rs

examples/fpga_offload.rs:
