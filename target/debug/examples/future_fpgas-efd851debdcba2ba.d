/root/repo/target/debug/examples/future_fpgas-efd851debdcba2ba.d: examples/future_fpgas.rs

/root/repo/target/debug/examples/future_fpgas-efd851debdcba2ba: examples/future_fpgas.rs

examples/future_fpgas.rs:
