/root/repo/target/debug/examples/future_fpgas-604b3cc9423002be.d: examples/future_fpgas.rs

/root/repo/target/debug/examples/future_fpgas-604b3cc9423002be: examples/future_fpgas.rs

examples/future_fpgas.rs:
