/root/repo/target/debug/examples/fpga_offload-8cf06f5b79fc30cb.d: examples/fpga_offload.rs

/root/repo/target/debug/examples/fpga_offload-8cf06f5b79fc30cb: examples/fpga_offload.rs

examples/fpga_offload.rs:
