/root/repo/target/debug/examples/quickstart-066be510e631405f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-066be510e631405f: examples/quickstart.rs

examples/quickstart.rs:
