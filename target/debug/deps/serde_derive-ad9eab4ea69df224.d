/root/repo/target/debug/deps/serde_derive-ad9eab4ea69df224.d: crates/support/serde-derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-ad9eab4ea69df224.so: crates/support/serde-derive/src/lib.rs

crates/support/serde-derive/src/lib.rs:
