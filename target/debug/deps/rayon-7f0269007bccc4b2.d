/root/repo/target/debug/deps/rayon-7f0269007bccc4b2.d: crates/support/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-7f0269007bccc4b2.rlib: crates/support/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-7f0269007bccc4b2.rmeta: crates/support/rayon/src/lib.rs

crates/support/rayon/src/lib.rs:
