/root/repo/target/debug/deps/paper_reproduction-e638a8ea0b679fa3.d: tests/paper_reproduction.rs

/root/repo/target/debug/deps/paper_reproduction-e638a8ea0b679fa3: tests/paper_reproduction.rs

tests/paper_reproduction.rs:
