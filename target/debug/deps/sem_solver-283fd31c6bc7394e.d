/root/repo/target/debug/deps/sem_solver-283fd31c6bc7394e.d: crates/sem-solver/src/lib.rs crates/sem-solver/src/cg.rs crates/sem-solver/src/jacobi.rs crates/sem-solver/src/poisson.rs crates/sem-solver/src/proxy.rs

/root/repo/target/debug/deps/libsem_solver-283fd31c6bc7394e.rlib: crates/sem-solver/src/lib.rs crates/sem-solver/src/cg.rs crates/sem-solver/src/jacobi.rs crates/sem-solver/src/poisson.rs crates/sem-solver/src/proxy.rs

/root/repo/target/debug/deps/libsem_solver-283fd31c6bc7394e.rmeta: crates/sem-solver/src/lib.rs crates/sem-solver/src/cg.rs crates/sem-solver/src/jacobi.rs crates/sem-solver/src/poisson.rs crates/sem-solver/src/proxy.rs

crates/sem-solver/src/lib.rs:
crates/sem-solver/src/cg.rs:
crates/sem-solver/src/jacobi.rs:
crates/sem-solver/src/poisson.rs:
crates/sem-solver/src/proxy.rs:
