/root/repo/target/debug/deps/bench-dc302701c4690787.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-dc302701c4690787.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-dc302701c4690787.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
