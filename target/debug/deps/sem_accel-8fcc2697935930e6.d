/root/repo/target/debug/deps/sem_accel-8fcc2697935930e6.d: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/exec.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

/root/repo/target/debug/deps/libsem_accel-8fcc2697935930e6.rlib: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/exec.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

/root/repo/target/debug/deps/libsem_accel-8fcc2697935930e6.rmeta: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/exec.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

crates/sem-accel/src/lib.rs:
crates/sem-accel/src/autotune.rs:
crates/sem-accel/src/backend.rs:
crates/sem-accel/src/exec.rs:
crates/sem-accel/src/offload.rs:
crates/sem-accel/src/report.rs:
crates/sem-accel/src/system.rs:
