/root/repo/target/debug/deps/semfpga-6aa0349489c9542f.d: src/lib.rs

/root/repo/target/debug/deps/libsemfpga-6aa0349489c9542f.rlib: src/lib.rs

/root/repo/target/debug/deps/libsemfpga-6aa0349489c9542f.rmeta: src/lib.rs

src/lib.rs:
