/root/repo/target/debug/deps/semfpga-80066b9048268c7a.d: src/lib.rs

/root/repo/target/debug/deps/libsemfpga-80066b9048268c7a.rlib: src/lib.rs

/root/repo/target/debug/deps/libsemfpga-80066b9048268c7a.rmeta: src/lib.rs

src/lib.rs:
