/root/repo/target/debug/deps/end_to_end-39cd117cf27e466e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-39cd117cf27e466e: tests/end_to_end.rs

tests/end_to_end.rs:
