/root/repo/target/debug/deps/sem_mesh-e78ad7791af53488.d: crates/sem-mesh/src/lib.rs crates/sem-mesh/src/field.rs crates/sem-mesh/src/gather_scatter.rs crates/sem-mesh/src/geometry.rs crates/sem-mesh/src/mask.rs crates/sem-mesh/src/mesh.rs

/root/repo/target/debug/deps/libsem_mesh-e78ad7791af53488.rlib: crates/sem-mesh/src/lib.rs crates/sem-mesh/src/field.rs crates/sem-mesh/src/gather_scatter.rs crates/sem-mesh/src/geometry.rs crates/sem-mesh/src/mask.rs crates/sem-mesh/src/mesh.rs

/root/repo/target/debug/deps/libsem_mesh-e78ad7791af53488.rmeta: crates/sem-mesh/src/lib.rs crates/sem-mesh/src/field.rs crates/sem-mesh/src/gather_scatter.rs crates/sem-mesh/src/geometry.rs crates/sem-mesh/src/mask.rs crates/sem-mesh/src/mesh.rs

crates/sem-mesh/src/lib.rs:
crates/sem-mesh/src/field.rs:
crates/sem-mesh/src/gather_scatter.rs:
crates/sem-mesh/src/geometry.rs:
crates/sem-mesh/src/mask.rs:
crates/sem-mesh/src/mesh.rs:
