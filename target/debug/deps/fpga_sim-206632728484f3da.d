/root/repo/target/debug/deps/fpga_sim-206632728484f3da.d: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/bram.rs crates/fpga-sim/src/design.rs crates/fpga-sim/src/executor.rs crates/fpga-sim/src/memory.rs crates/fpga-sim/src/multi.rs crates/fpga-sim/src/power.rs crates/fpga-sim/src/stream.rs crates/fpga-sim/src/synthesis.rs

/root/repo/target/debug/deps/libfpga_sim-206632728484f3da.rlib: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/bram.rs crates/fpga-sim/src/design.rs crates/fpga-sim/src/executor.rs crates/fpga-sim/src/memory.rs crates/fpga-sim/src/multi.rs crates/fpga-sim/src/power.rs crates/fpga-sim/src/stream.rs crates/fpga-sim/src/synthesis.rs

/root/repo/target/debug/deps/libfpga_sim-206632728484f3da.rmeta: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/bram.rs crates/fpga-sim/src/design.rs crates/fpga-sim/src/executor.rs crates/fpga-sim/src/memory.rs crates/fpga-sim/src/multi.rs crates/fpga-sim/src/power.rs crates/fpga-sim/src/stream.rs crates/fpga-sim/src/synthesis.rs

crates/fpga-sim/src/lib.rs:
crates/fpga-sim/src/bram.rs:
crates/fpga-sim/src/design.rs:
crates/fpga-sim/src/executor.rs:
crates/fpga-sim/src/memory.rs:
crates/fpga-sim/src/multi.rs:
crates/fpga-sim/src/power.rs:
crates/fpga-sim/src/stream.rs:
crates/fpga-sim/src/synthesis.rs:
