/root/repo/target/debug/deps/bench-4dcb8dfd875eded5.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-4dcb8dfd875eded5.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbench-4dcb8dfd875eded5.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
