/root/repo/target/debug/deps/sem_kernel-38b619a1315d3c82.d: crates/sem-kernel/src/lib.rs crates/sem-kernel/src/assemble.rs crates/sem-kernel/src/helmholtz.rs crates/sem-kernel/src/operator.rs crates/sem-kernel/src/ops.rs crates/sem-kernel/src/optimized.rs crates/sem-kernel/src/parallel.rs crates/sem-kernel/src/reference.rs

/root/repo/target/debug/deps/libsem_kernel-38b619a1315d3c82.rlib: crates/sem-kernel/src/lib.rs crates/sem-kernel/src/assemble.rs crates/sem-kernel/src/helmholtz.rs crates/sem-kernel/src/operator.rs crates/sem-kernel/src/ops.rs crates/sem-kernel/src/optimized.rs crates/sem-kernel/src/parallel.rs crates/sem-kernel/src/reference.rs

/root/repo/target/debug/deps/libsem_kernel-38b619a1315d3c82.rmeta: crates/sem-kernel/src/lib.rs crates/sem-kernel/src/assemble.rs crates/sem-kernel/src/helmholtz.rs crates/sem-kernel/src/operator.rs crates/sem-kernel/src/ops.rs crates/sem-kernel/src/optimized.rs crates/sem-kernel/src/parallel.rs crates/sem-kernel/src/reference.rs

crates/sem-kernel/src/lib.rs:
crates/sem-kernel/src/assemble.rs:
crates/sem-kernel/src/helmholtz.rs:
crates/sem-kernel/src/operator.rs:
crates/sem-kernel/src/ops.rs:
crates/sem-kernel/src/optimized.rs:
crates/sem-kernel/src/parallel.rs:
crates/sem-kernel/src/reference.rs:
