/root/repo/target/debug/deps/paper_reproduction-8f146c16c1af5c29.d: tests/paper_reproduction.rs

/root/repo/target/debug/deps/paper_reproduction-8f146c16c1af5c29: tests/paper_reproduction.rs

tests/paper_reproduction.rs:
