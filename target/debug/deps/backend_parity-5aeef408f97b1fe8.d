/root/repo/target/debug/deps/backend_parity-5aeef408f97b1fe8.d: tests/backend_parity.rs

/root/repo/target/debug/deps/backend_parity-5aeef408f97b1fe8: tests/backend_parity.rs

tests/backend_parity.rs:
