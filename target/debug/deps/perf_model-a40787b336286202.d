/root/repo/target/debug/deps/perf_model-a40787b336286202.d: crates/perf-model/src/lib.rs crates/perf-model/src/cost.rs crates/perf-model/src/device.rs crates/perf-model/src/measured.rs crates/perf-model/src/padding.rs crates/perf-model/src/projection.rs crates/perf-model/src/resources.rs crates/perf-model/src/roofline.rs crates/perf-model/src/sensitivity.rs crates/perf-model/src/throughput.rs

/root/repo/target/debug/deps/libperf_model-a40787b336286202.rlib: crates/perf-model/src/lib.rs crates/perf-model/src/cost.rs crates/perf-model/src/device.rs crates/perf-model/src/measured.rs crates/perf-model/src/padding.rs crates/perf-model/src/projection.rs crates/perf-model/src/resources.rs crates/perf-model/src/roofline.rs crates/perf-model/src/sensitivity.rs crates/perf-model/src/throughput.rs

/root/repo/target/debug/deps/libperf_model-a40787b336286202.rmeta: crates/perf-model/src/lib.rs crates/perf-model/src/cost.rs crates/perf-model/src/device.rs crates/perf-model/src/measured.rs crates/perf-model/src/padding.rs crates/perf-model/src/projection.rs crates/perf-model/src/resources.rs crates/perf-model/src/roofline.rs crates/perf-model/src/sensitivity.rs crates/perf-model/src/throughput.rs

crates/perf-model/src/lib.rs:
crates/perf-model/src/cost.rs:
crates/perf-model/src/device.rs:
crates/perf-model/src/measured.rs:
crates/perf-model/src/padding.rs:
crates/perf-model/src/projection.rs:
crates/perf-model/src/resources.rs:
crates/perf-model/src/roofline.rs:
crates/perf-model/src/sensitivity.rs:
crates/perf-model/src/throughput.rs:
