/root/repo/target/debug/deps/serde-cc23e46a86e06bc5.d: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs

/root/repo/target/debug/deps/libserde-cc23e46a86e06bc5.rlib: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs

/root/repo/target/debug/deps/libserde-cc23e46a86e06bc5.rmeta: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs

crates/support/serde/src/lib.rs:
crates/support/serde/src/json.rs:
crates/support/serde/src/value.rs:
