/root/repo/target/debug/deps/properties-ef6306d6aa61b6d3.d: tests/properties.rs

/root/repo/target/debug/deps/properties-ef6306d6aa61b6d3: tests/properties.rs

tests/properties.rs:
