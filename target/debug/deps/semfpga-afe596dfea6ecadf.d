/root/repo/target/debug/deps/semfpga-afe596dfea6ecadf.d: src/lib.rs

/root/repo/target/debug/deps/semfpga-afe596dfea6ecadf: src/lib.rs

src/lib.rs:
