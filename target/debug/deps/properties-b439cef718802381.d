/root/repo/target/debug/deps/properties-b439cef718802381.d: tests/properties.rs

/root/repo/target/debug/deps/properties-b439cef718802381: tests/properties.rs

tests/properties.rs:
