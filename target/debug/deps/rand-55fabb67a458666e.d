/root/repo/target/debug/deps/rand-55fabb67a458666e.d: crates/support/rand/src/lib.rs

/root/repo/target/debug/deps/librand-55fabb67a458666e.rlib: crates/support/rand/src/lib.rs

/root/repo/target/debug/deps/librand-55fabb67a458666e.rmeta: crates/support/rand/src/lib.rs

crates/support/rand/src/lib.rs:
