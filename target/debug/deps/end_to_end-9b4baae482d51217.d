/root/repo/target/debug/deps/end_to_end-9b4baae482d51217.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9b4baae482d51217: tests/end_to_end.rs

tests/end_to_end.rs:
