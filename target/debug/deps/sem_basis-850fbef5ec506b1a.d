/root/repo/target/debug/deps/sem_basis-850fbef5ec506b1a.d: crates/sem-basis/src/lib.rs crates/sem-basis/src/derivative.rs crates/sem-basis/src/interp.rs crates/sem-basis/src/lagrange.rs crates/sem-basis/src/legendre.rs crates/sem-basis/src/matrix.rs crates/sem-basis/src/operators1d.rs crates/sem-basis/src/quadrature.rs

/root/repo/target/debug/deps/libsem_basis-850fbef5ec506b1a.rlib: crates/sem-basis/src/lib.rs crates/sem-basis/src/derivative.rs crates/sem-basis/src/interp.rs crates/sem-basis/src/lagrange.rs crates/sem-basis/src/legendre.rs crates/sem-basis/src/matrix.rs crates/sem-basis/src/operators1d.rs crates/sem-basis/src/quadrature.rs

/root/repo/target/debug/deps/libsem_basis-850fbef5ec506b1a.rmeta: crates/sem-basis/src/lib.rs crates/sem-basis/src/derivative.rs crates/sem-basis/src/interp.rs crates/sem-basis/src/lagrange.rs crates/sem-basis/src/legendre.rs crates/sem-basis/src/matrix.rs crates/sem-basis/src/operators1d.rs crates/sem-basis/src/quadrature.rs

crates/sem-basis/src/lib.rs:
crates/sem-basis/src/derivative.rs:
crates/sem-basis/src/interp.rs:
crates/sem-basis/src/lagrange.rs:
crates/sem-basis/src/legendre.rs:
crates/sem-basis/src/matrix.rs:
crates/sem-basis/src/operators1d.rs:
crates/sem-basis/src/quadrature.rs:
