/root/repo/target/debug/deps/arch_db-7d31371adee80997.d: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs

/root/repo/target/debug/deps/libarch_db-7d31371adee80997.rlib: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs

/root/repo/target/debug/deps/libarch_db-7d31371adee80997.rmeta: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs

crates/arch-db/src/lib.rs:
crates/arch-db/src/catalog.rs:
crates/arch-db/src/machine_model.rs:
