/root/repo/target/debug/deps/semfpga-c54c2e8fe6b0456f.d: src/lib.rs

/root/repo/target/debug/deps/semfpga-c54c2e8fe6b0456f: src/lib.rs

src/lib.rs:
