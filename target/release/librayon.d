/root/repo/target/release/librayon.rlib: /root/repo/crates/support/rayon/src/lib.rs
