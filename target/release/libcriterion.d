/root/repo/target/release/libcriterion.rlib: /root/repo/crates/support/criterion/src/lib.rs
