/root/repo/target/release/libserde_derive.so: /root/repo/crates/support/serde-derive/src/lib.rs
