/root/repo/target/release/deps/table2-d25b111af860d4f3.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/release/deps/libtable2-d25b111af860d4f3.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
