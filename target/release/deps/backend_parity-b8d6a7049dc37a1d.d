/root/repo/target/release/deps/backend_parity-b8d6a7049dc37a1d.d: tests/backend_parity.rs Cargo.toml

/root/repo/target/release/deps/libbackend_parity-b8d6a7049dc37a1d.rmeta: tests/backend_parity.rs Cargo.toml

tests/backend_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
