/root/repo/target/release/deps/rayon-03bd35a725656849.d: crates/support/rayon/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librayon-03bd35a725656849.rmeta: crates/support/rayon/src/lib.rs Cargo.toml

crates/support/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
