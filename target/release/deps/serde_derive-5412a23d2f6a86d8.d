/root/repo/target/release/deps/serde_derive-5412a23d2f6a86d8.d: crates/support/serde-derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-5412a23d2f6a86d8.so: crates/support/serde-derive/src/lib.rs

crates/support/serde-derive/src/lib.rs:
