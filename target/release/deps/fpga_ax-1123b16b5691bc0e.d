/root/repo/target/release/deps/fpga_ax-1123b16b5691bc0e.d: crates/bench/benches/fpga_ax.rs

/root/repo/target/release/deps/fpga_ax-1123b16b5691bc0e: crates/bench/benches/fpga_ax.rs

crates/bench/benches/fpga_ax.rs:
