/root/repo/target/release/deps/properties-e12db5dfd273d08f.d: crates/sem-basis/tests/properties.rs

/root/repo/target/release/deps/properties-e12db5dfd273d08f: crates/sem-basis/tests/properties.rs

crates/sem-basis/tests/properties.rs:
