/root/repo/target/release/deps/end_to_end-ddc2e9c466d03824.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-ddc2e9c466d03824: tests/end_to_end.rs

tests/end_to_end.rs:
