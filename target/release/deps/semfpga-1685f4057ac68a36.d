/root/repo/target/release/deps/semfpga-1685f4057ac68a36.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsemfpga-1685f4057ac68a36.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
