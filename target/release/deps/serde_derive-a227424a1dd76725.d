/root/repo/target/release/deps/serde_derive-a227424a1dd76725.d: crates/support/serde-derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-a227424a1dd76725.so: crates/support/serde-derive/src/lib.rs

crates/support/serde-derive/src/lib.rs:
