/root/repo/target/release/deps/padding-5d30a088cec78b29.d: crates/bench/src/bin/padding.rs

/root/repo/target/release/deps/padding-5d30a088cec78b29: crates/bench/src/bin/padding.rs

crates/bench/src/bin/padding.rs:
