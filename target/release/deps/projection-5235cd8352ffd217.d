/root/repo/target/release/deps/projection-5235cd8352ffd217.d: crates/bench/src/bin/projection.rs

/root/repo/target/release/deps/projection-5235cd8352ffd217: crates/bench/src/bin/projection.rs

crates/bench/src/bin/projection.rs:
