/root/repo/target/release/deps/serde_derive-88beec68cb97e3cb.d: crates/support/serde-derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-88beec68cb97e3cb: crates/support/serde-derive/src/lib.rs

crates/support/serde-derive/src/lib.rs:
