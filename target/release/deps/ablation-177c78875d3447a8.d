/root/repo/target/release/deps/ablation-177c78875d3447a8.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-177c78875d3447a8: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
