/root/repo/target/release/deps/properties-481b1bd6c8f6ea7a.d: crates/sem-kernel/tests/properties.rs

/root/repo/target/release/deps/properties-481b1bd6c8f6ea7a: crates/sem-kernel/tests/properties.rs

crates/sem-kernel/tests/properties.rs:
