/root/repo/target/release/deps/serde_derive-47ab7067287eda48.d: crates/support/serde-derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-47ab7067287eda48.so: crates/support/serde-derive/src/lib.rs Cargo.toml

crates/support/serde-derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
