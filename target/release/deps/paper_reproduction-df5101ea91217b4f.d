/root/repo/target/release/deps/paper_reproduction-df5101ea91217b4f.d: tests/paper_reproduction.rs

/root/repo/target/release/deps/paper_reproduction-df5101ea91217b4f: tests/paper_reproduction.rs

tests/paper_reproduction.rs:
