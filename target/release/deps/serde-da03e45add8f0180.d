/root/repo/target/release/deps/serde-da03e45add8f0180.d: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs Cargo.toml

/root/repo/target/release/deps/libserde-da03e45add8f0180.rmeta: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs Cargo.toml

crates/support/serde/src/lib.rs:
crates/support/serde/src/json.rs:
crates/support/serde/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
