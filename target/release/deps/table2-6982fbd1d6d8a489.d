/root/repo/target/release/deps/table2-6982fbd1d6d8a489.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-6982fbd1d6d8a489: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
