/root/repo/target/release/deps/bench-0155c0fc78c79954.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbench-0155c0fc78c79954.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbench-0155c0fc78c79954.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
