/root/repo/target/release/deps/backends-b9f68427e569e43e.d: crates/bench/src/bin/backends.rs

/root/repo/target/release/deps/backends-b9f68427e569e43e: crates/bench/src/bin/backends.rs

crates/bench/src/bin/backends.rs:
