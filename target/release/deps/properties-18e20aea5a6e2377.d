/root/repo/target/release/deps/properties-18e20aea5a6e2377.d: crates/sem-basis/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-18e20aea5a6e2377.rmeta: crates/sem-basis/tests/properties.rs Cargo.toml

crates/sem-basis/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
