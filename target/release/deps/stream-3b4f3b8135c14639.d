/root/repo/target/release/deps/stream-3b4f3b8135c14639.d: crates/bench/src/bin/stream.rs

/root/repo/target/release/deps/stream-3b4f3b8135c14639: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
