/root/repo/target/release/deps/sem_mesh-7cf1805f0b22d372.d: crates/sem-mesh/src/lib.rs crates/sem-mesh/src/field.rs crates/sem-mesh/src/gather_scatter.rs crates/sem-mesh/src/geometry.rs crates/sem-mesh/src/mask.rs crates/sem-mesh/src/mesh.rs Cargo.toml

/root/repo/target/release/deps/libsem_mesh-7cf1805f0b22d372.rmeta: crates/sem-mesh/src/lib.rs crates/sem-mesh/src/field.rs crates/sem-mesh/src/gather_scatter.rs crates/sem-mesh/src/geometry.rs crates/sem-mesh/src/mask.rs crates/sem-mesh/src/mesh.rs Cargo.toml

crates/sem-mesh/src/lib.rs:
crates/sem-mesh/src/field.rs:
crates/sem-mesh/src/gather_scatter.rs:
crates/sem-mesh/src/geometry.rs:
crates/sem-mesh/src/mask.rs:
crates/sem-mesh/src/mesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
