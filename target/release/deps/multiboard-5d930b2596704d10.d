/root/repo/target/release/deps/multiboard-5d930b2596704d10.d: crates/bench/src/bin/multiboard.rs

/root/repo/target/release/deps/multiboard-5d930b2596704d10: crates/bench/src/bin/multiboard.rs

crates/bench/src/bin/multiboard.rs:
