/root/repo/target/release/deps/sem_basis-8d0a3be628b5483e.d: crates/sem-basis/src/lib.rs crates/sem-basis/src/derivative.rs crates/sem-basis/src/interp.rs crates/sem-basis/src/lagrange.rs crates/sem-basis/src/legendre.rs crates/sem-basis/src/matrix.rs crates/sem-basis/src/operators1d.rs crates/sem-basis/src/quadrature.rs

/root/repo/target/release/deps/libsem_basis-8d0a3be628b5483e.rlib: crates/sem-basis/src/lib.rs crates/sem-basis/src/derivative.rs crates/sem-basis/src/interp.rs crates/sem-basis/src/lagrange.rs crates/sem-basis/src/legendre.rs crates/sem-basis/src/matrix.rs crates/sem-basis/src/operators1d.rs crates/sem-basis/src/quadrature.rs

/root/repo/target/release/deps/libsem_basis-8d0a3be628b5483e.rmeta: crates/sem-basis/src/lib.rs crates/sem-basis/src/derivative.rs crates/sem-basis/src/interp.rs crates/sem-basis/src/lagrange.rs crates/sem-basis/src/legendre.rs crates/sem-basis/src/matrix.rs crates/sem-basis/src/operators1d.rs crates/sem-basis/src/quadrature.rs

crates/sem-basis/src/lib.rs:
crates/sem-basis/src/derivative.rs:
crates/sem-basis/src/interp.rs:
crates/sem-basis/src/lagrange.rs:
crates/sem-basis/src/legendre.rs:
crates/sem-basis/src/matrix.rs:
crates/sem-basis/src/operators1d.rs:
crates/sem-basis/src/quadrature.rs:
