/root/repo/target/release/deps/rayon-51f85b34940a269a.d: crates/support/rayon/src/lib.rs

/root/repo/target/release/deps/rayon-51f85b34940a269a: crates/support/rayon/src/lib.rs

crates/support/rayon/src/lib.rs:
