/root/repo/target/release/deps/perf_model-e986407e7dbf8c1a.d: crates/perf-model/src/lib.rs crates/perf-model/src/cost.rs crates/perf-model/src/device.rs crates/perf-model/src/measured.rs crates/perf-model/src/padding.rs crates/perf-model/src/projection.rs crates/perf-model/src/resources.rs crates/perf-model/src/roofline.rs crates/perf-model/src/sensitivity.rs crates/perf-model/src/throughput.rs

/root/repo/target/release/deps/libperf_model-e986407e7dbf8c1a.rlib: crates/perf-model/src/lib.rs crates/perf-model/src/cost.rs crates/perf-model/src/device.rs crates/perf-model/src/measured.rs crates/perf-model/src/padding.rs crates/perf-model/src/projection.rs crates/perf-model/src/resources.rs crates/perf-model/src/roofline.rs crates/perf-model/src/sensitivity.rs crates/perf-model/src/throughput.rs

/root/repo/target/release/deps/libperf_model-e986407e7dbf8c1a.rmeta: crates/perf-model/src/lib.rs crates/perf-model/src/cost.rs crates/perf-model/src/device.rs crates/perf-model/src/measured.rs crates/perf-model/src/padding.rs crates/perf-model/src/projection.rs crates/perf-model/src/resources.rs crates/perf-model/src/roofline.rs crates/perf-model/src/sensitivity.rs crates/perf-model/src/throughput.rs

crates/perf-model/src/lib.rs:
crates/perf-model/src/cost.rs:
crates/perf-model/src/device.rs:
crates/perf-model/src/measured.rs:
crates/perf-model/src/padding.rs:
crates/perf-model/src/projection.rs:
crates/perf-model/src/resources.rs:
crates/perf-model/src/roofline.rs:
crates/perf-model/src/sensitivity.rs:
crates/perf-model/src/throughput.rs:
