/root/repo/target/release/deps/backends-35857f741ef00cc0.d: crates/bench/src/bin/backends.rs Cargo.toml

/root/repo/target/release/deps/libbackends-35857f741ef00cc0.rmeta: crates/bench/src/bin/backends.rs Cargo.toml

crates/bench/src/bin/backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
