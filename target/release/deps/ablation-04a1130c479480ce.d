/root/repo/target/release/deps/ablation-04a1130c479480ce.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-04a1130c479480ce: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
