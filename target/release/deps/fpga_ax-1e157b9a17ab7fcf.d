/root/repo/target/release/deps/fpga_ax-1e157b9a17ab7fcf.d: crates/bench/benches/fpga_ax.rs Cargo.toml

/root/repo/target/release/deps/libfpga_ax-1e157b9a17ab7fcf.rmeta: crates/bench/benches/fpga_ax.rs Cargo.toml

crates/bench/benches/fpga_ax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
