/root/repo/target/release/deps/bench-96e81cc35ebc30cc.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/bench-96e81cc35ebc30cc: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
