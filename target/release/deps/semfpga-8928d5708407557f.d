/root/repo/target/release/deps/semfpga-8928d5708407557f.d: src/lib.rs

/root/repo/target/release/deps/semfpga-8928d5708407557f: src/lib.rs

src/lib.rs:
