/root/repo/target/release/deps/backend_parity-fd270dc513078e2d.d: tests/backend_parity.rs

/root/repo/target/release/deps/backend_parity-fd270dc513078e2d: tests/backend_parity.rs

tests/backend_parity.rs:
