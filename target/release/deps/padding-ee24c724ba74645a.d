/root/repo/target/release/deps/padding-ee24c724ba74645a.d: crates/bench/src/bin/padding.rs Cargo.toml

/root/repo/target/release/deps/libpadding-ee24c724ba74645a.rmeta: crates/bench/src/bin/padding.rs Cargo.toml

crates/bench/src/bin/padding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
