/root/repo/target/release/deps/paper_reproduction-46f0db679c3bb616.d: tests/paper_reproduction.rs

/root/repo/target/release/deps/paper_reproduction-46f0db679c3bb616: tests/paper_reproduction.rs

tests/paper_reproduction.rs:
