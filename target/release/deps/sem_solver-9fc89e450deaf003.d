/root/repo/target/release/deps/sem_solver-9fc89e450deaf003.d: crates/sem-solver/src/lib.rs crates/sem-solver/src/cg.rs crates/sem-solver/src/jacobi.rs crates/sem-solver/src/poisson.rs crates/sem-solver/src/proxy.rs Cargo.toml

/root/repo/target/release/deps/libsem_solver-9fc89e450deaf003.rmeta: crates/sem-solver/src/lib.rs crates/sem-solver/src/cg.rs crates/sem-solver/src/jacobi.rs crates/sem-solver/src/poisson.rs crates/sem-solver/src/proxy.rs Cargo.toml

crates/sem-solver/src/lib.rs:
crates/sem-solver/src/cg.rs:
crates/sem-solver/src/jacobi.rs:
crates/sem-solver/src/poisson.rs:
crates/sem-solver/src/proxy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
