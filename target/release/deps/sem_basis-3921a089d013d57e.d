/root/repo/target/release/deps/sem_basis-3921a089d013d57e.d: crates/sem-basis/src/lib.rs crates/sem-basis/src/derivative.rs crates/sem-basis/src/interp.rs crates/sem-basis/src/lagrange.rs crates/sem-basis/src/legendre.rs crates/sem-basis/src/matrix.rs crates/sem-basis/src/operators1d.rs crates/sem-basis/src/quadrature.rs Cargo.toml

/root/repo/target/release/deps/libsem_basis-3921a089d013d57e.rmeta: crates/sem-basis/src/lib.rs crates/sem-basis/src/derivative.rs crates/sem-basis/src/interp.rs crates/sem-basis/src/lagrange.rs crates/sem-basis/src/legendre.rs crates/sem-basis/src/matrix.rs crates/sem-basis/src/operators1d.rs crates/sem-basis/src/quadrature.rs Cargo.toml

crates/sem-basis/src/lib.rs:
crates/sem-basis/src/derivative.rs:
crates/sem-basis/src/interp.rs:
crates/sem-basis/src/lagrange.rs:
crates/sem-basis/src/legendre.rs:
crates/sem-basis/src/matrix.rs:
crates/sem-basis/src/operators1d.rs:
crates/sem-basis/src/quadrature.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
