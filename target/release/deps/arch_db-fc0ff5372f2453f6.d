/root/repo/target/release/deps/arch_db-fc0ff5372f2453f6.d: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs Cargo.toml

/root/repo/target/release/deps/libarch_db-fc0ff5372f2453f6.rmeta: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs Cargo.toml

crates/arch-db/src/lib.rs:
crates/arch-db/src/catalog.rs:
crates/arch-db/src/machine_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
