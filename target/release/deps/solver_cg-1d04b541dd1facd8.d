/root/repo/target/release/deps/solver_cg-1d04b541dd1facd8.d: crates/bench/benches/solver_cg.rs

/root/repo/target/release/deps/solver_cg-1d04b541dd1facd8: crates/bench/benches/solver_cg.rs

crates/bench/benches/solver_cg.rs:
