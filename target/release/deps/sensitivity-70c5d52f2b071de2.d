/root/repo/target/release/deps/sensitivity-70c5d52f2b071de2.d: crates/bench/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/release/deps/libsensitivity-70c5d52f2b071de2.rmeta: crates/bench/src/bin/sensitivity.rs Cargo.toml

crates/bench/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
