/root/repo/target/release/deps/ablation-be23a9815dcb3172.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-be23a9815dcb3172: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
