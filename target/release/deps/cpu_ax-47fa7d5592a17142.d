/root/repo/target/release/deps/cpu_ax-47fa7d5592a17142.d: crates/bench/benches/cpu_ax.rs

/root/repo/target/release/deps/cpu_ax-47fa7d5592a17142: crates/bench/benches/cpu_ax.rs

crates/bench/benches/cpu_ax.rs:
