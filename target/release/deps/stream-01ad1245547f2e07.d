/root/repo/target/release/deps/stream-01ad1245547f2e07.d: crates/bench/src/bin/stream.rs

/root/repo/target/release/deps/stream-01ad1245547f2e07: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
