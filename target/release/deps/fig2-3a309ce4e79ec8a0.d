/root/repo/target/release/deps/fig2-3a309ce4e79ec8a0.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-3a309ce4e79ec8a0: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
