/root/repo/target/release/deps/table2-13e9a56062e2905f.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-13e9a56062e2905f: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
