/root/repo/target/release/deps/table2-fe3830c20f082d84.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/release/deps/libtable2-fe3830c20f082d84.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
