/root/repo/target/release/deps/padding-cb8772c2b0d3bcb2.d: crates/bench/src/bin/padding.rs Cargo.toml

/root/repo/target/release/deps/libpadding-cb8772c2b0d3bcb2.rmeta: crates/bench/src/bin/padding.rs Cargo.toml

crates/bench/src/bin/padding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
