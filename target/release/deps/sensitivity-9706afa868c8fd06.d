/root/repo/target/release/deps/sensitivity-9706afa868c8fd06.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/release/deps/sensitivity-9706afa868c8fd06: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
