/root/repo/target/release/deps/sem_kernel-d903a30309fcc06e.d: crates/sem-kernel/src/lib.rs crates/sem-kernel/src/assemble.rs crates/sem-kernel/src/helmholtz.rs crates/sem-kernel/src/operator.rs crates/sem-kernel/src/ops.rs crates/sem-kernel/src/optimized.rs crates/sem-kernel/src/parallel.rs crates/sem-kernel/src/reference.rs

/root/repo/target/release/deps/libsem_kernel-d903a30309fcc06e.rlib: crates/sem-kernel/src/lib.rs crates/sem-kernel/src/assemble.rs crates/sem-kernel/src/helmholtz.rs crates/sem-kernel/src/operator.rs crates/sem-kernel/src/ops.rs crates/sem-kernel/src/optimized.rs crates/sem-kernel/src/parallel.rs crates/sem-kernel/src/reference.rs

/root/repo/target/release/deps/libsem_kernel-d903a30309fcc06e.rmeta: crates/sem-kernel/src/lib.rs crates/sem-kernel/src/assemble.rs crates/sem-kernel/src/helmholtz.rs crates/sem-kernel/src/operator.rs crates/sem-kernel/src/ops.rs crates/sem-kernel/src/optimized.rs crates/sem-kernel/src/parallel.rs crates/sem-kernel/src/reference.rs

crates/sem-kernel/src/lib.rs:
crates/sem-kernel/src/assemble.rs:
crates/sem-kernel/src/helmholtz.rs:
crates/sem-kernel/src/operator.rs:
crates/sem-kernel/src/ops.rs:
crates/sem-kernel/src/optimized.rs:
crates/sem-kernel/src/parallel.rs:
crates/sem-kernel/src/reference.rs:
