/root/repo/target/release/deps/semfpga-02c8669e67d804a7.d: src/lib.rs

/root/repo/target/release/deps/libsemfpga-02c8669e67d804a7.rlib: src/lib.rs

/root/repo/target/release/deps/libsemfpga-02c8669e67d804a7.rmeta: src/lib.rs

src/lib.rs:
