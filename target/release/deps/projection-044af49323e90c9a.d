/root/repo/target/release/deps/projection-044af49323e90c9a.d: crates/bench/src/bin/projection.rs Cargo.toml

/root/repo/target/release/deps/libprojection-044af49323e90c9a.rmeta: crates/bench/src/bin/projection.rs Cargo.toml

crates/bench/src/bin/projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
