/root/repo/target/release/deps/sem_solver-110fdf9aaa740271.d: crates/sem-solver/src/lib.rs crates/sem-solver/src/cg.rs crates/sem-solver/src/jacobi.rs crates/sem-solver/src/poisson.rs crates/sem-solver/src/proxy.rs

/root/repo/target/release/deps/sem_solver-110fdf9aaa740271: crates/sem-solver/src/lib.rs crates/sem-solver/src/cg.rs crates/sem-solver/src/jacobi.rs crates/sem-solver/src/poisson.rs crates/sem-solver/src/proxy.rs

crates/sem-solver/src/lib.rs:
crates/sem-solver/src/cg.rs:
crates/sem-solver/src/jacobi.rs:
crates/sem-solver/src/poisson.rs:
crates/sem-solver/src/proxy.rs:
