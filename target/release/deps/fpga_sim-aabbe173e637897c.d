/root/repo/target/release/deps/fpga_sim-aabbe173e637897c.d: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/bram.rs crates/fpga-sim/src/design.rs crates/fpga-sim/src/executor.rs crates/fpga-sim/src/memory.rs crates/fpga-sim/src/multi.rs crates/fpga-sim/src/power.rs crates/fpga-sim/src/stream.rs crates/fpga-sim/src/synthesis.rs

/root/repo/target/release/deps/fpga_sim-aabbe173e637897c: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/bram.rs crates/fpga-sim/src/design.rs crates/fpga-sim/src/executor.rs crates/fpga-sim/src/memory.rs crates/fpga-sim/src/multi.rs crates/fpga-sim/src/power.rs crates/fpga-sim/src/stream.rs crates/fpga-sim/src/synthesis.rs

crates/fpga-sim/src/lib.rs:
crates/fpga-sim/src/bram.rs:
crates/fpga-sim/src/design.rs:
crates/fpga-sim/src/executor.rs:
crates/fpga-sim/src/memory.rs:
crates/fpga-sim/src/multi.rs:
crates/fpga-sim/src/power.rs:
crates/fpga-sim/src/stream.rs:
crates/fpga-sim/src/synthesis.rs:
