/root/repo/target/release/deps/table1-266711a9d5831f36.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-266711a9d5831f36: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
