/root/repo/target/release/deps/rand-df9cc43d15bc4fe4.d: crates/support/rand/src/lib.rs

/root/repo/target/release/deps/rand-df9cc43d15bc4fe4: crates/support/rand/src/lib.rs

crates/support/rand/src/lib.rs:
