/root/repo/target/release/deps/semfpga-308646e7fa0b5eee.d: src/lib.rs

/root/repo/target/release/deps/libsemfpga-308646e7fa0b5eee.rlib: src/lib.rs

/root/repo/target/release/deps/libsemfpga-308646e7fa0b5eee.rmeta: src/lib.rs

src/lib.rs:
