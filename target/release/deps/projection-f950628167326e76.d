/root/repo/target/release/deps/projection-f950628167326e76.d: crates/bench/src/bin/projection.rs

/root/repo/target/release/deps/projection-f950628167326e76: crates/bench/src/bin/projection.rs

crates/bench/src/bin/projection.rs:
