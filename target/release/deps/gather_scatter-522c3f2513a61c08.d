/root/repo/target/release/deps/gather_scatter-522c3f2513a61c08.d: crates/bench/benches/gather_scatter.rs

/root/repo/target/release/deps/gather_scatter-522c3f2513a61c08: crates/bench/benches/gather_scatter.rs

crates/bench/benches/gather_scatter.rs:
