/root/repo/target/release/deps/sem_accel-4a46b6cc320f0d31.d: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/exec.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

/root/repo/target/release/deps/libsem_accel-4a46b6cc320f0d31.rlib: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/exec.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

/root/repo/target/release/deps/libsem_accel-4a46b6cc320f0d31.rmeta: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/exec.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

crates/sem-accel/src/lib.rs:
crates/sem-accel/src/autotune.rs:
crates/sem-accel/src/backend.rs:
crates/sem-accel/src/exec.rs:
crates/sem-accel/src/offload.rs:
crates/sem-accel/src/report.rs:
crates/sem-accel/src/system.rs:
