/root/repo/target/release/deps/properties-0074bc5aefe8be41.d: tests/properties.rs

/root/repo/target/release/deps/properties-0074bc5aefe8be41: tests/properties.rs

tests/properties.rs:
