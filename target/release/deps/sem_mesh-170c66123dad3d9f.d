/root/repo/target/release/deps/sem_mesh-170c66123dad3d9f.d: crates/sem-mesh/src/lib.rs crates/sem-mesh/src/field.rs crates/sem-mesh/src/gather_scatter.rs crates/sem-mesh/src/geometry.rs crates/sem-mesh/src/mask.rs crates/sem-mesh/src/mesh.rs

/root/repo/target/release/deps/libsem_mesh-170c66123dad3d9f.rlib: crates/sem-mesh/src/lib.rs crates/sem-mesh/src/field.rs crates/sem-mesh/src/gather_scatter.rs crates/sem-mesh/src/geometry.rs crates/sem-mesh/src/mask.rs crates/sem-mesh/src/mesh.rs

/root/repo/target/release/deps/libsem_mesh-170c66123dad3d9f.rmeta: crates/sem-mesh/src/lib.rs crates/sem-mesh/src/field.rs crates/sem-mesh/src/gather_scatter.rs crates/sem-mesh/src/geometry.rs crates/sem-mesh/src/mask.rs crates/sem-mesh/src/mesh.rs

crates/sem-mesh/src/lib.rs:
crates/sem-mesh/src/field.rs:
crates/sem-mesh/src/gather_scatter.rs:
crates/sem-mesh/src/geometry.rs:
crates/sem-mesh/src/mask.rs:
crates/sem-mesh/src/mesh.rs:
