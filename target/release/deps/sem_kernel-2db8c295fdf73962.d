/root/repo/target/release/deps/sem_kernel-2db8c295fdf73962.d: crates/sem-kernel/src/lib.rs crates/sem-kernel/src/assemble.rs crates/sem-kernel/src/helmholtz.rs crates/sem-kernel/src/operator.rs crates/sem-kernel/src/ops.rs crates/sem-kernel/src/optimized.rs crates/sem-kernel/src/parallel.rs crates/sem-kernel/src/reference.rs

/root/repo/target/release/deps/sem_kernel-2db8c295fdf73962: crates/sem-kernel/src/lib.rs crates/sem-kernel/src/assemble.rs crates/sem-kernel/src/helmholtz.rs crates/sem-kernel/src/operator.rs crates/sem-kernel/src/ops.rs crates/sem-kernel/src/optimized.rs crates/sem-kernel/src/parallel.rs crates/sem-kernel/src/reference.rs

crates/sem-kernel/src/lib.rs:
crates/sem-kernel/src/assemble.rs:
crates/sem-kernel/src/helmholtz.rs:
crates/sem-kernel/src/operator.rs:
crates/sem-kernel/src/ops.rs:
crates/sem-kernel/src/optimized.rs:
crates/sem-kernel/src/parallel.rs:
crates/sem-kernel/src/reference.rs:
