/root/repo/target/release/deps/sem_accel-51fb404153c6c130.d: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

/root/repo/target/release/deps/sem_accel-51fb404153c6c130: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

crates/sem-accel/src/lib.rs:
crates/sem-accel/src/autotune.rs:
crates/sem-accel/src/backend.rs:
crates/sem-accel/src/offload.rs:
crates/sem-accel/src/report.rs:
crates/sem-accel/src/system.rs:
