/root/repo/target/release/deps/properties-57b3cbfc7d90b2d9.d: tests/properties.rs

/root/repo/target/release/deps/properties-57b3cbfc7d90b2d9: tests/properties.rs

tests/properties.rs:
