/root/repo/target/release/deps/multiboard-3ef8184ba0863505.d: crates/bench/src/bin/multiboard.rs Cargo.toml

/root/repo/target/release/deps/libmultiboard-3ef8184ba0863505.rmeta: crates/bench/src/bin/multiboard.rs Cargo.toml

crates/bench/src/bin/multiboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
