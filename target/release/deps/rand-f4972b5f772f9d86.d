/root/repo/target/release/deps/rand-f4972b5f772f9d86.d: crates/support/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-f4972b5f772f9d86.rmeta: crates/support/rand/src/lib.rs Cargo.toml

crates/support/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
