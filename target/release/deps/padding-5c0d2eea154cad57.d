/root/repo/target/release/deps/padding-5c0d2eea154cad57.d: crates/bench/src/bin/padding.rs

/root/repo/target/release/deps/padding-5c0d2eea154cad57: crates/bench/src/bin/padding.rs

crates/bench/src/bin/padding.rs:
