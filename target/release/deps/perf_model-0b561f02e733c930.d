/root/repo/target/release/deps/perf_model-0b561f02e733c930.d: crates/perf-model/src/lib.rs crates/perf-model/src/cost.rs crates/perf-model/src/device.rs crates/perf-model/src/measured.rs crates/perf-model/src/padding.rs crates/perf-model/src/projection.rs crates/perf-model/src/resources.rs crates/perf-model/src/roofline.rs crates/perf-model/src/sensitivity.rs crates/perf-model/src/throughput.rs Cargo.toml

/root/repo/target/release/deps/libperf_model-0b561f02e733c930.rmeta: crates/perf-model/src/lib.rs crates/perf-model/src/cost.rs crates/perf-model/src/device.rs crates/perf-model/src/measured.rs crates/perf-model/src/padding.rs crates/perf-model/src/projection.rs crates/perf-model/src/resources.rs crates/perf-model/src/roofline.rs crates/perf-model/src/sensitivity.rs crates/perf-model/src/throughput.rs Cargo.toml

crates/perf-model/src/lib.rs:
crates/perf-model/src/cost.rs:
crates/perf-model/src/device.rs:
crates/perf-model/src/measured.rs:
crates/perf-model/src/padding.rs:
crates/perf-model/src/projection.rs:
crates/perf-model/src/resources.rs:
crates/perf-model/src/roofline.rs:
crates/perf-model/src/sensitivity.rs:
crates/perf-model/src/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
