/root/repo/target/release/deps/multiboard-55ab6ebd8cf4b29a.d: crates/bench/src/bin/multiboard.rs

/root/repo/target/release/deps/multiboard-55ab6ebd8cf4b29a: crates/bench/src/bin/multiboard.rs

crates/bench/src/bin/multiboard.rs:
