/root/repo/target/release/deps/semfpga-1369a13cbeb20d9a.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsemfpga-1369a13cbeb20d9a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
