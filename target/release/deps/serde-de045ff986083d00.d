/root/repo/target/release/deps/serde-de045ff986083d00.d: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs

/root/repo/target/release/deps/libserde-de045ff986083d00.rlib: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs

/root/repo/target/release/deps/libserde-de045ff986083d00.rmeta: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs

crates/support/serde/src/lib.rs:
crates/support/serde/src/json.rs:
crates/support/serde/src/value.rs:
