/root/repo/target/release/deps/projection-a60b080d74c33239.d: crates/bench/src/bin/projection.rs Cargo.toml

/root/repo/target/release/deps/libprojection-a60b080d74c33239.rmeta: crates/bench/src/bin/projection.rs Cargo.toml

crates/bench/src/bin/projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
