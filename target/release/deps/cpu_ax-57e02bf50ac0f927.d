/root/repo/target/release/deps/cpu_ax-57e02bf50ac0f927.d: crates/bench/benches/cpu_ax.rs Cargo.toml

/root/repo/target/release/deps/libcpu_ax-57e02bf50ac0f927.rmeta: crates/bench/benches/cpu_ax.rs Cargo.toml

crates/bench/benches/cpu_ax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
