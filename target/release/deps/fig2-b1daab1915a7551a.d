/root/repo/target/release/deps/fig2-b1daab1915a7551a.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-b1daab1915a7551a: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
