/root/repo/target/release/deps/end_to_end-61c612d0923429b1.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-61c612d0923429b1: tests/end_to_end.rs

tests/end_to_end.rs:
