/root/repo/target/release/deps/properties-53fc76bb092b6085.d: crates/sem-kernel/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-53fc76bb092b6085.rmeta: crates/sem-kernel/tests/properties.rs Cargo.toml

crates/sem-kernel/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
