/root/repo/target/release/deps/projection-108c781c7037a91c.d: crates/bench/src/bin/projection.rs

/root/repo/target/release/deps/projection-108c781c7037a91c: crates/bench/src/bin/projection.rs

crates/bench/src/bin/projection.rs:
