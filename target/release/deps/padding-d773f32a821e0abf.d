/root/repo/target/release/deps/padding-d773f32a821e0abf.d: crates/bench/src/bin/padding.rs

/root/repo/target/release/deps/padding-d773f32a821e0abf: crates/bench/src/bin/padding.rs

crates/bench/src/bin/padding.rs:
