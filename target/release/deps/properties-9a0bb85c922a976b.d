/root/repo/target/release/deps/properties-9a0bb85c922a976b.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-9a0bb85c922a976b.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
