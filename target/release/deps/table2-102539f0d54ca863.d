/root/repo/target/release/deps/table2-102539f0d54ca863.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-102539f0d54ca863: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
