/root/repo/target/release/deps/sem_accel-486bf1c073b14081.d: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

/root/repo/target/release/deps/libsem_accel-486bf1c073b14081.rlib: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

/root/repo/target/release/deps/libsem_accel-486bf1c073b14081.rmeta: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs

crates/sem-accel/src/lib.rs:
crates/sem-accel/src/autotune.rs:
crates/sem-accel/src/backend.rs:
crates/sem-accel/src/offload.rs:
crates/sem-accel/src/report.rs:
crates/sem-accel/src/system.rs:
