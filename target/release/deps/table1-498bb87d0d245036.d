/root/repo/target/release/deps/table1-498bb87d0d245036.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-498bb87d0d245036: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
