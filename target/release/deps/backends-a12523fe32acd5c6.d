/root/repo/target/release/deps/backends-a12523fe32acd5c6.d: crates/bench/src/bin/backends.rs Cargo.toml

/root/repo/target/release/deps/libbackends-a12523fe32acd5c6.rmeta: crates/bench/src/bin/backends.rs Cargo.toml

crates/bench/src/bin/backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
