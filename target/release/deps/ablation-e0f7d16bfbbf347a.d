/root/repo/target/release/deps/ablation-e0f7d16bfbbf347a.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-e0f7d16bfbbf347a.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
