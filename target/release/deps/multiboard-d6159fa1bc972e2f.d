/root/repo/target/release/deps/multiboard-d6159fa1bc972e2f.d: crates/bench/src/bin/multiboard.rs

/root/repo/target/release/deps/multiboard-d6159fa1bc972e2f: crates/bench/src/bin/multiboard.rs

crates/bench/src/bin/multiboard.rs:
