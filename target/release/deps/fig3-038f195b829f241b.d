/root/repo/target/release/deps/fig3-038f195b829f241b.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-038f195b829f241b: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
