/root/repo/target/release/deps/sensitivity-c65f025e299d63f0.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/release/deps/sensitivity-c65f025e299d63f0: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
