/root/repo/target/release/deps/serde-8342ff96aa3829cd.d: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs

/root/repo/target/release/deps/serde-8342ff96aa3829cd: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs

crates/support/serde/src/lib.rs:
crates/support/serde/src/json.rs:
crates/support/serde/src/value.rs:
