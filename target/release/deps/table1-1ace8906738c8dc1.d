/root/repo/target/release/deps/table1-1ace8906738c8dc1.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-1ace8906738c8dc1: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
