/root/repo/target/release/deps/bench-71d1492eb8e88d3d.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbench-71d1492eb8e88d3d.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbench-71d1492eb8e88d3d.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
