/root/repo/target/release/deps/basis_ops-bc90c91e36a024e1.d: crates/bench/benches/basis_ops.rs Cargo.toml

/root/repo/target/release/deps/libbasis_ops-bc90c91e36a024e1.rmeta: crates/bench/benches/basis_ops.rs Cargo.toml

crates/bench/benches/basis_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
