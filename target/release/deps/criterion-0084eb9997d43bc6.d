/root/repo/target/release/deps/criterion-0084eb9997d43bc6.d: crates/support/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-0084eb9997d43bc6.rmeta: crates/support/criterion/src/lib.rs Cargo.toml

crates/support/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
