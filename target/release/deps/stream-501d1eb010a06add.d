/root/repo/target/release/deps/stream-501d1eb010a06add.d: crates/bench/src/bin/stream.rs

/root/repo/target/release/deps/stream-501d1eb010a06add: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
