/root/repo/target/release/deps/arch_db-20440f69d0ed5646.d: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs

/root/repo/target/release/deps/libarch_db-20440f69d0ed5646.rlib: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs

/root/repo/target/release/deps/libarch_db-20440f69d0ed5646.rmeta: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs

crates/arch-db/src/lib.rs:
crates/arch-db/src/catalog.rs:
crates/arch-db/src/machine_model.rs:
