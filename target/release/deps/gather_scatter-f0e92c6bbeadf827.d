/root/repo/target/release/deps/gather_scatter-f0e92c6bbeadf827.d: crates/bench/benches/gather_scatter.rs

/root/repo/target/release/deps/gather_scatter-f0e92c6bbeadf827: crates/bench/benches/gather_scatter.rs

crates/bench/benches/gather_scatter.rs:
