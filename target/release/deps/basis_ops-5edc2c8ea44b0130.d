/root/repo/target/release/deps/basis_ops-5edc2c8ea44b0130.d: crates/bench/benches/basis_ops.rs

/root/repo/target/release/deps/basis_ops-5edc2c8ea44b0130: crates/bench/benches/basis_ops.rs

crates/bench/benches/basis_ops.rs:
