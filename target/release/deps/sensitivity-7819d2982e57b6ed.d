/root/repo/target/release/deps/sensitivity-7819d2982e57b6ed.d: crates/bench/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/release/deps/libsensitivity-7819d2982e57b6ed.rmeta: crates/bench/src/bin/sensitivity.rs Cargo.toml

crates/bench/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
