/root/repo/target/release/deps/criterion-6904aafa4df5f7fc.d: crates/support/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-6904aafa4df5f7fc: crates/support/criterion/src/lib.rs

crates/support/criterion/src/lib.rs:
