/root/repo/target/release/deps/criterion-c16273c5ee65a015.d: crates/support/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c16273c5ee65a015.rlib: crates/support/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c16273c5ee65a015.rmeta: crates/support/criterion/src/lib.rs

crates/support/criterion/src/lib.rs:
