/root/repo/target/release/deps/bench-c0f3304effc69d82.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/bench-c0f3304effc69d82: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
