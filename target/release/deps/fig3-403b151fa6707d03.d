/root/repo/target/release/deps/fig3-403b151fa6707d03.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-403b151fa6707d03: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
