/root/repo/target/release/deps/basis_ops-3e9ccd5f51fb5f8c.d: crates/bench/benches/basis_ops.rs

/root/repo/target/release/deps/basis_ops-3e9ccd5f51fb5f8c: crates/bench/benches/basis_ops.rs

crates/bench/benches/basis_ops.rs:
