/root/repo/target/release/deps/semfpga-95a271b9ac738ee1.d: src/lib.rs

/root/repo/target/release/deps/semfpga-95a271b9ac738ee1: src/lib.rs

src/lib.rs:
