/root/repo/target/release/deps/backends-3e596e419dcd2e16.d: crates/bench/src/bin/backends.rs

/root/repo/target/release/deps/backends-3e596e419dcd2e16: crates/bench/src/bin/backends.rs

crates/bench/src/bin/backends.rs:
