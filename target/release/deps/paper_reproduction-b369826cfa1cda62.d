/root/repo/target/release/deps/paper_reproduction-b369826cfa1cda62.d: tests/paper_reproduction.rs Cargo.toml

/root/repo/target/release/deps/libpaper_reproduction-b369826cfa1cda62.rmeta: tests/paper_reproduction.rs Cargo.toml

tests/paper_reproduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
