/root/repo/target/release/deps/fig2-5a2d53b8d77eb9a6.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-5a2d53b8d77eb9a6: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
