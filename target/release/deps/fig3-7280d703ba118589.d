/root/repo/target/release/deps/fig3-7280d703ba118589.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-7280d703ba118589: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
