/root/repo/target/release/deps/fig1-aed08a599949ed8b.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-aed08a599949ed8b: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
