/root/repo/target/release/deps/serde-6c673dbbd79cab37.d: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs Cargo.toml

/root/repo/target/release/deps/libserde-6c673dbbd79cab37.rmeta: crates/support/serde/src/lib.rs crates/support/serde/src/json.rs crates/support/serde/src/value.rs Cargo.toml

crates/support/serde/src/lib.rs:
crates/support/serde/src/json.rs:
crates/support/serde/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
