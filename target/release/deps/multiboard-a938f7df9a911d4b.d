/root/repo/target/release/deps/multiboard-a938f7df9a911d4b.d: crates/bench/src/bin/multiboard.rs Cargo.toml

/root/repo/target/release/deps/libmultiboard-a938f7df9a911d4b.rmeta: crates/bench/src/bin/multiboard.rs Cargo.toml

crates/bench/src/bin/multiboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
