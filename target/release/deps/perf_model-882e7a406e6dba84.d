/root/repo/target/release/deps/perf_model-882e7a406e6dba84.d: crates/perf-model/src/lib.rs crates/perf-model/src/cost.rs crates/perf-model/src/device.rs crates/perf-model/src/measured.rs crates/perf-model/src/padding.rs crates/perf-model/src/projection.rs crates/perf-model/src/resources.rs crates/perf-model/src/roofline.rs crates/perf-model/src/sensitivity.rs crates/perf-model/src/throughput.rs

/root/repo/target/release/deps/perf_model-882e7a406e6dba84: crates/perf-model/src/lib.rs crates/perf-model/src/cost.rs crates/perf-model/src/device.rs crates/perf-model/src/measured.rs crates/perf-model/src/padding.rs crates/perf-model/src/projection.rs crates/perf-model/src/resources.rs crates/perf-model/src/roofline.rs crates/perf-model/src/sensitivity.rs crates/perf-model/src/throughput.rs

crates/perf-model/src/lib.rs:
crates/perf-model/src/cost.rs:
crates/perf-model/src/device.rs:
crates/perf-model/src/measured.rs:
crates/perf-model/src/padding.rs:
crates/perf-model/src/projection.rs:
crates/perf-model/src/resources.rs:
crates/perf-model/src/roofline.rs:
crates/perf-model/src/sensitivity.rs:
crates/perf-model/src/throughput.rs:
