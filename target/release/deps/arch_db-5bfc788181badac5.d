/root/repo/target/release/deps/arch_db-5bfc788181badac5.d: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs Cargo.toml

/root/repo/target/release/deps/libarch_db-5bfc788181badac5.rmeta: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs Cargo.toml

crates/arch-db/src/lib.rs:
crates/arch-db/src/catalog.rs:
crates/arch-db/src/machine_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
