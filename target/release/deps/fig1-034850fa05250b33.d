/root/repo/target/release/deps/fig1-034850fa05250b33.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-034850fa05250b33: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
