/root/repo/target/release/deps/gather_scatter-7e33ad9e59ecb99f.d: crates/bench/benches/gather_scatter.rs Cargo.toml

/root/repo/target/release/deps/libgather_scatter-7e33ad9e59ecb99f.rmeta: crates/bench/benches/gather_scatter.rs Cargo.toml

crates/bench/benches/gather_scatter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
