/root/repo/target/release/deps/fig1-a20b03c4f1b92685.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-a20b03c4f1b92685: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
