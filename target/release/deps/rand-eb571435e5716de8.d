/root/repo/target/release/deps/rand-eb571435e5716de8.d: crates/support/rand/src/lib.rs

/root/repo/target/release/deps/librand-eb571435e5716de8.rlib: crates/support/rand/src/lib.rs

/root/repo/target/release/deps/librand-eb571435e5716de8.rmeta: crates/support/rand/src/lib.rs

crates/support/rand/src/lib.rs:
