/root/repo/target/release/deps/fig2-70d36b0d9e0d0806.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/release/deps/libfig2-70d36b0d9e0d0806.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
