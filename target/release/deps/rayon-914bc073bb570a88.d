/root/repo/target/release/deps/rayon-914bc073bb570a88.d: crates/support/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-914bc073bb570a88.rlib: crates/support/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-914bc073bb570a88.rmeta: crates/support/rayon/src/lib.rs

crates/support/rayon/src/lib.rs:
