/root/repo/target/release/deps/sem_solver-13fdfd2993ba61f7.d: crates/sem-solver/src/lib.rs crates/sem-solver/src/cg.rs crates/sem-solver/src/jacobi.rs crates/sem-solver/src/poisson.rs crates/sem-solver/src/proxy.rs

/root/repo/target/release/deps/libsem_solver-13fdfd2993ba61f7.rlib: crates/sem-solver/src/lib.rs crates/sem-solver/src/cg.rs crates/sem-solver/src/jacobi.rs crates/sem-solver/src/poisson.rs crates/sem-solver/src/proxy.rs

/root/repo/target/release/deps/libsem_solver-13fdfd2993ba61f7.rmeta: crates/sem-solver/src/lib.rs crates/sem-solver/src/cg.rs crates/sem-solver/src/jacobi.rs crates/sem-solver/src/poisson.rs crates/sem-solver/src/proxy.rs

crates/sem-solver/src/lib.rs:
crates/sem-solver/src/cg.rs:
crates/sem-solver/src/jacobi.rs:
crates/sem-solver/src/poisson.rs:
crates/sem-solver/src/proxy.rs:
