/root/repo/target/release/deps/solver_cg-03d7761695653d25.d: crates/bench/benches/solver_cg.rs

/root/repo/target/release/deps/solver_cg-03d7761695653d25: crates/bench/benches/solver_cg.rs

crates/bench/benches/solver_cg.rs:
