/root/repo/target/release/deps/sensitivity-7efc358c405d688d.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/release/deps/sensitivity-7efc358c405d688d: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
