/root/repo/target/release/deps/fpga_ax-7991d0ecc1254b11.d: crates/bench/benches/fpga_ax.rs

/root/repo/target/release/deps/fpga_ax-7991d0ecc1254b11: crates/bench/benches/fpga_ax.rs

crates/bench/benches/fpga_ax.rs:
