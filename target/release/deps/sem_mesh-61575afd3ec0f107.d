/root/repo/target/release/deps/sem_mesh-61575afd3ec0f107.d: crates/sem-mesh/src/lib.rs crates/sem-mesh/src/field.rs crates/sem-mesh/src/gather_scatter.rs crates/sem-mesh/src/geometry.rs crates/sem-mesh/src/mask.rs crates/sem-mesh/src/mesh.rs

/root/repo/target/release/deps/sem_mesh-61575afd3ec0f107: crates/sem-mesh/src/lib.rs crates/sem-mesh/src/field.rs crates/sem-mesh/src/gather_scatter.rs crates/sem-mesh/src/geometry.rs crates/sem-mesh/src/mask.rs crates/sem-mesh/src/mesh.rs

crates/sem-mesh/src/lib.rs:
crates/sem-mesh/src/field.rs:
crates/sem-mesh/src/gather_scatter.rs:
crates/sem-mesh/src/geometry.rs:
crates/sem-mesh/src/mask.rs:
crates/sem-mesh/src/mesh.rs:
