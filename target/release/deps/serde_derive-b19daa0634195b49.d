/root/repo/target/release/deps/serde_derive-b19daa0634195b49.d: crates/support/serde-derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-b19daa0634195b49.rmeta: crates/support/serde-derive/src/lib.rs Cargo.toml

crates/support/serde-derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
