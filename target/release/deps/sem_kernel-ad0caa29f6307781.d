/root/repo/target/release/deps/sem_kernel-ad0caa29f6307781.d: crates/sem-kernel/src/lib.rs crates/sem-kernel/src/assemble.rs crates/sem-kernel/src/helmholtz.rs crates/sem-kernel/src/operator.rs crates/sem-kernel/src/ops.rs crates/sem-kernel/src/optimized.rs crates/sem-kernel/src/parallel.rs crates/sem-kernel/src/reference.rs Cargo.toml

/root/repo/target/release/deps/libsem_kernel-ad0caa29f6307781.rmeta: crates/sem-kernel/src/lib.rs crates/sem-kernel/src/assemble.rs crates/sem-kernel/src/helmholtz.rs crates/sem-kernel/src/operator.rs crates/sem-kernel/src/ops.rs crates/sem-kernel/src/optimized.rs crates/sem-kernel/src/parallel.rs crates/sem-kernel/src/reference.rs Cargo.toml

crates/sem-kernel/src/lib.rs:
crates/sem-kernel/src/assemble.rs:
crates/sem-kernel/src/helmholtz.rs:
crates/sem-kernel/src/operator.rs:
crates/sem-kernel/src/ops.rs:
crates/sem-kernel/src/optimized.rs:
crates/sem-kernel/src/parallel.rs:
crates/sem-kernel/src/reference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
