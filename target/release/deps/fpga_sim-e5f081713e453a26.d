/root/repo/target/release/deps/fpga_sim-e5f081713e453a26.d: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/bram.rs crates/fpga-sim/src/design.rs crates/fpga-sim/src/executor.rs crates/fpga-sim/src/memory.rs crates/fpga-sim/src/multi.rs crates/fpga-sim/src/power.rs crates/fpga-sim/src/stream.rs crates/fpga-sim/src/synthesis.rs Cargo.toml

/root/repo/target/release/deps/libfpga_sim-e5f081713e453a26.rmeta: crates/fpga-sim/src/lib.rs crates/fpga-sim/src/bram.rs crates/fpga-sim/src/design.rs crates/fpga-sim/src/executor.rs crates/fpga-sim/src/memory.rs crates/fpga-sim/src/multi.rs crates/fpga-sim/src/power.rs crates/fpga-sim/src/stream.rs crates/fpga-sim/src/synthesis.rs Cargo.toml

crates/fpga-sim/src/lib.rs:
crates/fpga-sim/src/bram.rs:
crates/fpga-sim/src/design.rs:
crates/fpga-sim/src/executor.rs:
crates/fpga-sim/src/memory.rs:
crates/fpga-sim/src/multi.rs:
crates/fpga-sim/src/power.rs:
crates/fpga-sim/src/stream.rs:
crates/fpga-sim/src/synthesis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
