/root/repo/target/release/deps/arch_db-828acecfe0df032c.d: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs

/root/repo/target/release/deps/arch_db-828acecfe0df032c: crates/arch-db/src/lib.rs crates/arch-db/src/catalog.rs crates/arch-db/src/machine_model.rs

crates/arch-db/src/lib.rs:
crates/arch-db/src/catalog.rs:
crates/arch-db/src/machine_model.rs:
