/root/repo/target/release/deps/sem_accel-971d6ae5daf6664c.d: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/exec.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs Cargo.toml

/root/repo/target/release/deps/libsem_accel-971d6ae5daf6664c.rmeta: crates/sem-accel/src/lib.rs crates/sem-accel/src/autotune.rs crates/sem-accel/src/backend.rs crates/sem-accel/src/exec.rs crates/sem-accel/src/offload.rs crates/sem-accel/src/report.rs crates/sem-accel/src/system.rs Cargo.toml

crates/sem-accel/src/lib.rs:
crates/sem-accel/src/autotune.rs:
crates/sem-accel/src/backend.rs:
crates/sem-accel/src/exec.rs:
crates/sem-accel/src/offload.rs:
crates/sem-accel/src/report.rs:
crates/sem-accel/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
