/root/repo/target/release/deps/solver_cg-c4b71f1a79bbba1d.d: crates/bench/benches/solver_cg.rs Cargo.toml

/root/repo/target/release/deps/libsolver_cg-c4b71f1a79bbba1d.rmeta: crates/bench/benches/solver_cg.rs Cargo.toml

crates/bench/benches/solver_cg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
