/root/repo/target/release/deps/ablation-2534e39985a93a9e.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-2534e39985a93a9e.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
