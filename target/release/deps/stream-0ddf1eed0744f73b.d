/root/repo/target/release/deps/stream-0ddf1eed0744f73b.d: crates/bench/src/bin/stream.rs Cargo.toml

/root/repo/target/release/deps/libstream-0ddf1eed0744f73b.rmeta: crates/bench/src/bin/stream.rs Cargo.toml

crates/bench/src/bin/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
