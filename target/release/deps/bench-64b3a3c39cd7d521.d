/root/repo/target/release/deps/bench-64b3a3c39cd7d521.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/release/deps/libbench-64b3a3c39cd7d521.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
