/root/repo/target/release/deps/cpu_ax-b6d3950881bf1824.d: crates/bench/benches/cpu_ax.rs

/root/repo/target/release/deps/cpu_ax-b6d3950881bf1824: crates/bench/benches/cpu_ax.rs

crates/bench/benches/cpu_ax.rs:
