/root/repo/target/release/librand.rlib: /root/repo/crates/support/rand/src/lib.rs
