/root/repo/target/release/examples/future_fpgas-5e4745f93d42a6a5.d: examples/future_fpgas.rs

/root/repo/target/release/examples/future_fpgas-5e4745f93d42a6a5: examples/future_fpgas.rs

examples/future_fpgas.rs:
