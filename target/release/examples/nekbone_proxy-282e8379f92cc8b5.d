/root/repo/target/release/examples/nekbone_proxy-282e8379f92cc8b5.d: examples/nekbone_proxy.rs

/root/repo/target/release/examples/nekbone_proxy-282e8379f92cc8b5: examples/nekbone_proxy.rs

examples/nekbone_proxy.rs:
