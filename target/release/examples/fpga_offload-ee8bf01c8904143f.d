/root/repo/target/release/examples/fpga_offload-ee8bf01c8904143f.d: examples/fpga_offload.rs Cargo.toml

/root/repo/target/release/examples/libfpga_offload-ee8bf01c8904143f.rmeta: examples/fpga_offload.rs Cargo.toml

examples/fpga_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
