/root/repo/target/release/examples/fpga_offload-60eee243e6e73d81.d: examples/fpga_offload.rs

/root/repo/target/release/examples/fpga_offload-60eee243e6e73d81: examples/fpga_offload.rs

examples/fpga_offload.rs:
