/root/repo/target/release/examples/nekbone_proxy-a11713574bd87926.d: examples/nekbone_proxy.rs

/root/repo/target/release/examples/nekbone_proxy-a11713574bd87926: examples/nekbone_proxy.rs

examples/nekbone_proxy.rs:
