/root/repo/target/release/examples/future_fpgas-5178ffcebf863339.d: examples/future_fpgas.rs

/root/repo/target/release/examples/future_fpgas-5178ffcebf863339: examples/future_fpgas.rs

examples/future_fpgas.rs:
