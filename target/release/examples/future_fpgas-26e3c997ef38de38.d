/root/repo/target/release/examples/future_fpgas-26e3c997ef38de38.d: examples/future_fpgas.rs Cargo.toml

/root/repo/target/release/examples/libfuture_fpgas-26e3c997ef38de38.rmeta: examples/future_fpgas.rs Cargo.toml

examples/future_fpgas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
