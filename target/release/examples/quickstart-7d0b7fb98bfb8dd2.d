/root/repo/target/release/examples/quickstart-7d0b7fb98bfb8dd2.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7d0b7fb98bfb8dd2: examples/quickstart.rs

examples/quickstart.rs:
