/root/repo/target/release/examples/degree_sweep-c5d040aec7c6dc5a.d: examples/degree_sweep.rs Cargo.toml

/root/repo/target/release/examples/libdegree_sweep-c5d040aec7c6dc5a.rmeta: examples/degree_sweep.rs Cargo.toml

examples/degree_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
