/root/repo/target/release/examples/quickstart-c94745fab6ad6d9e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c94745fab6ad6d9e: examples/quickstart.rs

examples/quickstart.rs:
