/root/repo/target/release/examples/degree_sweep-5e7e98ad5206ce6a.d: examples/degree_sweep.rs

/root/repo/target/release/examples/degree_sweep-5e7e98ad5206ce6a: examples/degree_sweep.rs

examples/degree_sweep.rs:
