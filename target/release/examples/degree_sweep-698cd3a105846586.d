/root/repo/target/release/examples/degree_sweep-698cd3a105846586.d: examples/degree_sweep.rs

/root/repo/target/release/examples/degree_sweep-698cd3a105846586: examples/degree_sweep.rs

examples/degree_sweep.rs:
