/root/repo/target/release/examples/fpga_offload-851875bd50693667.d: examples/fpga_offload.rs

/root/repo/target/release/examples/fpga_offload-851875bd50693667: examples/fpga_offload.rs

examples/fpga_offload.rs:
