/root/repo/target/release/examples/nekbone_proxy-c0c5bfee35a2030b.d: examples/nekbone_proxy.rs Cargo.toml

/root/repo/target/release/examples/libnekbone_proxy-c0c5bfee35a2030b.rmeta: examples/nekbone_proxy.rs Cargo.toml

examples/nekbone_proxy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
