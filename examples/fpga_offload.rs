//! Explore the simulated FPGA accelerator: synthesise the per-degree designs
//! of Table I, run the kernel through the simulator and print synthesis,
//! performance, power and offload details — including the Section III
//! optimisation ladder for one degree.
//!
//! Run with `cargo run --example fpga_offload --release -- [degree]`.

use semfpga::fpga::{
    synthesize, AcceleratorDesign, FpgaAccelerator, FpgaDevice, OptimizationStage,
};
use semfpga::mesh::{BoxMesh, GeometricFactors};

fn main() {
    let degree: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let device = FpgaDevice::stratix10_gx2800();
    println!("Device: {}\n", device.name);

    // Synthesis view of the production design.
    let design = AcceleratorDesign::for_degree(degree, &device);
    let report = synthesize(&design, &device);
    println!("Production design for N = {degree}:");
    println!("  unroll (DOFs/cycle) : {}", design.unroll);
    println!("  initiation interval : {}", design.initiation_interval);
    println!("  kernel clock        : {:.0} MHz", report.fmax_mhz);
    println!(
        "  utilisation         : {:.0}% logic, {:.0}% DSP, {:.0}% BRAM",
        report.utilisation.alms * 100.0,
        report.utilisation.dsps * 100.0,
        report.utilisation.brams * 100.0
    );

    // Functional execution on a real mesh (results verified against the CPU
    // reference in the test suite).
    let mesh = BoxMesh::unit_cube(degree, 2);
    let geo = GeometricFactors::from_mesh(&mesh);
    let acc = FpgaAccelerator::new(device.clone(), design);
    let u = mesh.evaluate(|x, y, z| (3.0 * x).sin() * y + z);
    let (_w, exec) = acc.execute(&u, &geo);
    println!("\nFunctional run on {} elements:", mesh.num_elements());
    println!("  simulated time      : {:.3} µs", exec.seconds * 1e6);
    println!(
        "  throughput          : {:.2} DOFs/cycle",
        exec.dofs_per_cycle
    );

    // Large-problem performance (the Table I operating point).
    let big = acc.estimate(4096);
    println!("\nAt 4096 elements (Table I operating point):");
    println!("  performance         : {:.1} GFLOP/s", big.gflops);
    println!("  DOFs per cycle      : {:.2}", big.dofs_per_cycle);
    println!(
        "  effective bandwidth : {:.1} GB/s",
        big.effective_bandwidth_gbs
    );
    println!("  board power         : {:.1} W", big.power_watts);
    println!(
        "  power efficiency    : {:.2} GFLOP/s/W",
        big.gflops_per_watt
    );

    // The Section III optimisation ladder.
    println!("\nOptimisation ladder (Section III), 4096 elements:");
    for stage in OptimizationStage::ladder() {
        let d = AcceleratorDesign::at_stage(degree, &device, stage);
        let est = FpgaAccelerator::new(device.clone(), d).estimate(4096);
        println!("  {:28} {:>10.3} GFLOP/s", format!("{stage:?}"), est.gflops);
    }
}
