//! Reproduce the Section V-D discussion: project the SEM accelerator onto the
//! Agilex 027, the Stratix 10M and the hypothetical "ideal" FPGA, compare
//! against the A100 kernel model, and answer "what would it take to beat the
//! Ampere-100?".
//!
//! Run with `cargo run --example future_fpgas --release`.

use semfpga::archdb::machine_model::calibrated_model;
use semfpga::model::projection::{design_fpga_for_targets, project_device};
use semfpga::model::throughput::ArbitrationPolicy;
use semfpga::model::{FpgaDevice, FpuCost};

fn main() {
    let degrees = [7_usize, 11, 15];
    let a100 = calibrated_model("A100").expect("A100 model exists");

    println!("Projected SEM-accelerator performance at 300 MHz (GFLOP/s):\n");
    println!("{:<42} {:>8} {:>8} {:>8}", "device", "N=7", "N=11", "N=15");
    let devices = [
        (
            FpgaDevice::stratix10_gx2800(),
            ArbitrationPolicy::PowerOfTwoDivisor,
        ),
        (FpgaDevice::agilex_027(), ArbitrationPolicy::PowerOfTwo),
        (FpgaDevice::stratix10m(), ArbitrationPolicy::PowerOfTwo),
        (FpgaDevice::stratix10m_plus(), ArbitrationPolicy::PowerOfTwo),
        (
            FpgaDevice::hypothetical_ideal(),
            ArbitrationPolicy::Unconstrained,
        ),
    ];
    for (device, policy) in &devices {
        let out = project_device(device, &degrees, 300.0, *policy);
        println!(
            "{:<42} {:>8.0} {:>8.0} {:>8.0}",
            device.name,
            out.for_degree(7).unwrap().prediction.gflops,
            out.for_degree(11).unwrap().prediction.gflops,
            out.for_degree(15).unwrap().prediction.gflops,
        );
    }
    println!(
        "{:<42} {:>8.0} {:>8.0} {:>8.0}   (calibrated GPU kernel model)",
        "NVIDIA A100 PCIe",
        a100.achieved_gflops(7, 4096),
        a100.achieved_gflops(11, 4096),
        a100.achieved_gflops(15, 4096),
    );

    // Inverse design: what fabric + memory would match the paper's A100 targets?
    let designed = design_fpga_for_targets(
        &[(7, 2_100.0), (11, 3_000.0), (15, 3_970.0)],
        300.0,
        FpuCost::stratix10_double(),
    );
    let gx = FpgaDevice::stratix10_gx2800();
    println!("\nFPGA required to match the A100 on this kernel (model answer):");
    println!(
        "  {:.1} M ALMs ({:.1}x GX2800), {:.0} DSPs ({:.1}x), {:.0} GB/s external memory",
        designed.resources.alms / 1e6,
        designed.resources.alms / gx.resources.alms,
        designed.resources.dsps,
        designed.resources.dsps / gx.resources.dsps,
        designed.memory_bandwidth_gbs
    );
    println!("  Paper's answer: 6.2 M ALMs (6x), 20 k DSPs (4x), 1.2 TB/s.");

    // The "hardened double-precision DSP" thought experiment that closes V-D.
    let hardened = design_fpga_for_targets(
        &[(7, 2_100.0), (11, 3_000.0), (15, 3_970.0)],
        300.0,
        FpuCost::hardened_double_dsp(),
    );
    println!(
        "\nWith DSPs hardened for double precision the same targets need only {:.1} M ALMs and {:.0} DSPs —",
        hardened.resources.alms / 1e6,
        hardened.resources.dsps
    );
    println!("the computation becomes memory-bound, comparable to the GPUs (final remark of Section V-D).");
}
