//! Quickstart: assemble a spectral element Poisson problem, solve it with
//! preconditioned conjugate gradients, and print the discretisation error and
//! achieved kernel performance on the CPU and on the simulated FPGA.
//!
//! Run with `cargo run --example quickstart --release`.

use semfpga::accel::{Backend, SemSystem};
use semfpga::solver::CgOptions;

fn main() {
    let degree = 7;
    let elements = [4, 4, 4];
    println!(
        "SEM Poisson quickstart: degree N = {degree}, {}x{}x{} elements\n",
        elements[0], elements[1], elements[2]
    );

    // 1. Solve the manufactured Poisson problem on the CPU.
    let cpu = SemSystem::builder()
        .degree(degree)
        .elements(elements)
        .backend(Backend::cpu_parallel())
        .build();
    let solution = cpu.solve_manufactured(CgOptions {
        max_iterations: 2000,
        tolerance: 1e-10,
        record_history: false,
    });
    println!(
        "CG solve     : {} iterations, relative residual {:.2e}",
        solution.cg.iterations, solution.cg.relative_residual
    );
    println!(
        "Discretisation error vs exact solution: max {:.3e}, L2 {:.3e}",
        solution.max_error, solution.l2_error
    );

    // 2. Benchmark the raw Ax kernel on the CPU backend.
    let cpu_perf = cpu.benchmark_operator(20);
    println!(
        "\nCPU kernel   : {:8.2} GFLOP/s ({:.1} MDOF/s) [{}]",
        cpu_perf.gflops,
        cpu_perf.mdofs_per_second(),
        cpu.backend().label()
    );

    // 3. The same problem offloaded to the simulated FPGA accelerator.
    let fpga = SemSystem::builder()
        .degree(degree)
        .elements(elements)
        .backend(Backend::fpga_simulated())
        .build();
    let fpga_perf = fpga.benchmark_operator(20);
    println!(
        "FPGA (sim)   : {:8.2} GFLOP/s ({:.1} MDOF/s), {:.1} W, {:.2} GFLOP/s/W",
        fpga_perf.gflops,
        fpga_perf.mdofs_per_second(),
        fpga_perf.power_watts.unwrap_or(0.0),
        fpga_perf.gflops_per_watt.unwrap_or(0.0)
    );
    let plan = fpga
        .offload_plan()
        .expect("fpga backend has an offload plan");
    println!(
        "Offload plan : {} buffers over {} banks, {:.2} MB to device, {:.2} MB back",
        plan.device_buffers,
        plan.memory_banks,
        plan.bytes_to_device as f64 / 1e6,
        plan.bytes_from_device as f64 / 1e6
    );

    // 4. Numerical agreement between the two backends.
    let u = cpu.mesh().evaluate(|x, y, z| (x * y * z).sin());
    let (w_cpu, _) = cpu.apply_operator(&u);
    let (w_fpga, _) = fpga.apply_operator(&u);
    let max_diff = w_cpu
        .as_slice()
        .iter()
        .zip(w_fpga.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    println!("\nCPU vs simulated-FPGA kernel results agree to {max_diff:.3e}");

    // 5. The same solve, end to end, *through* the FPGA backend: every CG
    //    operator application runs on the simulated accelerator, and the
    //    report carries simulated kernel seconds, transfer time and power.
    let report = fpga.solve(CgOptions {
        max_iterations: 2000,
        tolerance: 1e-10,
        record_history: false,
    });
    println!(
        "\nSolve on {} ({} iterations):",
        report.backend,
        report.iterations()
    );
    println!(
        "  operator time  : {:.3} ms simulated over {} applications ({:.1} GFLOP/s)",
        report.operator.seconds * 1e3,
        report.operator.applications,
        report.operator.gflops
    );
    println!(
        "  transfer time  : {:.3} ms over the host link",
        report.transfer_seconds * 1e3
    );
    println!(
        "  board power    : {:.1} W ({:.2} GFLOP/s/W)",
        report.operator.power_watts.unwrap_or(0.0),
        report.operator.gflops_per_watt.unwrap_or(0.0)
    );
    println!(
        "  solution error : max {:.3e} (same discretisation as the CPU solve)",
        report.solution.max_error
    );
}
