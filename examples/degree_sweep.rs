//! Sweep the polynomial degree and problem size on both backends and print a
//! compact Fig. 1-style panel: CPU (measured) vs simulated FPGA vs the A100
//! machine model.
//!
//! Run with `cargo run --example degree_sweep --release`.

use semfpga::accel::{Backend, SemSystem};
use semfpga::archdb::machine_model::calibrated_model;
use semfpga::fpga::{FpgaAccelerator, FpgaDevice};

fn main() {
    let device = FpgaDevice::stratix10_gx2800();
    let a100 = calibrated_model("A100").expect("A100 model exists");
    println!(
        "{:>3} {:>10} {:>16} {:>16} {:>16}",
        "N", "#elements", "CPU (GFLOP/s)", "FPGA-sim (GF/s)", "A100 model (GF/s)"
    );
    for &degree in &[3_usize, 7, 11] {
        for &per_side in &[2_usize, 4] {
            let elements = per_side * per_side * per_side;
            let cpu = SemSystem::builder()
                .degree(degree)
                .elements([per_side; 3])
                .backend(Backend::cpu_parallel())
                .build();
            let cpu_perf = cpu.benchmark_operator(10);
            let fpga = FpgaAccelerator::for_degree(degree, &device).estimate(elements);
            let gpu = a100.achieved_gflops(degree, elements);
            println!(
                "{:>3} {:>10} {:>16.2} {:>16.2} {:>16.2}",
                degree, elements, cpu_perf.gflops, fpga.gflops, gpu
            );
        }
    }
    println!("\n(The CPU column is a real measurement on this host; the FPGA and A100 columns");
    println!(" come from the calibrated simulator/models — see EXPERIMENTS.md.)");
}
