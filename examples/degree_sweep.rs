//! Sweep the polynomial degree and problem size and print a compact
//! Fig. 1-style panel: the generic CPU kernel vs the degree-specialized one
//! (both measured), then the simulated FPGA and the A100 machine model.
//! The unroll column is the generated kernel's vector width — the same
//! structural constant the FPGA design point derives its unroll from.
//!
//! Run with `cargo run --example degree_sweep --release`.

use semfpga::accel::{Backend, SemSystem};
use semfpga::archdb::machine_model::calibrated_model;
use semfpga::fpga::{FpgaAccelerator, FpgaDevice};
use semfpga::kernel::{kernel_structure, PoissonOperator};
use semfpga::mesh::ElementField;
use semfpga::obs::WallTimer;

/// Average seconds per application over `reps` runs (after one warm-up).
fn seconds_per_application(
    operator: &PoissonOperator,
    u: &ElementField,
    w: &mut ElementField,
    reps: usize,
) -> f64 {
    operator.apply_into(u, w);
    let timer = WallTimer::start();
    for _ in 0..reps {
        operator.apply_into(u, w);
    }
    timer.elapsed_wall_seconds() / reps as f64
}

fn main() {
    let device = FpgaDevice::stratix10_gx2800();
    let a100 = calibrated_model("A100").expect("A100 model exists");
    let reps = 10;
    println!(
        "{:>3} {:>10} {:>7} {:>15} {:>15} {:>8} {:>16} {:>17}",
        "N",
        "#elements",
        "unroll",
        "generic (GF/s)",
        "special (GF/s)",
        "speedup",
        "FPGA-sim (GF/s)",
        "A100 model (GF/s)"
    );
    for &degree in &[3_usize, 7, 11] {
        for &per_side in &[2_usize, 4] {
            let elements = per_side * per_side * per_side;
            let system = SemSystem::builder()
                .degree(degree)
                .elements([per_side; 3])
                .backend(Backend::cpu_specialized())
                .build();
            let specialized = system.operator();
            let mut generic = specialized.clone();
            generic.pin_generic();
            let u = system.problem().manufactured_exact();
            let mut w = ElementField::zeros(degree, elements);
            let generic_seconds = seconds_per_application(&generic, &u, &mut w, reps);
            let specialized_seconds = seconds_per_application(specialized, &u, &mut w, reps);
            let flops = specialized.flops_per_application() as f64;
            let unroll = kernel_structure(degree).map_or(1, |k| k.unroll);
            let fpga = FpgaAccelerator::for_degree(degree, &device).estimate(elements);
            let gpu = a100.achieved_gflops(degree, elements);
            println!(
                "{:>3} {:>10} {:>7} {:>15.2} {:>15.2} {:>7.2}x {:>16.2} {:>17.2}",
                degree,
                elements,
                unroll,
                flops / generic_seconds / 1e9,
                flops / specialized_seconds / 1e9,
                generic_seconds / specialized_seconds,
                fpga.gflops,
                gpu
            );
        }
    }
    println!("\n(The CPU columns are real single-thread measurements on this host — the");
    println!(" runtime-nx generic kernel vs the compile-time-NX specialized dispatch; the");
    println!(" FPGA and A100 columns come from the calibrated simulator/models — see");
    println!(" EXPERIMENTS.md.)");
}
