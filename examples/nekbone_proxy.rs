//! Nekbone-style proxy run: a fixed number of CG iterations over a box of
//! elements, reporting the achieved operator FLOP rate — the workload the
//! paper's CPU baselines run.
//!
//! Run with `cargo run --example nekbone_proxy --release -- [degree] [elements_per_side] [iterations]`.

use semfpga::kernel::AxImplementation;
use semfpga::solver::{PrecondSpec, ProxyConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let degree: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let per_side: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let iterations: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);

    let config = ProxyConfig {
        degree,
        elements: [per_side, per_side, per_side],
        cg_iterations: iterations,
        implementation: AxImplementation::Parallel,
        precond: PrecondSpec::Jacobi,
    };
    println!(
        "Nekbone proxy: N = {degree}, {} elements, {} CG iterations (Jacobi preconditioned)\n",
        config.num_elements(),
        iterations
    );
    let result = config.run();
    println!("local DOFs          : {}", result.num_dofs);
    println!("wall time           : {:.3} s", result.seconds);
    println!("operator FLOPs      : {:.3e}", result.operator_flops as f64);
    println!("operator throughput : {:.2} GFLOP/s", result.gflops);
    println!(
        "DOF throughput      : {:.1} MDOF/s",
        result.num_dofs as f64 * result.iterations as f64 / result.seconds / 1e6
    );
    println!("final rel. residual : {:.3e}", result.relative_residual);
}
