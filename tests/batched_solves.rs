//! Batched many-RHS solve path: parity and amortisation guarantees.
//!
//! * `solve_many` must be bitwise identical to N independent solves on
//!   **every** backend in the registry (batch-parallel CPU execution and
//!   shared-scratch accelerator execution included);
//! * batching must amortise the offload transfer on FPGA backends;
//! * the CSR gather–scatter sweep must match the legacy global-vector path.

use sem_accel::{Backend, SemSystem};
use sem_mesh::{BoxMesh, ElementField, GatherScatter};
use sem_solver::CgOptions;

fn options() -> CgOptions {
    CgOptions {
        max_iterations: 400,
        tolerance: 1e-10,
        record_history: false,
    }
}

#[test]
fn solve_many_matches_sequential_solves_on_every_registry_backend() {
    for name in Backend::registry_names() {
        let system = SemSystem::builder()
            .degree(3)
            .elements([2, 2, 2])
            .backend_named(&name)
            .build();
        let rhss: Vec<ElementField> = (0..3)
            .map(|i| {
                system
                    .problem()
                    .right_hand_side(move |x, y, z| ((1 + i) as f64 * x).sin() * y + z * z)
            })
            .collect();

        let batched = system.solve_many(&rhss, options());
        assert_eq!(batched.len(), rhss.len(), "{name}");
        for (rhs, report) in rhss.iter().zip(&batched) {
            let solo = system.solve_rhs(rhs, options());
            assert!(report.converged(), "{name} must converge");
            assert_eq!(
                report.solution.solution.as_slice(),
                solo.solution.solution.as_slice(),
                "{name}: batched and standalone solves must be bitwise identical"
            );
            assert_eq!(report.iterations(), solo.iterations(), "{name}");
            assert_eq!(report.batch_size, rhss.len(), "{name}");
        }
    }
}

#[test]
fn batch_16_drops_per_rhs_offload_seconds_by_at_least_30_percent_on_fpga_backends() {
    for name in Backend::registry_names() {
        if !name.starts_with("fpga:") {
            continue;
        }
        let system = SemSystem::builder()
            .degree(7)
            .elements([2, 2, 2])
            .backend_named(&name)
            .build();
        let batch = 16;
        let reports = system.solve_many_manufactured(batch, options());
        let sequential = system.solve(options());
        assert!(sequential.transfer_seconds > 0.0, "{name}");

        let per_rhs_batched: f64 =
            reports.iter().map(|r| r.transfer_seconds).sum::<f64>() / batch as f64;
        let drop = 1.0 - per_rhs_batched / sequential.transfer_seconds;
        assert!(
            drop >= 0.3,
            "{name}: per-RHS offload seconds must drop >= 30%, got {:.0}%",
            drop * 100.0
        );
        // Kernel seconds are still charged per RHS.
        for report in &reports {
            assert!(
                (report.operator.seconds - sequential.operator.seconds).abs()
                    < 1e-12 * sequential.operator.seconds.max(1.0),
                "{name}: kernel accounting must stay per-RHS"
            );
        }
    }
}

#[test]
fn csr_dssum_matches_the_legacy_path_on_deformed_meshes() {
    use sem_mesh::MeshDeformation;
    for deformation in [
        MeshDeformation::None,
        MeshDeformation::Sinusoidal { amplitude: 0.05 },
    ] {
        let mesh = BoxMesh::new(4, [2, 3, 2], [1.0, 1.2, 0.9], deformation);
        let gs = GatherScatter::from_mesh(&mesh);
        let field = mesh.evaluate(|x, y, z| (7.1 * x).sin() * (3.3 * y).cos() + z * z * z);
        let mut csr = field.clone();
        let mut legacy = field;
        gs.direct_stiffness_sum(&mut csr);
        gs.direct_stiffness_sum_via_global(&mut legacy);
        let scale = legacy.max_abs();
        for (a, b) in csr.as_slice().iter().zip(legacy.as_slice()) {
            assert!(
                (a - b).abs() <= 1e-12 * (1.0 + scale),
                "CSR sweep diverged from the legacy dssum: {a} vs {b}"
            );
        }
        // In fact the orders of accumulation agree, so it is bitwise.
        assert_eq!(csr.as_slice(), legacy.as_slice());
    }
}
