//! Integration tests asserting the paper's headline quantitative claims are
//! reproduced by the simulators and models (within documented tolerances).
//! Each test names the table/figure it guards; `EXPERIMENTS.md` records the
//! full paper-vs-reproduced numbers.

use semfpga::fpga::{FpgaAccelerator, FpgaDevice};
use semfpga::model::measured_table1;
use semfpga::model::projection::project_device;
use semfpga::model::throughput::ArbitrationPolicy;

const REFERENCE_ELEMENTS: usize = 4096;

/// Table I: peak performance of the headline degrees (7, 11, 15) within 12%.
#[test]
fn table1_headline_degrees_reproduce() {
    let device = FpgaDevice::stratix10_gx2800();
    for (degree, paper_gflops) in [(7_usize, 109.0), (11, 136.4), (15, 211.3)] {
        let sim = FpgaAccelerator::for_degree(degree, &device).estimate(REFERENCE_ELEMENTS);
        let rel = (sim.gflops - paper_gflops).abs() / paper_gflops;
        assert!(
            rel < 0.12,
            "N={degree}: simulated {:.1} vs paper {paper_gflops} ({:.0}%)",
            sim.gflops,
            rel * 100.0
        );
    }
}

/// Table I: the accelerator is logic-bound — logic utilisation is the highest
/// of the three resource classes for every synthesised degree.
#[test]
fn table1_designs_are_logic_bound() {
    let device = FpgaDevice::stratix10_gx2800();
    for row in measured_table1() {
        let design = semfpga::fpga::AcceleratorDesign::for_degree(row.degree, &device);
        let synth = semfpga::fpga::synthesize(&design, &device);
        assert!(
            synth.utilisation.alms > synth.utilisation.dsps,
            "degree {}",
            row.degree
        );
        assert!(
            synth.utilisation.alms > synth.utilisation.brams,
            "degree {}",
            row.degree
        );
    }
}

/// Table I / model: T_max = 4 on the evaluated board, and the degrees whose
/// GLL count is not divisible by four only reach ~2 DOFs/cycle.
#[test]
fn throughput_pattern_follows_the_arbitration_constraint() {
    let device = FpgaDevice::stratix10_gx2800();
    for row in measured_table1() {
        let sim = FpgaAccelerator::for_degree(row.degree, &device).estimate(REFERENCE_ELEMENTS);
        assert!(sim.dofs_per_cycle <= 4.0 + 1e-9);
        if (row.degree + 1) % 4 == 0 {
            assert!(sim.dofs_per_cycle > 3.0, "degree {}", row.degree);
        } else {
            assert!(sim.dofs_per_cycle < 2.2, "degree {}", row.degree);
        }
    }
}

/// Section V-C / Fig. 2: at 4096 elements and N = 15 the FPGA beats every CPU
/// and the K80, stays within ~15% of the RTX 2060, and loses to the
/// Tesla-class GPUs by the paper's factors.
#[test]
fn fig2_ranking_is_reproduced() {
    let rows = bench::fig2_rows();
    let fpga = rows
        .iter()
        .find(|r| r.machine.contains("SEM-Acc"))
        .expect("FPGA row")
        .gflops[2];
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.machine.contains(name))
            .unwrap_or_else(|| panic!("{name} row"))
            .gflops[2]
    };
    assert!(fpga > get("Xeon"));
    assert!(fpga > get("i9"));
    assert!(fpga > get("ThunderX2"));
    assert!(fpga > get("K80"));
    let p100 = get("P100") / fpga;
    let v100 = get("V100") / fpga;
    let a100 = get("A100") / fpga;
    assert!((3.0..6.0).contains(&p100), "P100 ratio {p100}");
    assert!((4.5..8.5).contains(&v100), "V100 ratio {v100}");
    assert!((6.5..10.5).contains(&a100), "A100 ratio {a100}");
}

/// Fig. 2 / Section V-C: power efficiency — the FPGA beats every CPU, and the
/// Tesla GPUs beat the FPGA but by a smaller factor than their raw speedup.
#[test]
fn fig2_power_efficiency_story_is_reproduced() {
    let rows = bench::fig2_rows();
    let fpga = rows.iter().find(|r| r.machine.contains("SEM-Acc")).unwrap();
    // Compare everything at N = 15 (the paper's quoted ratios), using each
    // machine's power draw while running the kernel.
    let fpga_eff = fpga.gflops[2] / fpga.power_watts;
    for cpu in ["Xeon", "i9", "ThunderX2"] {
        let row = rows.iter().find(|r| r.machine.contains(cpu)).unwrap();
        assert!(fpga_eff > row.gflops[2] / row.power_watts, "{cpu}");
    }
    for gpu in ["P100", "V100", "A100"] {
        let row = rows.iter().find(|r| r.machine.contains(gpu)).unwrap();
        let perf_ratio = row.gflops[2] / fpga.gflops[2];
        let eff_ratio = (row.gflops[2] / row.power_watts) / fpga_eff;
        assert!(eff_ratio > 1.0, "{gpu} must be more efficient");
        assert!(
            eff_ratio < perf_ratio,
            "{gpu}: efficiency advantage ({eff_ratio:.2}x) must be smaller than raw speedup ({perf_ratio:.2}x)"
        );
    }
}

/// Fig. 1 shape: every machine ramps with problem size, and at small sizes the
/// FPGA struggles against the CPUs (low clock + low bandwidth), as the paper
/// observes.
#[test]
fn fig1_small_problem_behaviour() {
    let series = bench::fig1_series(7);
    let at = |machine: &str, elements: usize| {
        series
            .iter()
            .find(|p| p.machine.contains(machine) && p.num_elements == elements)
            .unwrap()
            .gflops
    };
    // Small problems: the Xeon beats the FPGA.
    assert!(at("Xeon", 8) > at("SEM-Acc", 8));
    // Large problems at N=7: the FPGA overtakes the i9 and ThunderX2 never
    // catches up; the Tesla GPUs stay far ahead.
    assert!(at("SEM-Acc", 16384) > at("ThunderX2", 16384));
    assert!(at("A100", 16384) > 5.0 * at("SEM-Acc", 16384));
}

/// Section III ladder: baseline ≈ 0.025 GFLOP/s, final ≈ 109 GFLOP/s (N = 7),
/// an overall improvement of more than three orders of magnitude.
#[test]
fn optimisation_ladder_end_points() {
    let ladder = bench::ladder_gflops(7, REFERENCE_ELEMENTS);
    let baseline = ladder.first().unwrap().1;
    let final_ = ladder.last().unwrap().1;
    assert!(baseline < 0.1, "baseline {baseline}");
    assert!((final_ - 109.0).abs() < 15.0, "final {final_}");
    assert!(final_ / baseline > 1_000.0);
}

/// Section V-D: the Agilex 027 projection lands on the paper's 266/191/248
/// GFLOP/s and the hypothetical ideal FPGA reaches multi-TFLOP/s, beating the
/// A100 kernel model at N = 11.
#[test]
fn section_vd_projections() {
    let agilex = project_device(
        &FpgaDevice::agilex_027(),
        &[7, 11, 15],
        300.0,
        ArbitrationPolicy::PowerOfTwo,
    );
    for (degree, expected) in [(7_usize, 266.0), (11, 191.0), (15, 248.0)] {
        let got = agilex.for_degree(degree).unwrap().prediction.gflops;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "Agilex N={degree}: {got} vs {expected}"
        );
    }

    let ideal = project_device(
        &FpgaDevice::hypothetical_ideal(),
        &[7, 11, 15],
        300.0,
        ArbitrationPolicy::Unconstrained,
    );
    let a100 = arch_db::machine_model::calibrated_model("A100").unwrap();
    let ideal_n11 = ideal.for_degree(11).unwrap().prediction.gflops;
    assert!(ideal_n11 > 2_500.0);
    assert!(ideal_n11 > a100.achieved_gflops(11, REFERENCE_ELEMENTS));
}

/// Section III-E / IV: padding never helps the even-GLL-count degrees the
/// accelerators target, which is why the final designs do not pad.
#[test]
fn padding_is_not_worth_it_for_the_synthesised_degrees() {
    use semfpga::model::padding::analyse_padding;
    for degree in [1, 3, 7, 11, 15] {
        let a = analyse_padding(degree, 4, 4.0);
        assert!(
            a.net_gain <= 1.0 + 1e-9,
            "degree {degree}: net gain {}",
            a.net_gain
        );
    }
}
