//! Cross-backend parity: every registered execution backend must produce the
//! same `Ax` results, and backend-routed solves must converge identically on
//! CPU and FPGA backends.

use semfpga::accel::{Backend, PerfSource, SemSystem};
use semfpga::mesh::{BoxMesh, ElementField};
use semfpga::solver::CgOptions;

/// The backends the parity sweep instantiates (multi-board capped at two
/// boards so the partition is non-trivial even on tiny meshes).
fn parity_backends() -> Vec<Backend> {
    [
        "cpu:reference",
        "cpu:optimized",
        "cpu:parallel",
        "fpga:stratix10-gx2800",
        "multi:2x520n",
    ]
    .into_iter()
    .map(|name| Backend::from_name(name).unwrap_or_else(|| panic!("`{name}` must resolve")))
    .collect()
}

#[test]
fn all_registered_backends_produce_identical_ax_results() {
    for degree in [3usize, 7, 11] {
        let mesh = BoxMesh::unit_cube(degree, 2);
        let u = mesh.evaluate(|x, y, z| (2.0 * x - y).sin() * (z + 0.5) + x * x * y);

        let mut reference: Option<(String, ElementField)> = None;
        for config in parity_backends() {
            let backend = config.instantiate(&mesh);
            let mut w = ElementField::zeros(degree, mesh.num_elements());
            backend.apply_into(&u, &mut w);
            match &reference {
                None => reference = Some((backend.label().into_owned(), w)),
                Some((ref_label, w_ref)) => {
                    let scale = w_ref.max_abs();
                    for (i, (a, b)) in w_ref.as_slice().iter().zip(w.as_slice()).enumerate() {
                        assert!(
                            (a - b).abs() < 1e-10 * (1.0 + scale),
                            "degree {degree}, dof {i}: {ref_label} gives {a}, {} gives {b}",
                            backend.label()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn every_registry_backend_reports_consistent_metadata() {
    let mesh = BoxMesh::unit_cube(3, 2);
    for name in Backend::registry_names() {
        let config = Backend::from_name(&name).unwrap();
        let backend = config.instantiate(&mesh);
        assert_eq!(backend.degree(), 3, "{name}");
        assert_eq!(backend.num_elements(), 8, "{name}");
        assert!(backend.flops_per_application() > 0, "{name}");
        assert_eq!(
            backend.perf_source() == PerfSource::Simulated,
            config.is_simulated(),
            "{name}: source must match the configuration"
        );
        assert_eq!(
            backend.simulated_seconds_per_application().is_some(),
            config.is_simulated(),
            "{name}: only simulated backends have modelled cost"
        );
    }
}

#[test]
fn solves_converge_identically_on_cpu_and_fpga_backends() {
    let options = CgOptions {
        max_iterations: 3000,
        tolerance: 1e-11,
        record_history: false,
    };
    let build = |backend: Backend| {
        SemSystem::builder()
            .degree(6)
            .elements([2, 2, 2])
            .backend(backend)
            .build()
    };

    let cpu = build(Backend::cpu_optimized()).solve(options);
    let fpga = build(Backend::fpga_simulated()).solve(options);
    let multi = build(Backend::multi_fpga(2)).solve(options);

    assert!(cpu.converged() && fpga.converged() && multi.converged());
    assert_eq!(cpu.iterations(), fpga.iterations());
    assert_eq!(cpu.iterations(), multi.iterations());
    assert_eq!(cpu.source, PerfSource::Measured);
    assert_eq!(fpga.source, PerfSource::Simulated);
    assert!(fpga.operator.seconds > 0.0, "simulated operator time");
    assert!(fpga.operator.power_watts.is_some(), "simulated power");

    let scale = cpu.solution.solution.max_abs();
    for (label, other) in [("fpga", &fpga), ("multi", &multi)] {
        for (a, b) in cpu
            .solution
            .solution
            .as_slice()
            .iter()
            .zip(other.solution.solution.as_slice())
        {
            assert!(
                (a - b).abs() < 1e-10 * (1.0 + scale),
                "{label}: solutions must match to 1e-10"
            );
        }
    }
    // Error metrics agree to the same precision.
    assert!((cpu.solution.max_error - fpga.solution.max_error).abs() < 1e-10);
}
