//! Workspace-level property-based tests spanning multiple crates.

use proptest::prelude::*;
use semfpga::fpga::{AcceleratorDesign, FpgaAccelerator, FpgaDevice};
use semfpga::kernel::{AxImplementation, PoissonOperator};
use semfpga::mesh::{BoxMesh, DirichletMask, ElementField, GatherScatter};
use semfpga::model::throughput::{bandwidth_throughput, constrain_throughput, ArbitrationPolicy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulated FPGA never exceeds the analytic bandwidth bound of the
    /// Section IV model, for any degree, board clock and problem size.
    #[test]
    fn simulator_respects_the_bandwidth_bound(
        degree in 1usize..=15,
        elements_pow in 3u32..14,
    ) {
        let device = FpgaDevice::stratix10_gx2800();
        let acc = FpgaAccelerator::for_degree(degree, &device);
        let elements = 2usize.pow(elements_pow);
        let est = acc.estimate(elements);
        let bound = bandwidth_throughput(
            device.memory_bandwidth_gbs,
            degree,
            est.kernel_clock_mhz.min(device.memory_clock_mhz),
        )
        .max(acc.design().unroll as f64);
        prop_assert!(
            est.dofs_per_cycle <= bound + 1e-9,
            "degree {degree}, {elements} elements: {} > {bound}",
            est.dofs_per_cycle
        );
    }

    /// The arbitration-constrained throughput always divides N+1, is a power
    /// of two, and never exceeds the unconstrained value.
    #[test]
    fn arbitration_constraint_invariants(degree in 1usize..=16, t in 1.0f64..70.0) {
        let constrained = constrain_throughput(t, degree, ArbitrationPolicy::PowerOfTwoDivisor);
        prop_assert!(constrained <= t.max(1.0) + 1e-12);
        let as_int = constrained as usize;
        prop_assert!(as_int.is_power_of_two());
        prop_assert_eq!((degree + 1) % as_int, 0);
        let pow2_only = constrain_throughput(t, degree, ArbitrationPolicy::PowerOfTwo);
        prop_assert!(pow2_only + 1e-12 >= constrained);
    }

    /// Masked dssum'd operator energies are non-negative for arbitrary nodal
    /// data on arbitrary box meshes (the invariant CG depends on).
    #[test]
    fn assembled_operator_energy_is_nonnegative(
        degree in 1usize..=4,
        ex in 1usize..=2,
        ey in 1usize..=2,
        seed in proptest::collection::vec(-1.0f64..1.0, 8..64),
    ) {
        let mesh = BoxMesh::new(degree, [ex, ey, 1], [1.0, 0.8, 1.3], semfpga::mesh::MeshDeformation::None);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let gs = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        let mut u = ElementField::zeros(degree, mesh.num_elements());
        for (i, v) in u.as_mut_slice().iter_mut().enumerate() {
            *v = seed[i % seed.len()];
        }
        mask.apply(&mut u);
        gs.direct_stiffness_sum(&mut u);
        let mut au = op.apply(&u);
        gs.direct_stiffness_sum(&mut au);
        mask.apply(&mut au);
        let energy = u.dot_weighted(&au, &gs.inverse_multiplicity());
        prop_assert!(energy >= -1e-8, "energy {energy}");
    }

    /// The offload plan's traffic equals the model's 8 words per DOF (plus the
    /// derivative matrices) for any degree and element count.
    #[test]
    fn offload_traffic_matches_q_of_n(degree in 1usize..=15, elements in 1usize..=512) {
        let device = FpgaDevice::stratix10_gx2800();
        let design = AcceleratorDesign::for_degree(degree, &device);
        let plan = sem_accel::OffloadPlan::new(&design, &device, elements);
        let nx = (degree + 1) as u64;
        let dofs = nx * nx * nx * elements as u64;
        let expected = dofs * semfpga::kernel::bytes_per_dof(degree) as u64 + 2 * nx * nx * 8;
        prop_assert_eq!(plan.total_transfer_bytes(), expected);
    }

    /// Simulated performance is monotone in the problem size (Fig. 1 curves
    /// never dip as elements are added).
    #[test]
    fn fpga_performance_is_monotone_in_problem_size(degree in 1usize..=15) {
        let device = FpgaDevice::stratix10_gx2800();
        let acc = FpgaAccelerator::for_degree(degree, &device);
        let mut prev = 0.0;
        for elements in [8, 32, 128, 512, 2048, 8192] {
            let g = acc.estimate(elements).gflops;
            prop_assert!(g + 1e-9 >= prev, "degree {degree}: {g} < {prev}");
            prev = g;
        }
    }
}
