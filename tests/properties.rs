//! Workspace-level property-style tests spanning multiple crates.
//!
//! The offline build cannot use `proptest`, so each property is exercised
//! over a deterministic seeded sweep of random inputs instead of a shrinking
//! search — same invariants, reproducible cases.

use rand::{rngs::StdRng, Rng, SeedableRng};
use semfpga::fpga::{AcceleratorDesign, FpgaAccelerator, FpgaDevice};
use semfpga::kernel::{AxImplementation, PoissonOperator};
use semfpga::mesh::{BoxMesh, DirichletMask, ElementField, GatherScatter};
use semfpga::model::throughput::{bandwidth_throughput, constrain_throughput, ArbitrationPolicy};

/// The simulated FPGA never exceeds the analytic bandwidth bound of the
/// Section IV model, for any degree, board clock and problem size.
#[test]
fn simulator_respects_the_bandwidth_bound() {
    let mut rng = StdRng::seed_from_u64(31);
    let device = FpgaDevice::stratix10_gx2800();
    for _ in 0..16 {
        let degree = rng.gen_range(1usize..16);
        let elements_pow = rng.gen_range(3u32..14);
        let acc = FpgaAccelerator::for_degree(degree, &device);
        let elements = 2usize.pow(elements_pow);
        let est = acc.estimate(elements);
        let bound = bandwidth_throughput(
            device.memory_bandwidth_gbs,
            degree,
            est.kernel_clock_mhz.min(device.memory_clock_mhz),
        )
        .max(acc.design().unroll as f64);
        assert!(
            est.dofs_per_cycle <= bound + 1e-9,
            "degree {degree}, {elements} elements: {} > {bound}",
            est.dofs_per_cycle
        );
    }
}

/// The arbitration-constrained throughput always divides N+1, is a power of
/// two, and never exceeds the unconstrained value.
#[test]
fn arbitration_constraint_invariants() {
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..64 {
        let degree = rng.gen_range(1usize..=16);
        let t = rng.gen_range(1.0..70.0);
        let constrained = constrain_throughput(t, degree, ArbitrationPolicy::PowerOfTwoDivisor);
        assert!(constrained <= t.max(1.0) + 1e-12);
        let as_int = constrained as usize;
        assert!(as_int.is_power_of_two(), "degree {degree}, t {t}");
        assert_eq!((degree + 1) % as_int, 0, "degree {degree}, t {t}");
        let pow2_only = constrain_throughput(t, degree, ArbitrationPolicy::PowerOfTwo);
        assert!(pow2_only + 1e-12 >= constrained, "degree {degree}, t {t}");
    }
}

/// Masked dssum'd operator energies are non-negative for arbitrary nodal data
/// on arbitrary box meshes (the invariant CG depends on).
#[test]
fn assembled_operator_energy_is_nonnegative() {
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..16 {
        let degree = rng.gen_range(1usize..=4);
        let ex = rng.gen_range(1usize..=2);
        let ey = rng.gen_range(1usize..=2);
        let len = rng.gen_range(8usize..64);
        let seed: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mesh = BoxMesh::new(
            degree,
            [ex, ey, 1],
            [1.0, 0.8, 1.3],
            semfpga::mesh::MeshDeformation::None,
        );
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let gs = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        let mut u = ElementField::zeros(degree, mesh.num_elements());
        for (i, v) in u.as_mut_slice().iter_mut().enumerate() {
            *v = seed[i % seed.len()];
        }
        mask.apply(&mut u);
        gs.direct_stiffness_sum(&mut u);
        let mut au = op.apply(&u);
        gs.direct_stiffness_sum(&mut au);
        mask.apply(&mut au);
        let energy = u.dot_weighted(&au, &gs.inverse_multiplicity());
        assert!(energy >= -1e-8, "energy {energy}");
    }
}

/// The offload plan's traffic equals the model's 8 words per DOF (plus the
/// derivative matrices) for any degree and element count.
#[test]
fn offload_traffic_matches_q_of_n() {
    let mut rng = StdRng::seed_from_u64(34);
    let device = FpgaDevice::stratix10_gx2800();
    for _ in 0..32 {
        let degree = rng.gen_range(1usize..=15);
        let elements = rng.gen_range(1usize..=512);
        let design = AcceleratorDesign::for_degree(degree, &device);
        let plan = sem_accel::OffloadPlan::new(&design, &device, elements);
        let nx = (degree + 1) as u64;
        let dofs = nx * nx * nx * elements as u64;
        let expected = dofs * semfpga::kernel::bytes_per_dof(degree) as u64 + 2 * nx * nx * 8;
        assert_eq!(
            plan.total_transfer_bytes(),
            expected,
            "degree {degree}, {elements} elements"
        );
    }
}

/// Simulated performance is monotone in the problem size (Fig. 1 curves never
/// dip as elements are added).
#[test]
fn fpga_performance_is_monotone_in_problem_size() {
    let device = FpgaDevice::stratix10_gx2800();
    for degree in 1usize..=15 {
        let acc = FpgaAccelerator::for_degree(degree, &device);
        let mut prev = 0.0;
        for elements in [8, 32, 128, 512, 2048, 8192] {
            let g = acc.estimate(elements).gflops;
            assert!(g + 1e-9 >= prev, "degree {degree}: {g} < {prev}");
            prev = g;
        }
    }
}
