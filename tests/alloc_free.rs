//! The CG hot loop must be allocation-free.
//!
//! A counting global allocator wraps the system allocator; after a warmup
//! solve (which sizes the kernel's thread-local element scratch), repeated
//! solves through a shared [`sem_solver::CgScratch`] must allocate a small,
//! **iteration-count-independent** number of times — i.e. nothing inside the
//! iteration loop touches the heap.  The same bound must hold with an
//! *enabled* sem-obs recorder: spans land in the preallocated per-thread
//! ring and metrics in families registered at first touch, so observing a
//! solve costs no heap traffic.  This file holds exactly one test so no
//! concurrent test pollutes the global counter.

use sem_kernel::{AxImplementation, PoissonOperator};
use sem_mesh::{BoxMesh, DirichletMask, ElementField, GatherScatter};
use sem_obs::{recorder, ObsConfig, Recorder, SpanKind};
use sem_solver::{CgOptions, CgScratch, CgSolver, FdmPreconditioner, JacobiPreconditioner};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a relaxed
// atomic side effect.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn solver_options(max_iterations: usize) -> CgOptions {
    CgOptions {
        max_iterations,
        // Unreachable tolerance: every solve runs to its iteration cap, so
        // the two measurements below differ only in loop trips.
        tolerance: 1e-30,
        record_history: false,
    }
}

#[test]
fn cg_iterations_perform_no_heap_allocations_with_a_shared_scratch() {
    let mesh = BoxMesh::unit_cube(4, 2);
    let operator = PoissonOperator::new(&mesh, AxImplementation::Optimized);
    let gather_scatter = GatherScatter::from_mesh(&mesh);
    let mask = DirichletMask::from_mesh(&mesh);
    let preconditioner = JacobiPreconditioner::new(&operator, &gather_scatter, &mask);

    let short = CgSolver::new(&operator, &gather_scatter, &mask, solver_options(5));
    let long = CgSolver::new(&operator, &gather_scatter, &mask, solver_options(55));

    let mut x_exact = mesh.evaluate(|x, y, z| x * (1.0 - x) * y * (1.0 - y) * (3.0 * z).sin());
    mask.apply(&mut x_exact);
    let rhs = short.apply_operator(&x_exact);

    let mut scratch = CgScratch::new(4, mesh.num_elements());
    // Warmup: sizes the kernel's thread-local element scratch and touches
    // every code path once.
    let warmup = short.solve_with_scratch(&rhs, &preconditioner, &mut scratch);
    assert_eq!(warmup.iterations, 5);

    let before_short = allocations();
    let out_short = short.solve_with_scratch(&rhs, &preconditioner, &mut scratch);
    let delta_short = allocations() - before_short;

    let before_long = allocations();
    let out_long = long.solve_with_scratch(&rhs, &preconditioner, &mut scratch);
    let delta_long = allocations() - before_long;

    assert!(
        out_long.iterations > out_short.iterations,
        "the long solve must actually iterate more ({} vs {})",
        out_long.iterations,
        out_short.iterations
    );
    // The only per-solve allocation is the returned solution clone; fifty
    // extra iterations must not add heap traffic.  A small slack absorbs
    // incidental allocator activity outside the loop (e.g. the test harness).
    assert!(
        delta_short <= 8,
        "a 5-iteration solve allocated {delta_short} times"
    );
    assert!(
        delta_long <= delta_short + 4,
        "extra iterations leaked allocations: {delta_long} (long) vs {delta_short} (short)"
    );

    // And the reused scratch did not disturb correctness.
    let fresh = long.solve(&rhs, &preconditioner);
    assert_eq!(fresh.solution.as_slice(), out_long.solution.as_slice());

    // The FDM path: setup allocates (eigendecompositions, coarse factor,
    // per-thread apply scratch on first use) — all once, before the loop —
    // and then the hot loop stays heap-silent, iteration-count-independent.
    let fdm = FdmPreconditioner::new(&mesh, &operator, &gather_scatter, &mask);
    let fdm_warmup = short.solve_with_scratch(&rhs, &fdm, &mut scratch);
    assert_eq!(fdm_warmup.iterations, 5);

    let before_fdm_short = allocations();
    let fdm_short = short.solve_with_scratch(&rhs, &fdm, &mut scratch);
    let delta_fdm_short = allocations() - before_fdm_short;

    let before_fdm_long = allocations();
    let fdm_long = long.solve_with_scratch(&rhs, &fdm, &mut scratch);
    let delta_fdm_long = allocations() - before_fdm_long;

    assert!(fdm_long.iterations > fdm_short.iterations);
    assert!(
        delta_fdm_short <= 8,
        "a 5-iteration FDM solve allocated {delta_fdm_short} times"
    );
    assert!(
        delta_fdm_long <= delta_fdm_short + 4,
        "extra FDM iterations leaked allocations: {delta_fdm_long} (long) vs {delta_fdm_short} (short)"
    );
    assert!(
        fdm_long.precond_applications > 0 && fdm_long.precond_seconds > 0.0,
        "the outcome accounts the preconditioner applications"
    );

    // The enabled recorder must not change the bound: the warmup solve
    // registers the metric families, allocates this thread's event ring and
    // touches every span path once; after that, tracing a solve is
    // ring-writes and atomics only.
    Recorder::install(ObsConfig::default());
    let obs_warmup = short.solve_with_scratch(&rhs, &preconditioner, &mut scratch);
    assert_eq!(obs_warmup.iterations, 5);
    assert!(recorder().is_enabled());

    let before_obs_short = allocations();
    let obs_short = short.solve_with_scratch(&rhs, &preconditioner, &mut scratch);
    let delta_obs_short = allocations() - before_obs_short;

    let before_obs_long = allocations();
    let obs_long = long.solve_with_scratch(&rhs, &preconditioner, &mut scratch);
    let delta_obs_long = allocations() - before_obs_long;

    assert!(obs_long.iterations > obs_short.iterations);
    assert!(
        delta_obs_short <= 8,
        "a traced 5-iteration solve allocated {delta_obs_short} times"
    );
    assert!(
        delta_obs_long <= delta_obs_short + 4,
        "the enabled recorder leaked per-iteration allocations: \
         {delta_obs_long} (long) vs {delta_obs_short} (short)"
    );

    // And it actually recorded: per-iteration spans are in the ring, the
    // iteration counter moved.
    let snapshot = recorder().trace_snapshot();
    let cg_spans = snapshot
        .events
        .iter()
        .filter(|(_, e)| e.kind == SpanKind::CgIteration)
        .count();
    assert!(
        cg_spans >= (obs_short.iterations + obs_long.iterations),
        "expected at least {} CG iteration spans, found {cg_spans}",
        obs_short.iterations + obs_long.iterations
    );
    assert!(recorder()
        .prometheus_text()
        .contains("sem_solver_cg_iterations_total"));
    Recorder::uninstall();

    let _ = ElementField::zeros(4, mesh.num_elements()); // counter sanity:
    assert!(allocations() > before_short, "the counter must be live");
}
