//! Degree-sweep parity battery for the specialized kernel family: for every
//! covered degree N = 3..=15 the `cpu:specialized` path must agree with
//! `cpu:reference` to 1e-10 on the Ax operator, the FDM preconditioner
//! application, and the Helmholtz operator — and out-of-range degrees must
//! fall back to the generic kernels instead of panicking.

use semfpga::accel::Backend;
use semfpga::kernel::specialized::{MAX_DEGREE, MIN_DEGREE};
use semfpga::kernel::{AxImplementation, DegreeDispatch, HelmholtzOperator, PoissonOperator};
use semfpga::mesh::{BoxMesh, DirichletMask, ElementField, GatherScatter, MeshDeformation};
use semfpga::solver::{FdmPreconditioner, Preconditioner};

/// A deformed mesh so all six geometric-factor planes are populated and the
/// contractions cannot hide behind diagonal geometry.
fn deformed_mesh(degree: usize) -> BoxMesh {
    BoxMesh::new(
        degree,
        [2; 3],
        [1.0; 3],
        MeshDeformation::Sinusoidal { amplitude: 0.06 },
    )
}

fn assert_close(label: &str, degree: usize, expected: &ElementField, got: &ElementField) {
    let scale = expected.max_abs();
    for (i, (a, b)) in expected.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert!(
            (a - b).abs() <= 1e-10 * (1.0 + scale),
            "{label}, degree {degree}, dof {i}: reference {a} vs specialized {b}"
        );
    }
}

#[test]
fn specialized_ax_matches_reference_on_every_covered_degree() {
    for degree in MIN_DEGREE..=MAX_DEGREE {
        let mesh = deformed_mesh(degree);
        let u = mesh.evaluate(|x, y, z| (3.1 * x + 1.3 * y).sin() * (z * z + 0.25) + x * y);
        let specialized = Backend::cpu_specialized().instantiate(&mesh);
        let reference = Backend::cpu_reference().instantiate(&mesh);
        let mut w_spec = ElementField::zeros(degree, mesh.num_elements());
        let mut w_ref = w_spec.clone();
        specialized.apply_into(&u, &mut w_spec);
        reference.apply_into(&u, &mut w_ref);
        assert_close("Ax", degree, &w_ref, &w_spec);
    }
}

#[test]
fn specialized_fdm_apply_matches_the_generic_kernels_on_every_covered_degree() {
    for degree in MIN_DEGREE..=MAX_DEGREE {
        let mesh = deformed_mesh(degree);
        let operator = PoissonOperator::new(&mesh, AxImplementation::Specialized);
        let gather_scatter = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        let fdm = FdmPreconditioner::new(&mesh, &operator, &gather_scatter, &mask);
        let generic = fdm.clone().with_generic_kernels();

        let mut r = mesh.evaluate(|x, y, z| (x - 0.4) * (y + 0.2) + (2.2 * z).cos());
        gather_scatter.direct_stiffness_sum(&mut r);
        mask.apply(&mut r);
        let z_spec = fdm.apply(&r);
        let z_ref = generic.apply(&r);
        assert_close("FDM apply", degree, &z_ref, &z_spec);
    }
}

#[test]
fn specialized_helmholtz_matches_reference_on_every_covered_degree() {
    for degree in MIN_DEGREE..=MAX_DEGREE {
        let mesh = deformed_mesh(degree);
        let u = mesh.evaluate(|x, y, z| (1.7 * x).cos() * (y - 0.3) + z * z * x);
        let specialized = HelmholtzOperator::new(
            PoissonOperator::new(&mesh, AxImplementation::Specialized),
            0.9,
        );
        let reference = HelmholtzOperator::new(
            PoissonOperator::new(&mesh, AxImplementation::Reference),
            0.9,
        );
        let w_spec = specialized.apply(&u);
        let w_ref = reference.apply(&u);
        assert_close("Helmholtz", degree, &w_ref, &w_spec);
    }
}

#[test]
fn out_of_range_degrees_fall_back_to_the_generic_path_without_panicking() {
    for degree in [2_usize, MAX_DEGREE + 1] {
        assert!(
            DegreeDispatch::for_degree(degree).is_none(),
            "degree {degree} must not be covered"
        );
        let mesh = deformed_mesh(degree);
        let operator = PoissonOperator::new(&mesh, AxImplementation::Specialized);
        assert!(operator.dispatch().is_none(), "degree {degree}");
        let u = mesh.evaluate(|x, y, z| x * y + z);
        let reference = PoissonOperator::new(&mesh, AxImplementation::Reference);
        assert_close(
            "fallback Ax",
            degree,
            &reference.apply(&u),
            &operator.apply(&u),
        );
    }
}
