//! Trace determinism: under the modelled clock, the same seed must produce
//! a byte-identical Chrome trace export — no matter how many worker
//! threads recorded, on both the synchronous and the work-stealing async
//! serving paths.  This is the contract that makes committed sample traces
//! reviewable: a diff in `OBS_trace.json` means the model changed, never
//! that the host scheduler sneezed.

use semfpga::obs::{chrome_trace_json, recorder, ObsClock, ObsConfig, Recorder};
use semfpga::serve::{ProblemSpec, RoundRobin, ServeOptions, ServeRequest, Server};
use std::sync::Mutex;

/// The recorder is process-global; serialize the tests that install it.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn requests(n: usize) -> Vec<ServeRequest> {
    let spec = ProblemSpec::cube(5, 2);
    (0..n)
        .map(|i| ServeRequest::seeded(spec, i as u64))
        .collect()
}

fn options() -> ServeOptions {
    ServeOptions {
        max_batch: 4,
        ..ServeOptions::default()
    }
}

/// One full serve under a freshly installed modelled-clock recorder;
/// returns the Chrome export.
fn traced_serve(pool: &[&str], asynchronous: bool) -> String {
    Recorder::install(ObsConfig {
        clock: ObsClock::Modeled,
        ..ObsConfig::default()
    });
    let mut server = Server::from_registry_names(pool, options());
    let mut policy = RoundRobin::default();
    let reqs = requests(12);
    if asynchronous {
        let report = server.serve_async(&reqs, &mut policy);
        assert_eq!(report.outcomes.len(), reqs.len());
    } else {
        let report = server.serve(&reqs, &mut policy);
        assert_eq!(report.outcomes.len(), reqs.len());
    }
    let json = chrome_trace_json(&recorder().trace_snapshot());
    Recorder::uninstall();
    json
}

#[test]
fn sync_modeled_trace_is_byte_identical_across_runs() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let pool = ["fpga:stratix10-gx2800"];
    let first = traced_serve(&pool, false);
    let second = traced_serve(&pool, false);
    assert_eq!(first, second, "modelled-clock sync export must be stable");
    // The export actually carries the solve/serve content, not just lanes.
    assert!(first.contains("\"traceEvents\":["));
    for span in [
        "cg_iteration",
        "operator_apply",
        "pipeline_slot",
        "admission_admit",
    ] {
        assert!(
            first.contains(&format!("\"name\":\"{span}\"")),
            "expected a `{span}` span in the deterministic export"
        );
    }
    assert!(
        first.contains("\"request\":"),
        "spans join back to requests"
    );
}

#[test]
fn async_modeled_trace_is_byte_identical_across_runs() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Two simulated slots: real worker threads record from different rings
    // in racy order, yet the deterministic export must not notice.
    let pool = ["fpga:stratix10-gx2800", "fpga:stratix10-gx2800"];
    let first = traced_serve(&pool, true);
    let second = traced_serve(&pool, true);
    assert_eq!(first, second, "modelled-clock async export must be stable");
    // Schedule-dependent events (steals, parks, job spans on the async
    // path) are filtered out of the modelled-clock export by contract.
    assert!(!first.contains("schedule_dependent"));
    assert!(first.contains("\"name\":\"solve\""));
}

#[test]
fn sync_and_async_exports_agree_on_deterministic_solver_content() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // The async export drops the serve-side job spans (completion order is
    // a scheduler artifact) but the modelled solver content underneath is
    // the same work either way: identical CG iteration span counts.
    let pool = ["fpga:stratix10-gx2800"];
    let count = |json: &str| json.matches("\"name\":\"cg_iteration\"").count();
    let sync_trace = traced_serve(&pool, false);
    let async_trace = traced_serve(&pool, true);
    assert!(count(&sync_trace) > 0);
    assert_eq!(count(&sync_trace), count(&async_trace));
}

#[test]
fn drift_samples_cover_every_admitted_request() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Recorder::install(ObsConfig::default());
    let mut server = Server::from_registry_names(&["fpga:stratix10-gx2800"], options());
    let reqs = requests(12);
    let report = server.serve(&reqs, &mut RoundRobin::default());
    assert_eq!(report.outcomes.len(), reqs.len());
    let samples = recorder().drift_samples();
    Recorder::uninstall();
    for stage in [
        "upload",
        "compute",
        "download",
        "residual_stream",
        "session",
    ] {
        let covered: Vec<u64> = samples
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.request)
            .collect();
        assert_eq!(
            covered.len(),
            reqs.len(),
            "stage `{stage}` must sample every admitted request"
        );
    }
}
