//! Workspace-level integration tests: the full pipeline from basis functions
//! to solver, across crates.

use semfpga::accel::{Backend, SemSystem};
use semfpga::kernel::AxImplementation;
use semfpga::mesh::{BoxMesh, MeshDeformation};
use semfpga::solver::{CgOptions, PoissonProblem, PrecondSpec};

#[test]
fn cost_formulas_agree_between_kernel_and_model() {
    // The kernel crate and the analytic-model crate deliberately implement
    // the FLOP/traffic formulas independently; they must agree for every
    // degree.
    for degree in 1..=20 {
        assert_eq!(
            semfpga::kernel::flops_per_dof(degree) as f64,
            semfpga::model::flops_per_dof(degree)
        );
        assert_eq!(
            semfpga::kernel::bytes_per_dof(degree) as f64,
            semfpga::model::bytes_per_dof(degree)
        );
        assert!(
            (semfpga::kernel::operational_intensity(degree)
                - semfpga::model::operational_intensity(degree))
            .abs()
                < 1e-12
        );
    }
}

#[test]
fn poisson_solves_converge_spectrally_on_deformed_meshes() {
    let mut previous = f64::INFINITY;
    for degree in [3, 5, 7] {
        let mesh = BoxMesh::new(
            degree,
            [2, 2, 2],
            [1.0; 3],
            MeshDeformation::Sinusoidal { amplitude: 0.02 },
        );
        let problem = PoissonProblem::new(mesh, AxImplementation::Parallel);
        let sol = problem.solve_manufactured(
            CgOptions {
                max_iterations: 4000,
                tolerance: 1e-11,
                record_history: false,
            },
            PrecondSpec::Jacobi,
        );
        assert!(sol.cg.converged, "degree {degree} did not converge");
        assert!(
            sol.max_error < previous,
            "degree {degree}: error {} should beat {previous}",
            sol.max_error
        );
        previous = sol.max_error;
    }
    assert!(
        previous < 1e-4,
        "degree 7 error should be small: {previous}"
    );
}

#[test]
fn fpga_backend_is_numerically_equivalent_to_the_reference_cpu_path() {
    for degree in [1, 4, 7] {
        let cpu = SemSystem::builder()
            .degree(degree)
            .elements([2, 2, 2])
            .backend(Backend::cpu_reference())
            .build();
        let fpga = SemSystem::builder()
            .degree(degree)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();
        let u = cpu
            .mesh()
            .evaluate(|x, y, z| (2.0 * x - y).sin() * (z + 0.5) + x * x);
        let (w_cpu, _) = cpu.apply_operator(&u);
        let (w_fpga, perf) = fpga.apply_operator(&u);
        let scale = w_cpu.max_abs();
        for (a, b) in w_cpu.as_slice().iter().zip(w_fpga.as_slice()) {
            assert!(
                (a - b).abs() < 1e-10 * (1.0 + scale),
                "degree {degree}: {a} vs {b}"
            );
        }
        assert!(perf.power_watts.unwrap() > 50.0, "FPGA power is reported");
    }
}

#[test]
fn proxy_driver_uses_exactly_the_advertised_flops() {
    use semfpga::solver::ProxyConfig;
    let config = ProxyConfig {
        degree: 5,
        elements: [2, 2, 2],
        cg_iterations: 7,
        implementation: AxImplementation::Optimized,
        precond: PrecondSpec::Identity,
    };
    let result = config.run();
    let expected = 7
        * 8
        * semfpga::basis::dofs_per_element(5) as u64
        * semfpga::kernel::flops_per_dof(5) as u64;
    assert_eq!(result.operator_flops, expected);
}

#[test]
fn offload_plan_matches_the_traffic_model() {
    // Q(N) = 7 loads + 1 write per DOF; the offload plan must account for the
    // same bytes (plus the two small derivative matrices).
    let system = SemSystem::builder()
        .degree(7)
        .elements([4, 4, 4])
        .backend(Backend::fpga_simulated())
        .build();
    let plan = system.offload_plan().unwrap();
    let dofs = 64_u64 * 512;
    let expected_traffic = dofs * semfpga::kernel::bytes_per_dof(7) as u64;
    // The session's plan also folds in the configured preconditioner's
    // one-off upload (the default Jacobi inverse diagonal: one field).
    assert_eq!(plan.precond_table_bytes, dofs * 8);
    assert_eq!(
        plan.total_transfer_bytes(),
        expected_traffic + 2 * 64 * 8 + plan.precond_table_bytes
    );
}

#[test]
fn gather_scatter_and_mask_commute_with_the_kernel_symmetry() {
    // The masked, assembled operator stays symmetric: (v, A u) == (u, A v)
    // with the multiplicity-weighted inner product.
    use semfpga::mesh::{DirichletMask, GatherScatter};
    use semfpga::solver::CgSolver;

    let degree = 4;
    let mesh = BoxMesh::unit_cube(degree, 2);
    let op = semfpga::kernel::PoissonOperator::new(&mesh, AxImplementation::Optimized);
    let gs = GatherScatter::from_mesh(&mesh);
    let mask = DirichletMask::from_mesh(&mesh);
    let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());

    let mut u = mesh.evaluate(|x, y, z| x * (1.0 - x) * y * z);
    let mut v = mesh.evaluate(|x, y, z| (x * y).cos() * z * (1.0 - z));
    mask.apply(&mut u);
    mask.apply(&mut v);
    gs.direct_stiffness_sum(&mut u);
    gs.direct_stiffness_sum(&mut v);

    let au = solver.apply_operator(&u);
    let av = solver.apply_operator(&v);
    let vau = solver.inner_product(&v, &au);
    let uav = solver.inner_product(&u, &av);
    assert!((vau - uav).abs() < 1e-8 * (1.0 + vau.abs()));
}
