//! Workspace-level preconditioner integration tests: iteration-count
//! regressions, registry-wide `+fdm` solution parity, and the on-device
//! claim with its offload pricing.

use semfpga::accel::{Backend, SemSystem};
use semfpga::mesh::ElementField;
use semfpga::solver::{CgOptions, PrecondSpec};

fn options() -> CgOptions {
    CgOptions {
        max_iterations: 3000,
        tolerance: 1e-10,
        record_history: false,
    }
}

fn system(name: &str, degree: usize, per_side: usize) -> SemSystem {
    SemSystem::builder()
        .degree(degree)
        .elements([per_side; 3])
        .backend_named(name)
        .build()
}

/// The shared serving-shaped right-hand side (see
/// `PoissonProblem::generic_rhs` for why iteration regressions avoid the
/// standard manufactured RHS) — one definition, used here and by the
/// `precond` bench, so the CI gate and the published benchmark stay in
/// lockstep.
fn generic_rhs(system: &SemSystem) -> ElementField {
    system.problem().generic_rhs()
}

#[test]
fn fdm_beats_jacobi_beats_identity_at_every_tested_degree() {
    // The iteration-count ordering the whole optimisation exists for:
    // FDM <= Jacobi <= identity, across degrees, on a generic workload.
    for (degree, per_side) in [(3, 3), (7, 3), (11, 2)] {
        let mut iterations = Vec::new();
        for precond in ["+none", "", "+fdm"] {
            let system = system(&format!("cpu:optimized{precond}"), degree, per_side);
            let rhs = generic_rhs(&system);
            let report = system.solve_rhs(&rhs, options());
            assert!(report.converged(), "N={degree} {precond} must converge");
            iterations.push(report.iterations());
        }
        let (identity, jacobi, fdm) = (iterations[0], iterations[1], iterations[2]);
        assert!(
            fdm <= jacobi && jacobi <= identity,
            "N={degree}: fdm {fdm} <= jacobi {jacobi} <= identity {identity}"
        );
    }
}

#[test]
fn fdm_cuts_at_least_forty_percent_of_jacobi_iterations_at_degree_seven() {
    let jacobi = system("cpu:optimized", 7, 3);
    let fdm = system("cpu:optimized+fdm", 7, 3);
    let rhs = generic_rhs(&jacobi);
    let jacobi_report = jacobi.solve_rhs(&rhs, options());
    let fdm_report = fdm.solve_rhs(&rhs, options());
    assert!(jacobi_report.converged() && fdm_report.converged());
    assert!(
        (fdm_report.iterations() as f64) <= 0.6 * jacobi_report.iterations() as f64,
        "fdm {} vs jacobi {}",
        fdm_report.iterations(),
        jacobi_report.iterations()
    );
}

#[test]
fn every_registry_backend_with_fdm_agrees_with_the_cpu_reference() {
    // Registry-wide solution parity: the preconditioner changes the path,
    // never the destination.  Every backend with `+fdm` must agree with the
    // plain CPU reference to 1e-10 and still converge to the manufactured
    // solution.
    let degree = 5;
    let per_side = 2;
    let reference = system("cpu:reference", degree, per_side).solve(options());
    assert!(reference.converged());
    let scale = 1.0 + reference.solution.solution.max_abs();

    for name in Backend::registry_names() {
        let fdm_name = format!("{name}+fdm");
        let sys = system(&fdm_name, degree, per_side);
        assert_eq!(sys.precond_spec(), PrecondSpec::Fdm);
        let report = sys.solve(options());
        assert!(report.converged(), "{fdm_name} must converge");
        assert!(
            report.solution.max_error < 1e-4,
            "{fdm_name}: manufactured error {}",
            report.solution.max_error
        );
        for (a, b) in reference
            .solution
            .solution
            .as_slice()
            .iter()
            .zip(report.solution.solution.as_slice())
        {
            assert!((a - b).abs() < 1e-10 * scale, "{fdm_name}: {a} vs {b}");
        }
    }
}

#[test]
fn fpga_backends_claim_the_precond_pass_and_price_it() {
    // The FDM apply is claimed on-device (like `fuses_dssum`) and its cost
    // is visible end to end: modelled per-application seconds in the CG
    // accounting, table bytes in the offload plan's shared upload.
    let cpu = system("cpu:optimized+fdm", 5, 2);
    let fpga = system("fpga:stratix10-gx2800+fdm", 5, 2);
    let multi = system("multi:2x520n+fdm", 5, 2);

    assert!(!cpu.precond_on_device());
    assert!(fpga.precond_on_device());
    assert!(multi.precond_on_device());

    // The offload plan carries the one-off FDM table upload as shared bytes.
    let plain_plan = system("fpga:stratix10-gx2800", 5, 2)
        .offload_plan()
        .unwrap();
    let fdm_plan = fpga.offload_plan().unwrap();
    assert!(fdm_plan.precond_table_bytes > 0);
    assert_eq!(
        fdm_plan.shared_bytes(),
        plain_plan.shared_bytes() - plain_plan.precond_table_bytes + fdm_plan.precond_table_bytes
    );
    // Jacobi's resident inverse diagonal is one field's worth of upload.
    assert_eq!(
        plain_plan.precond_table_bytes,
        (5_usize + 1).pow(3) as u64 * 8 * 8,
        "jacobi uploads the inverse diagonal once"
    );

    // The solve report prices the on-device pass deterministically.
    let report = fpga.solve(options());
    assert!(report.precond_on_device);
    assert_eq!(report.precond, PrecondSpec::Fdm);
    assert!(report.precond_seconds > 0.0);
    // One apply before the loop plus one per continuing iteration; the
    // converged final iteration skips the trailing apply.
    assert!(
        report.precond_applications() >= report.iterations()
            && report.precond_applications() <= report.iterations() + 1,
        "{} applies over {} iterations",
        report.precond_applications(),
        report.iterations()
    );
    let again = fpga.solve(options());
    assert_eq!(
        report.precond_seconds.to_bits(),
        again.precond_seconds.to_bits(),
        "modelled precond seconds are a model figure, not a measurement"
    );
    // End-to-end modelled seconds include operator, preconditioner and
    // transfer parts.
    assert!(
        (report.modeled_seconds()
            - (report.operator.seconds + report.precond_seconds + report.transfer_seconds))
            .abs()
            < 1e-15
    );

    // The CPU path measures the same pass instead.
    let cpu_report = cpu.solve(options());
    assert!(!cpu_report.precond_on_device);
    assert!(cpu_report.precond_seconds > 0.0);
}

#[test]
fn fdm_improves_the_modeled_fpga_end_to_end_seconds() {
    // Fewer iterations times a pass that costs about one Ax: the modelled
    // end-to-end accelerator time of a generic solve must drop well below
    // Jacobi's.
    let jacobi = system("fpga:stratix10-gx2800", 7, 3);
    let fdm = system("fpga:stratix10-gx2800+fdm", 7, 3);
    let rhs = generic_rhs(&jacobi);
    let jacobi_report = jacobi.solve_rhs(&rhs, options());
    let fdm_report = fdm.solve_rhs(&rhs, options());
    assert!(jacobi_report.converged() && fdm_report.converged());
    assert!(
        fdm_report.modeled_seconds() < 0.75 * jacobi_report.modeled_seconds(),
        "fdm {} vs jacobi {}",
        fdm_report.modeled_seconds(),
        jacobi_report.modeled_seconds()
    );
    // Solutions agree regardless.
    let scale = 1.0 + jacobi_report.solution.solution.max_abs();
    for (a, b) in jacobi_report
        .solution
        .solution
        .as_slice()
        .iter()
        .zip(fdm_report.solution.solution.as_slice())
    {
        assert!((a - b).abs() < 1e-8 * scale);
    }
}

#[test]
fn builder_precond_and_name_suffix_agree() {
    let by_name = system("cpu:optimized+fdm", 3, 2);
    let by_builder = SemSystem::builder()
        .degree(3)
        .elements([2; 3])
        .backend(Backend::cpu_optimized())
        .precond(PrecondSpec::Fdm)
        .build();
    assert_eq!(by_name.backend(), by_builder.backend());
    assert_eq!(by_builder.precond_spec(), PrecondSpec::Fdm);
    assert_eq!(
        by_builder.backend().name().as_deref(),
        Some("cpu:optimized+fdm")
    );
}
